//! Calibration of the global requirement scale.
//!
//! Figure 10's exact requirement values are unrecoverable (see
//! DESIGN.md), so the surrogate tables carry a single global scale
//! factor. This experiment sweeps it and reports the per-class success
//! rates at the paper's anchor points (Table 3, *basic*: rates 60 / 100
//! / 180 → norm ≈ 99.9 / 97.3 / 92.0 %, fat ≈ 99 / 73 / 40 %), so the
//! scale can be chosen once and then held fixed for every experiment.

use super::{run_seeded, ExperimentOpts};
use crate::table::{pct, TextTable};
use qosr_sim::{PlannerKind, ScenarioConfig, SessionClass};

/// Scales to sweep.
pub const SCALES: [f64; 6] = [0.2, 0.3, 0.4, 0.5, 0.6, 0.8];

/// Anchor rates from Table 3.
pub const RATES: [f64; 3] = [60.0, 100.0, 180.0];

/// One sweep cell: success rates of (normal, fat) classes.
#[derive(Debug, Clone, Copy)]
pub struct CalibrationCell {
    /// Requirement scale.
    pub scale: f64,
    /// Generation rate.
    pub rate: f64,
    /// Success rate over normal sessions.
    pub normal: f64,
    /// Success rate over fat sessions.
    pub fat: f64,
    /// Overall success rate.
    pub overall: f64,
}

/// Runs the calibration sweep.
pub fn run(opts: &ExperimentOpts) -> Vec<CalibrationCell> {
    let mut configs = Vec::new();
    for &scale in &SCALES {
        for &rate in &RATES {
            configs.push(ScenarioConfig {
                planner: PlannerKind::Basic,
                requirement_scale: scale,
                rate_per_60tu: rate,
                horizon: opts.horizon,
                ..ScenarioConfig::default()
            });
        }
    }
    let (merged, _raw) = run_seeded(&configs, opts.seeds);
    let mut cells = Vec::new();
    for (i, &scale) in SCALES.iter().enumerate() {
        for (j, &rate) in RATES.iter().enumerate() {
            let m = &merged[i * RATES.len() + j];
            let mut normal = m.per_class[SessionClass::NormalShort.index()];
            normal.merge(&m.per_class[SessionClass::NormalLong.index()]);
            let mut fat = m.per_class[SessionClass::FatShort.index()];
            fat.merge(&m.per_class[SessionClass::FatLong.index()]);
            cells.push(CalibrationCell {
                scale,
                rate,
                normal: normal.success_rate(),
                fat: fat.success_rate(),
                overall: m.overall.success_rate(),
            });
        }
    }
    cells
}

/// Renders the sweep with the paper's anchors for comparison.
pub fn render(cells: &[CalibrationCell]) -> String {
    let mut t = TextTable::new(["scale", "rate", "normal", "fat", "overall"]);
    for c in cells {
        t.row([
            format!("{:.2}", c.scale),
            format!("{:.0}", c.rate),
            pct(c.normal),
            pct(c.fat),
            pct(c.overall),
        ]);
    }
    format!(
        "Requirement-scale calibration (basic)\n{}\n\
         Paper anchors (Table 3): rate 60 -> norm 99.9% fat ~99%; \
         rate 100 -> norm ~97.3% fat ~73%; rate 180 -> norm ~92% fat ~40%\n",
        t.render()
    )
}
