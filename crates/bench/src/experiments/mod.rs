//! The §5 experiments: one module per table/figure.
//!
//! Each experiment builds a batch of [`ScenarioConfig`]s, runs them in
//! parallel ([`qosr_sim::run_many`]), averages over seeds by *merging*
//! the per-run counters (so rates are weighted by attempts), and renders
//! the same rows/series the paper reports. Raw per-run results can be
//! dumped as JSON for further analysis.

use qosr_sim::{run_many, PlannerKind, RunMetrics, RunResult, ScenarioConfig};
use std::path::PathBuf;

pub mod ablation;
pub mod bottleneck;
pub mod calibrate;
pub mod dagquality;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod overhead;
pub mod tables12;
pub mod tables34;
pub mod timeseries;
pub mod upgrade;

/// Common options for all experiments.
#[derive(Debug, Clone)]
pub struct ExperimentOpts {
    /// Independent seeds per configuration (results are merged).
    pub seeds: u64,
    /// Simulated horizon per run (TU).
    pub horizon: f64,
    /// Global requirement scale (the calibration constant).
    pub scale: f64,
    /// When set, write the raw per-run results as JSON into this
    /// directory.
    pub out_dir: Option<PathBuf>,
}

impl Default for ExperimentOpts {
    fn default() -> Self {
        ExperimentOpts {
            seeds: 5,
            horizon: 10_800.0,
            scale: qosr_sim::ScenarioConfig::default().requirement_scale,
            out_dir: None,
        }
    }
}

impl ExperimentOpts {
    /// Reduced settings for smoke tests and CI.
    pub fn quick() -> Self {
        ExperimentOpts {
            seeds: 2,
            horizon: 1200.0,
            ..ExperimentOpts::default()
        }
    }

    /// A base config carrying this experiment's common fields.
    pub fn base_config(&self) -> ScenarioConfig {
        ScenarioConfig {
            horizon: self.horizon,
            requirement_scale: self.scale,
            ..ScenarioConfig::default()
        }
    }
}

/// The paper's generation-rate sweep (sessions per 60 TU), 60 to 240.
pub const RATE_SWEEP: [f64; 7] = [60.0, 90.0, 120.0, 150.0, 180.0, 210.0, 240.0];

/// Expands a config into `seeds` copies with seeds `1..=seeds`.
pub fn seeded(cfg: &ScenarioConfig, seeds: u64) -> Vec<ScenarioConfig> {
    (1..=seeds)
        .map(|seed| ScenarioConfig {
            seed,
            ..cfg.clone()
        })
        .collect()
}

/// Runs `seeds` copies of each config and merges each group's metrics,
/// returning `(merged metrics, raw runs)` per input config.
pub fn run_seeded(configs: &[ScenarioConfig], seeds: u64) -> (Vec<RunMetrics>, Vec<RunResult>) {
    let expanded: Vec<ScenarioConfig> = configs.iter().flat_map(|c| seeded(c, seeds)).collect();
    let results = run_many(&expanded);
    let merged = results
        .chunks(seeds as usize)
        .map(|chunk| {
            let mut m = RunMetrics::default();
            for r in chunk {
                m.merge(&r.metrics);
            }
            m
        })
        .collect();
    (merged, results)
}

/// Writes raw results as pretty JSON under `opts.out_dir/<name>.json`
/// (no-op when `out_dir` is unset).
pub fn dump_results(opts: &ExperimentOpts, name: &str, results: &[RunResult]) {
    let Some(dir) = &opts.out_dir else {
        return;
    };
    std::fs::create_dir_all(dir).expect("create results directory");
    let path = dir.join(format!("{name}.json"));
    let file = std::fs::File::create(&path).expect("create results file");
    serde_json::to_writer_pretty(std::io::BufWriter::new(file), results)
        .expect("serialize results");
    eprintln!("wrote {}", path.display());
}

/// The three algorithms the paper compares.
pub const ALGORITHMS: [PlannerKind; 3] = [
    PlannerKind::Basic,
    PlannerKind::Tradeoff,
    PlannerKind::Random,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_expansion() {
        let base = ScenarioConfig::default();
        let v = seeded(&base, 3);
        assert_eq!(v.len(), 3);
        assert_eq!(v[0].seed, 1);
        assert_eq!(v[2].seed, 3);
        assert_eq!(v[1].rate_per_60tu, base.rate_per_60tu);
    }

    #[test]
    fn run_seeded_merges_groups() {
        let mut cfg = ExperimentOpts::quick().base_config();
        cfg.horizon = 300.0;
        let configs = vec![
            ScenarioConfig {
                rate_per_60tu: 60.0,
                ..cfg.clone()
            },
            ScenarioConfig {
                rate_per_60tu: 120.0,
                ..cfg
            },
        ];
        let (merged, raw) = run_seeded(&configs, 2);
        assert_eq!(merged.len(), 2);
        assert_eq!(raw.len(), 4);
        // Merged counters equal the sum of the group's raw counters.
        let sum0 = raw[0].metrics.overall.attempts + raw[1].metrics.overall.attempts;
        assert_eq!(merged[0].overall.attempts, sum0);
        // Higher rate -> more attempts.
        assert!(merged[1].overall.attempts > merged[0].overall.attempts);
    }

    #[test]
    fn dump_is_noop_without_out_dir() {
        let opts = ExperimentOpts::quick();
        dump_results(&opts, "nothing", &[]);
    }
}
