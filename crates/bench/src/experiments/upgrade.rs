//! Renegotiation extension experiment (beyond the paper): the *tradeoff*
//! policy buys overall admission rate by settling for lower end-to-end
//! QoS levels. An in-place **upgrade sweep** — every `period` TU, live
//! sessions re-plan with their own holdings counted as available and
//! atomically swap to strictly better plans — recovers much of that QoS
//! *without giving back the admission gains*.

use super::{dump_results, run_seeded, ExperimentOpts};
use crate::table::{pct, qos, TextTable};
use qosr_sim::{PlannerKind, ScenarioConfig};

/// Upgrade-scan periods to compare (TU); `None` is the paper baseline.
pub const PERIODS: [Option<f64>; 3] = [None, Some(60.0), Some(15.0)];

/// Rates measured.
pub const RATES: [f64; 3] = [90.0, 150.0, 210.0];

/// One measured cell.
#[derive(Debug, Clone, Copy)]
pub struct UpgradeRow {
    /// The algorithm.
    pub planner: PlannerKind,
    /// Upgrade period (None = off).
    pub period: Option<f64>,
    /// Sessions per 60 TU.
    pub rate: f64,
    /// Overall success rate.
    pub success: f64,
    /// Average QoS at establishment.
    pub established_qos: f64,
    /// Average QoS at session end (after upgrades).
    pub final_qos: f64,
    /// Upgrades per 1000 admitted sessions.
    pub upgrades_per_1k: f64,
}

/// Runs the upgrade experiment for *tradeoff* (where the headroom is)
/// and *basic* (as control).
pub fn run(opts: &ExperimentOpts) -> Vec<UpgradeRow> {
    let base = opts.base_config();
    let mut configs = Vec::new();
    for &planner in &[PlannerKind::Tradeoff, PlannerKind::Basic] {
        for &period in &PERIODS {
            for &rate in &RATES {
                configs.push(ScenarioConfig {
                    planner,
                    upgrade_period: period,
                    rate_per_60tu: rate,
                    ..base.clone()
                });
            }
        }
    }
    let (merged, raw) = run_seeded(&configs, opts.seeds);
    dump_results(opts, "upgrade", &raw);

    configs
        .iter()
        .zip(&merged)
        .map(|(cfg, m)| UpgradeRow {
            planner: cfg.planner,
            period: cfg.upgrade_period,
            rate: cfg.rate_per_60tu,
            success: m.overall.success_rate(),
            established_qos: m.overall.avg_qos_level(),
            final_qos: m.final_qos.avg_qos_level(),
            upgrades_per_1k: 1000.0 * m.upgrades as f64 / m.overall.successes.max(1) as f64,
        })
        .collect()
}

/// Renders the experiment.
pub fn render(rows: &[UpgradeRow]) -> String {
    let mut t = TextTable::new([
        "planner",
        "upgrade period",
        "rate",
        "success",
        "QoS @ establish",
        "QoS @ end",
        "upgrades/1k",
    ]);
    for r in rows {
        t.row([
            r.planner.label().to_owned(),
            r.period.map_or("off".to_owned(), |p| format!("{p:.0} TU")),
            format!("{:.0}", r.rate),
            pct(r.success),
            qos(r.established_qos),
            qos(r.final_qos),
            format!("{:.0}", r.upgrades_per_1k),
        ]);
    }
    format!(
        "Renegotiation extension: in-place QoS upgrades on live sessions\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_full_grid() {
        let opts = ExperimentOpts {
            seeds: 1,
            horizon: 600.0,
            ..ExperimentOpts::default()
        };
        let rows = run(&opts);
        assert_eq!(rows.len(), 2 * PERIODS.len() * RATES.len());
        // With upgrades off, final == established.
        for r in rows.iter().filter(|r| r.period.is_none()) {
            assert!((r.final_qos - r.established_qos).abs() < 1e-9);
            assert_eq!(r.upgrades_per_1k, 0.0);
        }
        assert!(render(&rows).contains("Renegotiation"));
    }
}
