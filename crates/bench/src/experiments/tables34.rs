//! Tables 3 and 4: reservation success rate / average end-to-end QoS
//! level per session class (normal/fat × short/long), at generation
//! rates 60, 100, and 180 — Table 3 under *basic*, Table 4 under
//! *tradeoff*.

use super::{dump_results, run_seeded, ExperimentOpts};
use crate::table::{pct, qos, TextTable};
use qosr_sim::{ClassStats, PlannerKind, ScenarioConfig, SessionClass};

/// The rates the paper's class tables report.
pub const RATES: [f64; 3] = [60.0, 100.0, 180.0];

/// One algorithm's per-class table: `cells[class][rate]`.
#[derive(Debug, Clone)]
pub struct ClassTable {
    /// The algorithm.
    pub planner: PlannerKind,
    /// Per-class, per-rate stats.
    pub cells: Vec<[ClassStats; 3]>,
}

/// Runs the class-breakdown experiment for one algorithm.
pub fn run(opts: &ExperimentOpts, planner: PlannerKind) -> ClassTable {
    let base = opts.base_config();
    let configs: Vec<ScenarioConfig> = RATES
        .iter()
        .map(|&rate| ScenarioConfig {
            rate_per_60tu: rate,
            planner,
            ..base.clone()
        })
        .collect();
    let (merged, raw) = run_seeded(&configs, opts.seeds);
    dump_results(opts, &format!("tables34-{}", planner.label()), &raw);

    let cells = SessionClass::ALL
        .iter()
        .map(|class| {
            let mut row = [ClassStats::default(); 3];
            for (r, m) in merged.iter().enumerate() {
                row[r] = m.per_class[class.index()];
            }
            row
        })
        .collect();
    ClassTable { planner, cells }
}

/// Renders a class table in the paper's format
/// (`success rate / average QoS level` per cell).
pub fn render(table: &ClassTable) -> String {
    let mut t = TextTable::new([
        "Class/gen. rate".to_owned(),
        format!("{:.0} ssn/60TU", RATES[0]),
        format!("{:.0} ssn/60TU", RATES[1]),
        format!("{:.0} ssn/60TU", RATES[2]),
    ]);
    for (class, row) in SessionClass::ALL.iter().zip(&table.cells) {
        t.row([
            class.label().to_owned(),
            format!(
                "{}/{}",
                pct(row[0].success_rate()),
                qos(row[0].avg_qos_level())
            ),
            format!(
                "{}/{}",
                pct(row[1].success_rate()),
                qos(row[1].avg_qos_level())
            ),
            format!(
                "{}/{}",
                pct(row[2].success_rate()),
                qos(row[2].avg_qos_level())
            ),
        ]);
    }
    let which = match table.planner {
        PlannerKind::Basic => "Table 3 (basic)",
        PlannerKind::Tradeoff => "Table 4 (tradeoff)",
        PlannerKind::Random => "per-class breakdown (random)",
    };
    format!(
        "{which}: success rate / avg end-to-end QoS level per class\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_has_all_classes() {
        let mut stats = ClassStats::default();
        stats.record(Some(3));
        let table = ClassTable {
            planner: PlannerKind::Basic,
            cells: vec![[stats; 3]; 4],
        };
        let s = render(&table);
        for class in SessionClass::ALL {
            assert!(s.contains(class.label()), "{s}");
        }
        assert!(s.contains("Table 3"));
        assert!(s.contains("100.0%/3.00"));
    }
}
