//! Protocol overhead (§4.2): the paper derives that establishing one
//! session costs *one message round trip per participating QoSProxy*
//! (availability collection) plus the dispatch of the plan segments and
//! the local algorithm execution. This experiment measures the actual
//! message counts per establishment attempt in the simulated
//! environment, for both topology variants.

use super::{dump_results, run_seeded, ExperimentOpts};
use crate::table::TextTable;
use qosr_sim::{PlannerKind, ScenarioConfig, TopologyKind};

/// Message counts per rate and topology.
#[derive(Debug, Clone, Copy)]
pub struct OverheadRow {
    /// Topology variant.
    pub topology: TopologyKind,
    /// Sessions per 60 TU.
    pub rate: f64,
    /// Mean availability round trips per attempt.
    pub collects_per_attempt: f64,
    /// Mean plan-segment dispatches per *successful* establishment.
    pub dispatches_per_established: f64,
    /// Success rate (context).
    pub success_rate: f64,
}

/// Rates measured.
pub const RATES: [f64; 3] = [60.0, 120.0, 180.0];

/// Runs the overhead census.
pub fn run(opts: &ExperimentOpts) -> Vec<OverheadRow> {
    let base = opts.base_config();
    let mut configs = Vec::new();
    for &topology in &[TopologyKind::FullMesh, TopologyKind::Ring] {
        for &rate in &RATES {
            configs.push(ScenarioConfig {
                planner: PlannerKind::Basic,
                rate_per_60tu: rate,
                topology,
                ..base.clone()
            });
        }
    }
    let (_, raw) = run_seeded(&configs, opts.seeds);
    dump_results(opts, "overhead", &raw);

    let seeds = opts.seeds as usize;
    configs
        .iter()
        .enumerate()
        .map(|(i, cfg)| {
            let chunk = &raw[i * seeds..(i + 1) * seeds];
            let (mut collects, mut dispatches, mut attempts, mut established, mut succ) =
                (0u64, 0u64, 0u64, 0u64, 0u64);
            for r in chunk {
                collects += r.messages.collect_roundtrips;
                dispatches += r.messages.dispatches;
                attempts += r.messages.attempts;
                established += r.messages.established;
                succ += r.metrics.overall.successes;
            }
            debug_assert_eq!(succ, established);
            OverheadRow {
                topology: cfg.topology,
                rate: cfg.rate_per_60tu,
                collects_per_attempt: collects as f64 / attempts.max(1) as f64,
                dispatches_per_established: dispatches as f64 / established.max(1) as f64,
                success_rate: established as f64 / attempts.max(1) as f64,
            }
        })
        .collect()
}

/// Renders the census.
pub fn render(rows: &[OverheadRow]) -> String {
    let mut t = TextTable::new([
        "topology",
        "rate",
        "collect RTs/attempt",
        "dispatches/established",
        "success",
    ]);
    for r in rows {
        t.row([
            format!("{:?}", r.topology),
            format!("{:.0}", r.rate),
            format!("{:.2}", r.collects_per_attempt),
            format!("{:.2}", r.dispatches_per_established),
            format!("{:.1}%", 100.0 * r.success_rate),
        ]);
    }
    format!(
        "Protocol overhead (§4.2): messages per session establishment (basic)\n{}\
         \n(4 proxies participate -> 4 collection round trips per attempt; plan\n\
         segments group by owning proxy -> ~2 dispatches per established session:\n\
         the server-side CPU segment and the proxy-side CPU+paths segment.)\n",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn census_matches_protocol_structure() {
        let opts = ExperimentOpts {
            seeds: 1,
            horizon: 600.0,
            ..ExperimentOpts::default()
        };
        let rows = run(&opts);
        assert_eq!(rows.len(), 2 * RATES.len());
        for r in &rows {
            // Exactly one collection round trip per proxy per attempt.
            assert!((r.collects_per_attempt - 4.0).abs() < 1e-9);
            // Dispatches group by owning proxy: server + proxy host.
            assert!(
                r.dispatches_per_established > 1.5 && r.dispatches_per_established <= 2.0 + 1e-9,
                "dispatches {}",
                r.dispatches_per_established
            );
        }
        assert!(render(&rows).contains("Protocol overhead"));
    }
}
