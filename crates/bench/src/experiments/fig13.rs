//! Figure 13: success rate (a) and average end-to-end QoS level (b)
//! under *less diversified* resource requirements — per-resource values
//! compressed to a 3:1 max:min ratio with preserved means (§5.2.5).

use super::{dump_results, run_seeded, ExperimentOpts, ALGORITHMS, RATE_SWEEP};
use crate::experiments::fig11::Fig11Point;
use crate::table::{pct, qos, TextTable};
use qosr_sim::ScenarioConfig;

/// The compression ratio the paper reports ("the ratio between the
/// highest and lowest values is limited to 3:1").
pub const DIVERSITY_RATIO: f64 = 3.0;

/// Runs the low-diversity sweep; points mirror figure 11's shape.
pub fn run(opts: &ExperimentOpts) -> Vec<Fig11Point> {
    let base = ScenarioConfig {
        diversity_ratio: Some(DIVERSITY_RATIO),
        ..opts.base_config()
    };
    let configs: Vec<ScenarioConfig> = RATE_SWEEP
        .iter()
        .flat_map(|&rate| {
            let base = base.clone();
            ALGORITHMS.iter().map(move |&planner| ScenarioConfig {
                rate_per_60tu: rate,
                planner,
                ..base.clone()
            })
        })
        .collect();
    let (merged, raw) = run_seeded(&configs, opts.seeds);
    dump_results(opts, "fig13", &raw);

    RATE_SWEEP
        .iter()
        .enumerate()
        .map(|(i, &rate)| {
            let group = &merged[i * ALGORITHMS.len()..(i + 1) * ALGORITHMS.len()];
            Fig11Point {
                rate,
                success_rate: [
                    group[0].overall.success_rate(),
                    group[1].overall.success_rate(),
                    group[2].overall.success_rate(),
                ],
                avg_qos: [
                    group[0].overall.avg_qos_level(),
                    group[1].overall.avg_qos_level(),
                    group[2].overall.avg_qos_level(),
                ],
            }
        })
        .collect()
}

/// Renders both panels.
pub fn render(points: &[Fig11Point]) -> String {
    let mut out = String::new();
    out.push_str("Figure 13(a): success rate under low requirement diversity (3:1, same means)\n");
    let mut t = TextTable::new(["rate (ssn/60TU)", "basic", "tradeoff", "random"]);
    for p in points {
        t.row([
            format!("{:.0}", p.rate),
            pct(p.success_rate[0]),
            pct(p.success_rate[1]),
            pct(p.success_rate[2]),
        ]);
    }
    out.push_str(&t.render());
    out.push_str("\nFigure 13(b): average end-to-end QoS level under low diversity\n");
    let mut t = TextTable::new(["rate (ssn/60TU)", "basic", "tradeoff", "random"]);
    for p in points {
        t.row([
            format!("{:.0}", p.rate),
            qos(p.avg_qos[0]),
            qos(p.avg_qos[1]),
            qos(p.avg_qos[2]),
        ]);
    }
    out.push_str(&t.render());
    out
}
