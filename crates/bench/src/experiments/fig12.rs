//! Figure 12: overall reservation success rate under inaccurate
//! (stale) resource availability observations — panel (a) for *basic*,
//! panel (b) for *tradeoff* — with the accurate-observation curve of the
//! same algorithm and of *random* as references.

use super::{dump_results, run_seeded, ExperimentOpts, RATE_SWEEP};
use crate::table::{pct, TextTable};
use qosr_sim::{PlannerKind, ScenarioConfig};

/// The maximum observation ages `E` (TU) the experiment sweeps; 0 is the
/// accurate baseline.
pub const STALENESS_SWEEP: [f64; 4] = [0.0, 2.0, 4.0, 8.0];

/// One panel's data: `success[rate][e]` plus the random reference.
#[derive(Debug, Clone)]
pub struct Fig12Panel {
    /// The algorithm of this panel.
    pub planner: PlannerKind,
    /// Success rate per (rate index, staleness index).
    pub success: Vec<[f64; 4]>,
    /// Accurate-observation *random* reference per rate.
    pub random_reference: Vec<f64>,
}

/// Runs one panel (both panels share the random reference sweep; it is
/// re-run per panel for simplicity — it is cheap relative to the sweep).
pub fn run(opts: &ExperimentOpts, planner: PlannerKind) -> Fig12Panel {
    let base = opts.base_config();
    let mut configs: Vec<ScenarioConfig> = Vec::new();
    for &rate in &RATE_SWEEP {
        for &e in &STALENESS_SWEEP {
            configs.push(ScenarioConfig {
                rate_per_60tu: rate,
                planner,
                staleness: e,
                ..base.clone()
            });
        }
        configs.push(ScenarioConfig {
            rate_per_60tu: rate,
            planner: PlannerKind::Random,
            staleness: 0.0,
            ..base.clone()
        });
    }
    let (merged, raw) = run_seeded(&configs, opts.seeds);
    dump_results(opts, &format!("fig12-{}", planner.label()), &raw);

    let per_rate = STALENESS_SWEEP.len() + 1;
    let mut success = Vec::with_capacity(RATE_SWEEP.len());
    let mut random_reference = Vec::with_capacity(RATE_SWEEP.len());
    for (i, _) in RATE_SWEEP.iter().enumerate() {
        let group = &merged[i * per_rate..(i + 1) * per_rate];
        let mut row = [0.0; 4];
        for (j, cell) in row.iter_mut().enumerate() {
            *cell = group[j].overall.success_rate();
        }
        success.push(row);
        random_reference.push(group[STALENESS_SWEEP.len()].overall.success_rate());
    }
    Fig12Panel {
        planner,
        success,
        random_reference,
    }
}

/// Renders a panel.
pub fn render(panel: &Fig12Panel) -> String {
    let which = match panel.planner {
        PlannerKind::Basic => "Figure 12(a): basic",
        PlannerKind::Tradeoff => "Figure 12(b): tradeoff",
        PlannerKind::Random => "Figure 12(?): random",
    };
    let mut t = TextTable::new([
        "rate (ssn/60TU)".to_owned(),
        "E=0 (accurate)".to_owned(),
        "E=2".to_owned(),
        "E=4".to_owned(),
        "E=8".to_owned(),
        "random (accurate)".to_owned(),
    ]);
    for (i, &rate) in RATE_SWEEP.iter().enumerate() {
        t.row([
            format!("{rate:.0}"),
            pct(panel.success[i][0]),
            pct(panel.success[i][1]),
            pct(panel.success[i][2]),
            pct(panel.success[i][3]),
            pct(panel.random_reference[i]),
        ]);
    }
    format!(
        "{which} — success rate under observation staleness E\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_shape() {
        let panel = Fig12Panel {
            planner: PlannerKind::Basic,
            success: vec![[0.99, 0.98, 0.97, 0.95]; RATE_SWEEP.len()],
            random_reference: vec![0.9; RATE_SWEEP.len()],
        };
        let s = render(&panel);
        assert!(s.contains("Figure 12(a)"));
        assert!(s.contains("E=8"));
        assert!(s.contains("90.0%"));
        // Title + header + separator + one row per rate.
        assert_eq!(s.lines().count(), 3 + RATE_SWEEP.len());
    }
}
