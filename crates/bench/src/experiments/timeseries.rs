//! Utilization dynamics: a sampled time series of per-resource
//! utilization and live-session count over one run.
//!
//! Supports the §5.2.2 adaptivity story — the demand mix (and with it
//! the bottleneck resource) shifts every probability-shift period, and
//! the sampled series shows different resources saturating at different
//! times. The series is written as CSV for plotting.

use super::ExperimentOpts;
use crate::table::TextTable;
use qosr_sim::{run_scenario, PlannerKind, RunResult, ScenarioConfig};
use std::io::Write;

/// Runs one sampled scenario (basic, rate 120, 30-TU samples).
pub fn run(opts: &ExperimentOpts) -> RunResult {
    run_scenario(&ScenarioConfig {
        seed: 1,
        planner: PlannerKind::Basic,
        rate_per_60tu: 120.0,
        sample_period: Some(30.0),
        horizon: opts.horizon,
        requirement_scale: opts.scale,
        ..ScenarioConfig::default()
    })
}

/// Writes the series as CSV (`time,active_sessions,<resource...>`).
pub fn write_csv(result: &RunResult, mut w: impl Write) -> std::io::Result<()> {
    let Some(first) = result.timeseries.first() else {
        return Ok(());
    };
    let names: Vec<&str> = first.utilization.keys().map(String::as_str).collect();
    write!(w, "time,active_sessions")?;
    for n in &names {
        write!(w, ",{n}")?;
    }
    writeln!(w)?;
    for s in &result.timeseries {
        write!(w, "{},{}", s.time, s.active_sessions)?;
        for n in &names {
            write!(w, ",{:.4}", s.utilization[*n])?;
        }
        writeln!(w)?;
    }
    Ok(())
}

/// Renders a per-resource summary (mean / peak utilization).
pub fn render(result: &RunResult) -> String {
    let Some(first) = result.timeseries.first() else {
        return "no samples (sampling disabled?)\n".to_owned();
    };
    let n = result.timeseries.len() as f64;
    let mut t = TextTable::new(["resource", "mean util", "peak util"]);
    for name in first.utilization.keys() {
        let (mut sum, mut peak) = (0.0f64, 0.0f64);
        for s in &result.timeseries {
            let u = s.utilization[name];
            sum += u;
            peak = peak.max(u);
        }
        t.row([
            name.clone(),
            format!("{:.1}%", 100.0 * sum / n),
            format!("{:.1}%", 100.0 * peak),
        ]);
    }
    let peak_active = result
        .timeseries
        .iter()
        .map(|s| s.active_sessions)
        .max()
        .unwrap_or(0);
    format!(
        "Utilization time series (basic, 120 ssn/60TU, {} samples; peak {} live sessions)\n{}",
        result.timeseries.len(),
        peak_active,
        t.render()
    )
}

/// Runs, renders, and (when `--out` is set) writes the CSV.
pub fn run_and_report(opts: &ExperimentOpts) -> String {
    let result = run(opts);
    if let Some(dir) = &opts.out_dir {
        std::fs::create_dir_all(dir).expect("create results directory");
        let path = dir.join("timeseries.csv");
        let file = std::fs::File::create(&path).expect("create csv");
        write_csv(&result, std::io::BufWriter::new(file)).expect("write csv");
        eprintln!("wrote {}", path.display());
    }
    render(&result)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_and_summary() {
        let opts = ExperimentOpts {
            seeds: 1,
            horizon: 300.0,
            ..ExperimentOpts::default()
        };
        let result = run(&opts);
        assert!(!result.timeseries.is_empty());
        let mut csv = Vec::new();
        write_csv(&result, &mut csv).unwrap();
        let text = String::from_utf8(csv).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("time,active_sessions,"));
        assert_eq!(lines.len(), result.timeseries.len() + 1);
        // Every row has the same column count as the header.
        let cols = lines[0].split(',').count();
        assert!(lines[1..].iter().all(|l| l.split(',').count() == cols));

        let summary = render(&result);
        assert!(summary.contains("peak util"));
        assert!(summary.contains("H1.cpu"));
    }
}
