//! Brute-force oracles: exhaustive enumeration of feasible embedded
//! graphs (end-to-end reservation plans) for small services.
//!
//! Used by the property-test suites and by the `dagquality` experiment
//! to quantify the two documented limitations of the paper's DAG
//! heuristic (§4.3.2): spurious Pass-II failures and non-minimal
//! bottleneck indices.

use qosr_core::AvailabilityView;
use qosr_model::SessionInstance;

/// One feasible embedded graph: a `(qin, qout)` choice per component.
#[derive(Debug, Clone, PartialEq)]
pub struct Embedding {
    /// Per-component `(qin, qout)` selections, component-index order.
    pub choices: Vec<(usize, usize)>,
    /// The end-to-end (sink output) level reached.
    pub sink_level: usize,
    /// The embedding's bottleneck index `Ψ_G`.
    pub psi: f64,
}

/// Exhaustively enumerates every feasible embedded graph of `session`
/// under `view`. Exponential in the component count — intended for
/// services with ≤ ~6 components and small level sets.
pub fn enumerate_embeddings(session: &SessionInstance, view: &AvailabilityView) -> Vec<Embedding> {
    let service = session.service();
    let graph = service.graph();
    let k = service.components().len();

    // Feasible translation edges per component: (qin, qout, psi).
    let mut edges: Vec<Vec<(usize, usize, f64)>> = Vec::with_capacity(k);
    for c in 0..k {
        let comp = service.component(c);
        let mut list = Vec::new();
        for i in 0..comp.input_levels().len() {
            for o in 0..comp.output_levels().len() {
                let Some(demand) = session.demand(c, i, o) else {
                    continue;
                };
                if !demand.iter().all(|(rid, req)| req <= view.avail(rid)) {
                    continue;
                }
                let psi = demand
                    .max_ratio_over(|rid| view.avail(rid))
                    .map_or(0.0, |(_, p)| p);
                list.push((i, o, psi));
            }
        }
        edges.push(list);
    }

    // Depth-first product over per-component choices, checking the
    // dependency-edge consistency constraint: for each predecessor u of
    // v, link(v, qin_v)[pos(u)] == qout_u. Components are assigned in
    // topological order so predecessors are always decided first.
    let topo = graph.topo_order().to_vec();
    let mut chosen: Vec<Option<(usize, usize)>> = vec![None; k];
    let mut out = Vec::new();

    fn dfs(
        depth: usize,
        topo: &[usize],
        edges: &[Vec<(usize, usize, f64)>],
        session: &SessionInstance,
        chosen: &mut Vec<Option<(usize, usize)>>,
        psi: f64,
        out: &mut Vec<Embedding>,
    ) {
        let service = session.service();
        let graph = service.graph();
        if depth == topo.len() {
            let choices: Vec<(usize, usize)> =
                chosen.iter().map(|c| c.expect("complete")).collect();
            let sink_level = choices[graph.sink()].1;
            out.push(Embedding {
                choices,
                sink_level,
                psi,
            });
            return;
        }
        let v = topo[depth];
        'edge: for &(i, o, epsi) in &edges[v] {
            // Consistency with already-decided predecessors (the source
            // component has none — and no link table entries).
            if !graph.preds(v).is_empty() {
                let link = service.link(v, i);
                for (pos, &u) in graph.preds(v).iter().enumerate() {
                    let (_, u_out) = chosen[u].expect("topological order");
                    if link[pos] != u_out {
                        continue 'edge;
                    }
                }
            }
            chosen[v] = Some((i, o));
            dfs(depth + 1, topo, edges, session, chosen, psi.max(epsi), out);
            chosen[v] = None;
        }
    }
    dfs(0, &topo, &edges, session, &mut chosen, 0.0, &mut out);
    out
}

/// The oracle-optimal plan: the highest-ranked reachable sink level and
/// the minimum `Ψ_G` among embeddings reaching it.
pub fn best_embedding(session: &SessionInstance, view: &AvailabilityView) -> Option<Embedding> {
    let service = session.service();
    let ranking = service.sink_ranking();
    enumerate_embeddings(session, view)
        .into_iter()
        .fold(None, |best: Option<Embedding>, e| match best {
            None => Some(e),
            Some(b) => {
                let better = ranking[e.sink_level] > ranking[b.sink_level]
                    || (e.sink_level == b.sink_level && e.psi < b.psi);
                Some(if better { e } else { b })
            }
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::synthetic_chain;
    use qosr_core::{plan_basic, Qrg, QrgOptions};

    #[test]
    fn oracle_agrees_with_basic_on_chains() {
        for (k, q, avail) in [(2, 3, 50.0), (3, 3, 8.0), (4, 2, 100.0)] {
            let (session, space) = synthetic_chain(k, q);
            let view = AvailabilityView::from_fn(space.ids(), |_| avail);
            let qrg = Qrg::build(&session, &view, &QrgOptions::default());
            match (plan_basic(&qrg), best_embedding(&session, &view)) {
                (Ok(plan), Some(best)) => {
                    assert_eq!(plan.sink_level, best.sink_level, "k={k} q={q}");
                    assert!((plan.psi - best.psi).abs() < 1e-9);
                }
                (Err(_), None) => {}
                (a, b) => panic!("planner {a:?} vs oracle {b:?}"),
            }
        }
    }

    #[test]
    fn embedding_count_is_path_count_on_chains() {
        let (session, space) = synthetic_chain(3, 2);
        let view = AvailabilityView::from_fn(space.ids(), |_| 1000.0);
        // Fully populated tables: 2 choices at c0, then 2x2 at c1, etc.
        // Paths: c0 picks one of 2 outputs; c1 input fixed by c0, picks
        // one of 2 outputs; same at c2 -> 2^3 = 8.
        assert_eq!(enumerate_embeddings(&session, &view).len(), 8);
    }
}
