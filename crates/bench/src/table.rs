//! Minimal plain-text table rendering.

/// A left-aligned first column and right-aligned value columns, sized to
/// content — enough to render every table the harness prints.
#[derive(Debug, Default, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.header.len(),
            "row width must match header width"
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                if i == 0 {
                    line.push_str(&format!("{:<width$}", cell, width = widths[i]));
                } else {
                    line.push_str(&format!("{:>width$}", cell, width = widths[i]));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a fraction as a percentage with one decimal, `"-"` for NaN.
pub fn pct(x: f64) -> String {
    if x.is_nan() {
        "-".to_owned()
    } else {
        format!("{:.1}%", 100.0 * x)
    }
}

/// Formats a QoS level with two decimals, `"-"` for NaN.
pub fn qos(x: f64) -> String {
    if x.is_nan() {
        "-".to_owned()
    } else {
        format!("{x:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new(["name", "rate"]);
        t.row(["alpha", "99.9%"]);
        t.row(["b", "7%"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[2].contains("alpha"));
        // Right-aligned value column.
        assert!(lines[3].ends_with("7%"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = TextTable::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.9234), "92.3%");
        assert_eq!(pct(f64::NAN), "-");
        assert_eq!(qos(2.987), "2.99");
        assert_eq!(qos(f64::NAN), "-");
    }
}
