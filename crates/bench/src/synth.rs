//! Synthetic service generators for benchmarks and scaling studies.

use qosr_model::*;
use std::sync::Arc;

/// Builds a chain of `k` components, each with `q` input and `q` output
/// levels and a fully populated translation table (every `(i, o)` pair
/// feasible), one compute slot per component bound to its own resource.
///
/// Demands are deterministic smooth functions of `(component, i, o)` so
/// different paths have different bottlenecks. Used by the `scaling`
/// bench to exercise the O(K·Q²) complexity claim of §4.2.
pub fn synthetic_chain(k: usize, q: usize) -> (SessionInstance, ResourceSpace) {
    synthetic_chain_multi(k, q, 1)
}

/// [`synthetic_chain`] generalized to `slots` resource slots per
/// component (CPU, memory, disk I/O — cycling through the kinds), each
/// bound to its own resource: the paper's *multi-resource* reservation
/// setting, where every translation entry demands an amount of every
/// slot and the per-candidate bottleneck is the max over them.
///
/// Per-slot demands are skewed by deterministic factors so different
/// slots bottleneck different `(i, o)` pairs. With `slots = 1` this is
/// exactly the classic single-resource chain.
pub fn synthetic_chain_multi(k: usize, q: usize, slots: usize) -> (SessionInstance, ResourceSpace) {
    assert!(k >= 1 && q >= 1 && slots >= 1);
    const KINDS: [(&str, ResourceKind); 3] = [
        ("cpu", ResourceKind::Compute),
        ("mem", ResourceKind::Memory),
        ("io", ResourceKind::DiskIo),
    ];
    let mut space = ResourceSpace::new();
    let mut components = Vec::with_capacity(k);
    let mut bindings = Vec::with_capacity(k);

    let schemas: Vec<_> = (0..=k)
        .map(|i| QosSchema::new(format!("lvl{i}"), ["grade"]))
        .collect();
    let levels = |s: &Arc<QosSchema>, n: usize| -> Vec<QosVector> {
        (1..=n as u32)
            .map(|x| QosVector::new(s.clone(), [x]))
            .collect()
    };

    for c in 0..k {
        let n_in = if c == 0 { 1 } else { q };
        let mut b = TableTranslation::builder(n_in, q, slots);
        for i in 0..n_in {
            for o in 0..q {
                // Demand grows with output grade and with the distance
                // between input and output grades (up/down-scaling cost).
                let base = 2.0 + o as f64;
                let warp = 0.5 * (i as f64 - o as f64).abs();
                let jitter = ((c * 31 + i * 7 + o * 3) % 5) as f64 * 0.25;
                let amounts: Vec<f64> = (0..slots)
                    .map(|s| {
                        // Slot skew: each slot scales the common shape
                        // differently so the bottleneck slot varies
                        // across (i, o) pairs and components.
                        let skew = 1.0 + 0.35 * s as f64 + 0.1 * ((c + i + o + s) % 3) as f64;
                        (base + warp + jitter) * skew
                    })
                    .collect();
                b = b.entry(i, o, amounts);
            }
        }
        let mut specs = Vec::with_capacity(slots);
        let mut rids = Vec::with_capacity(slots);
        for s in 0..slots {
            let (name, kind) = KINDS[s % KINDS.len()];
            specs.push(SlotSpec::new(format!("{name}{}", s / KINDS.len()), kind));
            rids.push(space.register(format!("r{c}_{name}{}", s / KINDS.len()), kind));
        }
        components.push(ComponentSpec::new(
            format!("c{c}"),
            levels(&schemas[c], n_in),
            levels(&schemas[c + 1], q),
            specs,
            Arc::new(b.build()),
        ));
        bindings.push(ComponentBinding::new(rids));
    }

    let service = Arc::new(
        ServiceSpec::chain(
            format!("synth-{k}x{q}"),
            components,
            (1..=q as u32).collect(),
        )
        .unwrap(),
    );
    let session = SessionInstance::new(service, bindings, 1.0).unwrap();
    (session, space)
}

/// A random diamond-family DAG scenario: optional prefix chain, a
/// fan-out component feeding `m ∈ 2..=3` parallel branches, a fan-in
/// merge, and an optional suffix chain. Translation tables are randomly
/// sparse, resources may be shared, and availability is drawn per
/// resource — exercising both documented limitations of the DAG
/// heuristic when checked against [`crate::oracle`].
pub fn random_dag_scenario(seed: u64) -> (SessionInstance, ResourceSpace, Vec<f64>) {
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    let mut rng = StdRng::seed_from_u64(seed);
    let prefix = rng.random_range(0..=1usize);
    let branches = rng.random_range(2..=3usize);
    let suffix = rng.random_range(0..=1usize);

    // Component layout: [prefix…, fanout, branch…, merge, suffix…].
    let fanout = prefix;
    let first_branch = fanout + 1;
    let merge = first_branch + branches;
    let k = merge + 1 + suffix;

    let mut edges = Vec::new();
    for c in 1..=fanout {
        edges.push((c - 1, c));
    }
    for b in 0..branches {
        edges.push((fanout, first_branch + b));
        edges.push((first_branch + b, merge));
    }
    for c in merge + 1..k {
        edges.push((c - 1, c));
    }
    let graph = DependencyGraph::new(k, edges).unwrap();

    let mut space = ResourceSpace::new();
    let n_resources = rng.random_range(2..=4usize);
    let rids: Vec<ResourceId> = (0..n_resources)
        .map(|i| space.register(format!("r{i}"), ResourceKind::Compute))
        .collect();

    // Output level counts per component.
    let n_out: Vec<usize> = (0..k).map(|_| rng.random_range(1..=3)).collect();
    let schemas: Vec<_> = (0..k)
        .map(|c| QosSchema::new(format!("out{c}"), ["g"]))
        .collect();
    let src_schema = QosSchema::new("src", ["g"]);
    let out_levels = |c: usize| -> Vec<QosVector> {
        (1..=n_out[c] as u32)
            .map(|x| QosVector::new(schemas[c].clone(), [x]))
            .collect()
    };

    // Input levels per component (and their decompositions).
    let mut components = Vec::with_capacity(k);
    let mut bindings = Vec::with_capacity(k);
    for c in 0..k {
        let preds = graph.preds(c).to_vec();
        let input_levels: Vec<QosVector> = if preds.is_empty() {
            vec![QosVector::new(src_schema.clone(), [0])]
        } else if preds.len() == 1 {
            out_levels(preds[0])
        } else {
            // Fan-in: a random non-empty subset of the cartesian product
            // of predecessor output levels, concatenated.
            let mut combos: Vec<Vec<usize>> = vec![vec![]];
            for &p in &preds {
                let mut next = Vec::new();
                for combo in &combos {
                    for o in 0..n_out[p] {
                        let mut cc = combo.clone();
                        cc.push(o);
                        next.push(cc);
                    }
                }
                combos = next;
            }
            let keep: Vec<Vec<usize>> = combos
                .into_iter()
                .filter(|_| rng.random::<f64>() < 0.6)
                .collect();
            let keep = if keep.is_empty() {
                vec![vec![0; preds.len()]]
            } else {
                keep
            };
            keep.iter()
                .map(|combo| {
                    let parts: Vec<QosVector> = preds
                        .iter()
                        .zip(combo)
                        .map(|(&p, &o)| out_levels(p)[o].clone())
                        .collect();
                    QosVector::concat(parts.iter())
                })
                .collect()
        };

        let n_in = input_levels.len();
        let mut builder = TableTranslation::builder(n_in, n_out[c], 1);
        let mut any = false;
        for i in 0..n_in {
            for o in 0..n_out[c] {
                if rng.random::<f64>() < 0.75 {
                    builder = builder.entry(i, o, [rng.random_range(1.0..=40.0)]);
                    any = true;
                }
            }
        }
        if !any {
            builder = builder.entry(0, 0, [5.0]);
        }
        components.push(ComponentSpec::new(
            format!("c{c}"),
            input_levels,
            out_levels(c),
            vec![SlotSpec::new("cpu", ResourceKind::Compute)],
            Arc::new(builder.build()),
        ));
        bindings.push(ComponentBinding::new([
            rids[rng.random_range(0..rids.len())]
        ]));
    }

    let sink = graph.sink();
    let mut ranking: Vec<u32> = (1..=n_out[sink] as u32).collect();
    for i in (1..ranking.len()).rev() {
        let j = rng.random_range(0..=i);
        ranking.swap(i, j);
    }
    let service = Arc::new(
        ServiceSpec::new(format!("dag-{seed}"), components, graph, ranking)
            .expect("generated DAG is valid"),
    );
    let scale = [1.0, 2.0][rng.random_range(0..2usize)];
    let session = SessionInstance::new(service, bindings, scale).unwrap();
    let avail: Vec<f64> = (0..n_resources)
        .map(|_| rng.random_range(5.0..=120.0))
        .collect();
    (session, space, avail)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qosr_core::{plan_basic, AvailabilityView, Qrg, QrgOptions};

    #[test]
    fn synthetic_chains_plan_successfully() {
        for (k, q) in [(1, 1), (3, 4), (8, 8)] {
            let (session, space) = synthetic_chain(k, q);
            let view = AvailabilityView::from_fn(space.ids(), |_| 1000.0);
            let qrg = Qrg::build(&session, &view, &QrgOptions::default());
            let plan = plan_basic(&qrg).expect("ample availability");
            assert_eq!(plan.assignments.len(), k);
            // Highest level reachable with ample availability.
            assert_eq!(plan.sink_level, q - 1);
        }
    }

    #[test]
    fn node_count_scales_with_k_and_q() {
        let (s1, sp1) = synthetic_chain(2, 2);
        let (s2, sp2) = synthetic_chain(4, 8);
        let v1 = AvailabilityView::from_fn(sp1.ids(), |_| 100.0);
        let v2 = AvailabilityView::from_fn(sp2.ids(), |_| 100.0);
        let q1 = Qrg::build(&s1, &v1, &QrgOptions::default());
        let q2 = Qrg::build(&s2, &v2, &QrgOptions::default());
        assert!(q2.n_nodes() > q1.n_nodes());
        assert!(q2.n_translation_edges() > q1.n_translation_edges());
    }
}
