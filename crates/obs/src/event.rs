//! The trace-event record.
//!
//! One [`TraceEvent`] is one timestamped fact about one session's
//! lifecycle. The record is a *flat* struct — a unit-enum [`EventKind`]
//! plus optional payload fields — rather than a data-carrying enum, so
//! that every event serializes to one self-describing JSON object and
//! any language can consume the JSONL stream with no schema negotiation.
//! Fields that do not apply to a kind are simply `null`.

use serde::{Deserialize, Serialize};

/// What happened. See each variant for which [`TraceEvent`] payload
/// fields it populates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// Preamble: binds [`TraceEvent::resource`] to a human-readable
    /// [`TraceEvent::name`]. Emitted once per resource at trace start by
    /// whoever owns the resource space (e.g. the simulator).
    ResourceName,
    /// Phase 2 of the establishment protocol began for a new session
    /// attempt. Payload: `service`.
    PlanStarted,
    /// The planner scored one candidate `(Q^in, Q^out)` translation pair.
    /// Payload: `component`, `qin`, `qout`, `feasible`, `psi` (the
    /// contention index ψ when feasible; the limiting `req/avail`
    /// overshoot ratio when not), `resource`/`alpha` (the pair's most
    /// stressed resource).
    CandidateEvaluated,
    /// Planning produced an end-to-end plan. Payload: `service`, `level`
    /// (the achieved rank), `psi` (bottleneck Ψ), `resource`/`alpha`
    /// (the bottleneck resource).
    PlanCompleted,
    /// Planning failed — no feasible end-to-end plan. Payload: `service`,
    /// `detail` (the error), and when identifiable `resource`/`psi` (the
    /// nearest-miss blocking resource and its overshoot ratio).
    PlanRejected,
    /// One hop (component) of the committed plan, with its per-hop ψ.
    /// Payload: `component`, `qin`, `qout`, `psi`, `resource`.
    HopSelected,
    /// The α-tradeoff policy (§4.3.1) stepped the session down from the
    /// best reachable level. Payload: `level` (the rank settled for),
    /// `detail` (the rank given up).
    TradeoffDowngrade,
    /// Phase 3 dispatched and every broker accepted: the session is
    /// established. Payload: `session`, `service`, `level`, `psi`,
    /// `resource`/`alpha` (plan bottleneck).
    ReservationCommitted,
    /// A broker rejected its segment during dispatch; the whole plan was
    /// rolled back. Payload: `session`, `resource` (the rejecting
    /// broker), `detail`.
    ReservationRejected,
    /// A live session renegotiated to a strictly better plan. Payload:
    /// `session`, `level` (new rank), `psi`.
    SessionUpgraded,
    /// A session terminated and released all its reservations. Payload:
    /// `session`, `detail` (total amount released).
    SessionReleased,
    /// An advance-booking window could not be reserved atomically and
    /// was rolled back. Payload: `session`, `resource`, `detail`.
    AdvanceConflict,
    /// An advance request was booked: a rigid window committed across
    /// its brokers, or a malleable bulk transfer got a rate profile.
    /// Payload: `session`, `value` (booked volume), `psi` (the profile's
    /// contention index), `detail` (the `[start, end)` window), and for
    /// malleable requests `resource`.
    AdvanceBooked,
    /// A rigid advance request displaced malleable bookings: the
    /// victims were cancelled, the rigid window committed, and every
    /// victim was replanned around it (all-or-nothing). Payload:
    /// `session` (the rigid winner), `value` (its booked volume), `psi`,
    /// `detail` (how many malleable sessions moved).
    AdvanceRepacked,
    /// An advance request was rejected — no feasible window/profile, and
    /// (if preemption was allowed) repacking could not make room.
    /// Payload: `session`, `detail` (the error), `value` (the nearest
    /// feasible deadline for malleable requests, when one exists).
    AdvanceRejected,
    /// A fault fired: a host crashed, a protocol message was dropped, or
    /// a commit was made to fail. Payload: `name` (the affected host),
    /// `detail` (what kind of fault).
    FaultInjected,
    /// A crashed host came back up and re-admitted its capacity.
    /// Payload: `name` (the host).
    HostRecovered,
    /// An establishment attempt failed transiently and a retry was
    /// scheduled (bounded, with exponential backoff). Payload: `service`,
    /// `detail` (cause, attempt number, backoff delay).
    EstablishRetry,
    /// Partially reserved hops of a plan were rolled back after a later
    /// hop failed (two-phase reserve/commit abort). Payload: `session`,
    /// `detail`.
    EstablishRollback,
    /// An establishment committed, but at a lower end-to-end rank than
    /// the first attempt planned — the graceful-degradation path.
    /// Payload: `session`, `level` (the committed rank), `detail` (the
    /// rank first planned).
    DegradedEstablish,
    /// A live session was killed because a host holding part of its
    /// reservation crashed; all its reservations were released. Payload:
    /// `session`, `detail` (total amount released).
    SessionLost,
    /// An establishment exhausted its retry budget on injected faults
    /// and failed. Payload: `service`, `detail`.
    EstablishFaulted,
    /// A batched admission round planned all its requests in parallel
    /// against one epoch-stamped availability snapshot. Payload: `level`
    /// (batch size), `detail` (epoch and worker count).
    BatchPlanned,
    /// The sequential commit phase of a batched round found that an
    /// earlier commit in the same round consumed a plan's Ψ-critical
    /// resource — the plan no longer fits the round's working view.
    /// Payload: `service`, `resource` (the contended resource), `psi`
    /// (the `req/avail` overshoot ratio), `detail`.
    CommitConflict,
    /// A conflicted request was replanned against the round's working
    /// view (bounded retries) instead of being failed. Payload:
    /// `service`, `detail` (replan attempt number and epoch).
    Replanned,
    /// A delta-aware prepare either repaired the cached relaxation in
    /// place or fell back to a full rebuild. Payload: `service`,
    /// `feasible` (`true` = repaired, `false` = full rebuild), `level`
    /// (resources whose availability moved past the ψ-quantization
    /// threshold), `value` (QRG nodes recomputed by the repair),
    /// `detail` (epoch/attempt context, or the fallback reason).
    DeltaRepair,
    /// One span of a traced request's causal tree (see
    /// [`RequestTrace`](crate::RequestTrace)), emitted depth-first in
    /// causal order when a tracer records with a live sink. Payload:
    /// `trace`, `name` (the span kind: `queue`, `collect`, `plan`,
    /// `replan`, `commit`), `duration_ns`, `value` (start offset from
    /// ingress, ns), and when present `psi`, `resource` (conflict),
    /// `level` (attempt), `detail` (planner).
    RequestSpan,
    /// A traced request completed, closing its span tree. Payload:
    /// `trace`, `name` (the outcome: `committed`, `degraded`,
    /// `rejected`), `duration_ns` (end-to-end latency), and when
    /// admitted `session`, `level` (rank), `psi`; `service` when known.
    RequestOutcome,
    /// One timed pipeline phase finished (span drop). Payload: `name`
    /// (the phase: `collect`, `plan`, `commit`, `replan`, `rollback`),
    /// `duration_ns` (measured wall-clock nanoseconds).
    PhaseTiming,
    /// One sampled utilization observation from the simulator's
    /// sampling tick. Payload: `name` (the resource or broker label),
    /// `value` (utilization in `[0, 1]`, i.e. `1 - available/capacity`).
    UtilizationSample,
    /// A scenario-DSL rule fired: a timed trigger reached its instant or
    /// a condition trigger crossed its threshold, and the rule's events
    /// were applied to the run. Payload: `name` (the rule's label),
    /// `detail` (the trigger kind and a summary of the applied events),
    /// `value` (the measured quantity for condition triggers — the
    /// utilization or session count that crossed).
    ScenarioTrigger,
}

/// One timestamped trace record. Construct with [`TraceEvent::new`] and
/// the builder-style `with_*` methods:
///
/// ```
/// use qosr_obs::{EventKind, TraceEvent};
/// let ev = TraceEvent::new(12.5, EventKind::ReservationCommitted)
///     .with_session(7)
///     .with_level(3)
///     .with_psi(0.42)
///     .with_resource(2);
/// assert_eq!(ev.kind, EventKind::ReservationCommitted);
/// assert_eq!(ev.session, Some(7));
/// let line = serde_json::to_string(&ev).unwrap();
/// let back: TraceEvent = serde_json::from_str(&line).unwrap();
/// assert_eq!(back, ev);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Event timestamp in simulated time units (TU). Instrumented code
    /// forwards its `SimTime`, so replayed timelines are in sim-time.
    pub time: f64,
    /// What happened.
    pub kind: EventKind,
    /// The session id at the brokers, once one exists.
    #[serde(default)]
    pub session: Option<u64>,
    /// The service spec's name.
    #[serde(default)]
    pub service: Option<String>,
    /// Component index within the service.
    #[serde(default)]
    pub component: Option<u32>,
    /// Input QoS level index of a candidate/hop.
    #[serde(default)]
    pub qin: Option<u32>,
    /// Output QoS level index of a candidate/hop.
    #[serde(default)]
    pub qout: Option<u32>,
    /// Whether the candidate pair fits current availability.
    #[serde(default)]
    pub feasible: Option<bool>,
    /// An end-to-end QoS rank (1-based; higher is better).
    #[serde(default)]
    pub level: Option<u32>,
    /// A contention index ψ (or, for infeasible candidates, the limiting
    /// `req/avail` overshoot ratio, which is then > 1).
    #[serde(default)]
    pub psi: Option<f64>,
    /// The availability-change index α of the event's resource.
    #[serde(default)]
    pub alpha: Option<f64>,
    /// A resource id (`ResourceId.0`, widened). Resolve to a name via
    /// [`EventKind::ResourceName`] preamble events.
    #[serde(default)]
    pub resource: Option<u64>,
    /// A human-readable resource name ([`EventKind::ResourceName`]).
    #[serde(default)]
    pub name: Option<String>,
    /// Free-form context (error text, amounts, ranks given up).
    #[serde(default)]
    pub detail: Option<String>,
    /// A measured wall-clock duration in nanoseconds
    /// ([`EventKind::PhaseTiming`]).
    #[serde(default)]
    pub duration_ns: Option<u64>,
    /// A sampled measurement ([`EventKind::UtilizationSample`]).
    #[serde(default)]
    pub value: Option<f64>,
    /// The ingress-minted request trace id ([`EventKind::RequestSpan`],
    /// [`EventKind::RequestOutcome`]).
    #[serde(default)]
    pub trace: Option<u64>,
}

impl TraceEvent {
    /// A bare event of `kind` at `time`, all payload fields empty.
    pub fn new(time: f64, kind: EventKind) -> Self {
        TraceEvent {
            time,
            kind,
            session: None,
            service: None,
            component: None,
            qin: None,
            qout: None,
            feasible: None,
            level: None,
            psi: None,
            alpha: None,
            resource: None,
            name: None,
            detail: None,
            duration_ns: None,
            value: None,
            trace: None,
        }
    }

    /// Sets the session id.
    pub fn with_session(mut self, session: u64) -> Self {
        self.session = Some(session);
        self
    }

    /// Sets the service name.
    pub fn with_service(mut self, service: impl Into<String>) -> Self {
        self.service = Some(service.into());
        self
    }

    /// Sets the `(component, qin, qout)` triple of a candidate or hop.
    pub fn with_pair(mut self, component: u32, qin: u32, qout: u32) -> Self {
        self.component = Some(component);
        self.qin = Some(qin);
        self.qout = Some(qout);
        self
    }

    /// Sets the feasibility flag.
    pub fn with_feasible(mut self, feasible: bool) -> Self {
        self.feasible = Some(feasible);
        self
    }

    /// Sets the QoS rank.
    pub fn with_level(mut self, level: u32) -> Self {
        self.level = Some(level);
        self
    }

    /// Sets the contention index ψ.
    pub fn with_psi(mut self, psi: f64) -> Self {
        self.psi = Some(psi);
        self
    }

    /// Sets the availability-change index α.
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        self.alpha = Some(alpha);
        self
    }

    /// Sets the resource id.
    pub fn with_resource(mut self, resource: u64) -> Self {
        self.resource = Some(resource);
        self
    }

    /// Sets the resource name.
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// Sets the free-form detail text.
    pub fn with_detail(mut self, detail: impl Into<String>) -> Self {
        self.detail = Some(detail.into());
        self
    }

    /// Sets the measured duration in nanoseconds.
    pub fn with_duration_ns(mut self, duration_ns: u64) -> Self {
        self.duration_ns = Some(duration_ns);
        self
    }

    /// Sets the sampled measurement value.
    pub fn with_value(mut self, value: f64) -> Self {
        self.value = Some(value);
        self
    }

    /// Sets the request trace id.
    pub fn with_trace(mut self, trace: u64) -> Self {
        self.trace = Some(trace);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sets_payload_fields() {
        let ev = TraceEvent::new(1.0, EventKind::CandidateEvaluated)
            .with_pair(2, 0, 1)
            .with_feasible(false)
            .with_psi(1.5)
            .with_resource(9)
            .with_alpha(0.8)
            .with_detail("x");
        assert_eq!(ev.component, Some(2));
        assert_eq!(ev.qin, Some(0));
        assert_eq!(ev.qout, Some(1));
        assert_eq!(ev.feasible, Some(false));
        assert_eq!(ev.psi, Some(1.5));
        assert_eq!(ev.resource, Some(9));
        assert_eq!(ev.alpha, Some(0.8));
        assert_eq!(ev.detail.as_deref(), Some("x"));
    }

    #[test]
    fn serde_roundtrip_preserves_every_field() {
        let ev = TraceEvent::new(3.25, EventKind::PlanCompleted)
            .with_service("svc")
            .with_level(3)
            .with_psi(0.24)
            .with_resource(4)
            .with_alpha(1.0);
        let json = serde_json::to_string(&ev).unwrap();
        let back: TraceEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(back, ev);
    }

    #[test]
    fn telemetry_fields_round_trip() {
        let ev = TraceEvent::new(2.0, EventKind::PhaseTiming)
            .with_name("plan")
            .with_duration_ns(12_345);
        let back: TraceEvent = serde_json::from_str(&serde_json::to_string(&ev).unwrap()).unwrap();
        assert_eq!(back.duration_ns, Some(12_345));
        let ev = TraceEvent::new(3.0, EventKind::UtilizationSample)
            .with_name("h0.cpu")
            .with_value(0.75);
        let back: TraceEvent = serde_json::from_str(&serde_json::to_string(&ev).unwrap()).unwrap();
        assert_eq!(back.value, Some(0.75));
    }

    #[test]
    fn missing_optional_fields_deserialize_as_none() {
        let json = r#"{"time": 1.0, "kind": "SessionReleased", "session": 4}"#;
        let ev: TraceEvent = serde_json::from_str(json).unwrap();
        assert_eq!(ev.kind, EventKind::SessionReleased);
        assert_eq!(ev.session, Some(4));
        assert_eq!(ev.psi, None);
        assert_eq!(ev.service, None);
    }
}
