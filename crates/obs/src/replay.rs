//! Replaying a recorded trace: JSONL loading, per-session timelines,
//! and the run-level [`TraceSummary`].
//!
//! The summary is designed to agree *exactly* with the simulator's
//! `RunMetrics` for the same run: the coordinator emits exactly one
//! [`EventKind::PlanStarted`] per establishment attempt and one
//! [`EventKind::ReservationCommitted`] per success, carrying the
//! committed QoS rank — so [`TraceSummary::success_rate`] and
//! [`TraceSummary::mean_qos_level`] reproduce the paper's figure-8/9
//! metrics from the event log alone. The `qosr report` CLI subcommand
//! is a thin formatter over this module.

use std::collections::BTreeMap;
use std::fs::File;
use std::io::{self, BufRead, BufReader};
use std::path::Path;

use crate::event::{EventKind, TraceEvent};
use crate::hist::{psi_bucket_bounds, Histogram, PsiHistogram};
use crate::trace::Tracer;

/// Reads a JSON Lines trace file, skipping blank lines. A malformed
/// line aborts with [`io::ErrorKind::InvalidData`] naming the line
/// number.
pub fn read_jsonl(path: impl AsRef<Path>) -> io::Result<Vec<TraceEvent>> {
    let file = File::open(path)?;
    let reader = BufReader::new(file);
    let mut events = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let event: TraceEvent = serde_json::from_str(&line).map_err(|err| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {}: {}", idx + 1, err),
            )
        })?;
        events.push(event);
    }
    Ok(events)
}

/// Groups events by session id, preserving event order within each
/// session. Events without a session id (preamble, plan-phase events
/// before an id is assigned) are returned separately as the second
/// element.
pub fn session_timelines(
    events: &[TraceEvent],
) -> (BTreeMap<u64, Vec<TraceEvent>>, Vec<TraceEvent>) {
    let mut by_session: BTreeMap<u64, Vec<TraceEvent>> = BTreeMap::new();
    let mut unscoped = Vec::new();
    for event in events {
        match event.session {
            Some(id) => by_session.entry(id).or_default().push(event.clone()),
            None => unscoped.push(event.clone()),
        }
    }
    (by_session, unscoped)
}

/// Run-level aggregates reduced from a trace, mirroring `RunMetrics`.
#[derive(Debug, Default)]
pub struct TraceSummary {
    /// Establishment attempts ([`EventKind::PlanStarted`]).
    pub plans_started: u64,
    /// Attempts whose planning phase produced a plan.
    pub plans_completed: u64,
    /// Attempts rejected during planning.
    pub plans_rejected: u64,
    /// Sessions committed at every broker.
    pub committed: u64,
    /// Plans that a broker rejected during dispatch.
    pub rejected_at_dispatch: u64,
    /// Sessions released.
    pub released: u64,
    /// Renegotiation upgrades.
    pub upgrades: u64,
    /// α-tradeoff downgrades taken.
    pub downgrades: u64,
    /// Advance-booking conflicts.
    pub advance_conflicts: u64,
    /// Advance requests booked ([`EventKind::AdvanceBooked`]).
    pub advance_booked: u64,
    /// Rigid advance requests admitted by preempt-and-repack
    /// ([`EventKind::AdvanceRepacked`]).
    pub advance_repacked: u64,
    /// Advance requests rejected ([`EventKind::AdvanceRejected`]).
    pub advance_rejected: u64,
    /// Total volume booked by advance requests (sum of
    /// [`EventKind::AdvanceBooked`]/[`EventKind::AdvanceRepacked`]
    /// `value` payloads).
    pub advance_volume: f64,
    /// Injected faults that fired (crashes, drops, commit failures).
    pub faults_injected: u64,
    /// Crashed hosts that came back up.
    pub host_recoveries: u64,
    /// Establishment retries taken after transient failures.
    pub retries: u64,
    /// Partial-plan rollbacks (two-phase aborts).
    pub rollbacks: u64,
    /// Commits at a lower rank than first planned (graceful degradation).
    pub degraded: u64,
    /// Live sessions killed by host crashes.
    pub sessions_lost: u64,
    /// Establishments that failed after exhausting fault retries.
    pub fault_failures: u64,
    /// Batched admission rounds planned against one epoch snapshot.
    pub batches_planned: u64,
    /// Same-round commit conflicts caught by the sequential commit phase.
    pub commit_conflicts: u64,
    /// Conflicted requests replanned against the round's working view.
    pub replans: u64,
    /// Delta-aware prepares that repaired the cached relaxation in
    /// place ([`EventKind::DeltaRepair`] with `feasible = true`).
    pub delta_repairs: u64,
    /// Delta-aware prepares that fell back to a full rebuild
    /// ([`EventKind::DeltaRepair`] with `feasible = false`).
    pub delta_fallbacks: u64,
    /// QRG nodes recomputed by incremental relaxation repairs (summed
    /// from [`EventKind::DeltaRepair`] `value` payloads).
    pub relax_nodes_repaired: u64,
    /// Scenario-DSL rule firings ([`EventKind::ScenarioTrigger`]).
    pub scenario_triggers: u64,
    /// Firing counts per scenario rule label.
    pub triggers_by_rule: BTreeMap<String, u64>,
    /// Sum of committed QoS ranks (for [`TraceSummary::mean_qos_level`]).
    pub qos_level_sum: u64,
    /// Commits per bottleneck resource, keyed by resolved name.
    pub bottlenecks: BTreeMap<String, u64>,
    /// Histogram of committed bottleneck Ψ values.
    pub psi_hist: PsiHistogram,
    /// Per-phase wall-clock nanosecond distributions rebuilt from
    /// [`EventKind::PhaseTiming`] events, keyed by phase name — the
    /// offline twin of the live
    /// [`PhaseTimers`](crate::PhaseTimers) histograms, sharing the same
    /// bucketing so counts and quantiles agree with the registry.
    pub phase_timings: BTreeMap<String, Histogram>,
    /// Utilization aggregates per sampled resource/broker label, from
    /// [`EventKind::UtilizationSample`] events.
    pub utilization: BTreeMap<String, UtilStat>,
    /// Traced requests seen ([`EventKind::RequestOutcome`] events).
    pub requests_traced: u64,
    /// Traced-request outcome counts keyed by label
    /// (`committed`/`degraded`/`rejected`).
    pub request_outcomes: BTreeMap<String, u64>,
    /// Per-span-kind nanosecond distributions rebuilt from
    /// [`EventKind::RequestSpan`] events, keyed by span name (`queue`,
    /// `collect`, `plan`, `replan`, `commit`) — the offline twin of the
    /// live [`Tracer`] span histograms, sharing the same bucketing so
    /// per-request attribution from a JSONL trace agrees with the live
    /// aggregates field-for-field.
    pub request_spans: BTreeMap<String, Histogram>,
    /// End-to-end traced-request latency distribution (from
    /// [`EventKind::RequestOutcome`] `duration_ns`).
    pub request_total: Histogram,
    /// Resource id → name bindings from the trace preamble.
    pub names: BTreeMap<u64, String>,
}

/// Aggregate of one label's sampled utilization time series.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct UtilStat {
    /// Samples seen.
    pub samples: u64,
    /// Sum of sampled values (for the mean).
    pub sum: f64,
    /// Largest sampled value.
    pub peak: f64,
}

impl UtilStat {
    /// Mean sampled utilization, or `None` before any sample.
    pub fn mean(&self) -> Option<f64> {
        (self.samples > 0).then(|| self.sum / self.samples as f64)
    }
}

impl TraceSummary {
    /// Reduces an event stream to run-level aggregates.
    pub fn from_events(events: &[TraceEvent]) -> Self {
        let mut summary = TraceSummary::default();
        // Names first, so bottleneck keys resolve even if a commit
        // precedes a late ResourceName event in a hand-edited trace.
        for event in events {
            if event.kind == EventKind::ResourceName {
                if let (Some(id), Some(name)) = (event.resource, event.name.as_ref()) {
                    summary.names.insert(id, name.clone());
                }
            }
        }
        for event in events {
            match event.kind {
                EventKind::ResourceName => {}
                EventKind::PlanStarted => summary.plans_started += 1,
                EventKind::PlanCompleted => summary.plans_completed += 1,
                EventKind::PlanRejected => summary.plans_rejected += 1,
                EventKind::CandidateEvaluated | EventKind::HopSelected => {}
                EventKind::TradeoffDowngrade => summary.downgrades += 1,
                EventKind::ReservationCommitted => {
                    summary.committed += 1;
                    summary.qos_level_sum += u64::from(event.level.unwrap_or(0));
                    if let Some(psi) = event.psi {
                        summary.psi_hist.record(psi);
                    }
                    if let Some(resource) = event.resource {
                        let key = summary.resource_label(resource);
                        *summary.bottlenecks.entry(key).or_insert(0) += 1;
                    }
                }
                EventKind::ReservationRejected => summary.rejected_at_dispatch += 1,
                EventKind::SessionUpgraded => summary.upgrades += 1,
                EventKind::SessionReleased => summary.released += 1,
                EventKind::AdvanceConflict => summary.advance_conflicts += 1,
                EventKind::AdvanceBooked => {
                    summary.advance_booked += 1;
                    summary.advance_volume += event.value.unwrap_or(0.0);
                }
                EventKind::AdvanceRepacked => {
                    summary.advance_repacked += 1;
                    summary.advance_volume += event.value.unwrap_or(0.0);
                }
                EventKind::AdvanceRejected => summary.advance_rejected += 1,
                EventKind::FaultInjected => summary.faults_injected += 1,
                EventKind::HostRecovered => summary.host_recoveries += 1,
                EventKind::EstablishRetry => summary.retries += 1,
                EventKind::EstablishRollback => summary.rollbacks += 1,
                EventKind::DegradedEstablish => summary.degraded += 1,
                EventKind::SessionLost => summary.sessions_lost += 1,
                EventKind::EstablishFaulted => summary.fault_failures += 1,
                EventKind::BatchPlanned => summary.batches_planned += 1,
                EventKind::CommitConflict => summary.commit_conflicts += 1,
                EventKind::Replanned => summary.replans += 1,
                EventKind::DeltaRepair => {
                    if event.feasible == Some(true) {
                        summary.delta_repairs += 1;
                        summary.relax_nodes_repaired += event.value.unwrap_or(0.0) as u64;
                    } else {
                        summary.delta_fallbacks += 1;
                    }
                }
                EventKind::PhaseTiming => {
                    if let (Some(name), Some(ns)) = (event.name.as_ref(), event.duration_ns) {
                        summary
                            .phase_timings
                            .entry(name.clone())
                            .or_default()
                            .record(ns);
                    }
                }
                EventKind::UtilizationSample => {
                    if let (Some(name), Some(value)) = (event.name.as_ref(), event.value) {
                        let stat = summary.utilization.entry(name.clone()).or_default();
                        stat.samples += 1;
                        stat.sum += value;
                        stat.peak = stat.peak.max(value);
                    }
                }
                EventKind::ScenarioTrigger => {
                    summary.scenario_triggers += 1;
                    let label = event.name.clone().unwrap_or_else(|| "rule".to_owned());
                    *summary.triggers_by_rule.entry(label).or_insert(0) += 1;
                }
                EventKind::RequestSpan => {
                    if let (Some(name), Some(ns)) = (event.name.as_ref(), event.duration_ns) {
                        summary
                            .request_spans
                            .entry(name.clone())
                            .or_default()
                            .record(ns);
                    }
                }
                EventKind::RequestOutcome => {
                    summary.requests_traced += 1;
                    let label = event.name.clone().unwrap_or_else(|| "unknown".to_owned());
                    *summary.request_outcomes.entry(label).or_insert(0) += 1;
                    if let Some(ns) = event.duration_ns {
                        summary.request_total.record(ns);
                    }
                }
            }
        }
        summary
    }

    /// Checks that this summary's per-request attribution agrees
    /// field-for-field with a live [`Tracer`]'s aggregates: per-span-kind
    /// histogram snapshots, the end-to-end latency snapshot, outcome
    /// counts, and the traced-request total. Returns the first
    /// disagreement as `Err(description)`. Replay equivalence tests use
    /// this as the single source of truth for "the JSONL trace carries
    /// the whole attribution story".
    pub fn request_attribution_matches(&self, tracer: &Tracer) -> Result<(), String> {
        use crate::trace::{SpanKind, OUTCOME_COMMITTED, OUTCOME_DEGRADED, OUTCOME_REJECTED};
        for kind in SpanKind::ALL {
            let live = tracer.span_histogram(kind).snapshot();
            let replayed = self
                .request_spans
                .get(kind.name())
                .map(|h| h.snapshot())
                .unwrap_or_default();
            if live != replayed {
                return Err(format!(
                    "span `{}` diverged: live {live:?} vs replay {replayed:?}",
                    kind.name()
                ));
            }
        }
        let live_total = tracer.total_histogram().snapshot();
        let replayed_total = self.request_total.snapshot();
        if live_total != replayed_total {
            return Err(format!(
                "request total diverged: live {live_total:?} vs replay {replayed_total:?}"
            ));
        }
        let (committed, degraded, rejected) = tracer.outcome_counts();
        let outcome = |label: &str| self.request_outcomes.get(label).copied().unwrap_or(0);
        if committed != outcome(OUTCOME_COMMITTED)
            || degraded != outcome(OUTCOME_DEGRADED)
            || rejected != outcome(OUTCOME_REJECTED)
        {
            return Err(format!(
                "outcomes diverged: live ({committed}, {degraded}, {rejected}) vs replay {:?}",
                self.request_outcomes
            ));
        }
        if tracer.recorded() != self.requests_traced {
            return Err(format!(
                "traced count diverged: live {} vs replay {}",
                tracer.recorded(),
                self.requests_traced
            ));
        }
        Ok(())
    }

    /// The resolved display name for a resource id, falling back to the
    /// `r{id}` form used by `ResourceId`'s own `Display`.
    pub fn resource_label(&self, resource: u64) -> String {
        self.names
            .get(&resource)
            .cloned()
            .unwrap_or_else(|| format!("r{resource}"))
    }

    /// Committed sessions over establishment attempts — the paper's
    /// success rate (figure 8). `None` before any attempt.
    pub fn success_rate(&self) -> Option<f64> {
        (self.plans_started > 0).then(|| self.committed as f64 / self.plans_started as f64)
    }

    /// Mean committed end-to-end QoS rank — the paper's average QoS
    /// level (figure 9). `None` before any commit.
    pub fn mean_qos_level(&self) -> Option<f64> {
        (self.committed > 0).then(|| self.qos_level_sum as f64 / self.committed as f64)
    }

    /// Renders the summary as the table printed by `qosr report`.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "trace summary");
        let _ = writeln!(out, "  establishment attempts : {}", self.plans_started);
        let _ = writeln!(
            out,
            "  plans completed        : {} ({} rejected in planning)",
            self.plans_completed, self.plans_rejected
        );
        let _ = writeln!(
            out,
            "  sessions committed     : {} ({} rejected at dispatch)",
            self.committed, self.rejected_at_dispatch
        );
        let _ = writeln!(out, "  sessions released      : {}", self.released);
        let _ = writeln!(out, "  upgrades               : {}", self.upgrades);
        let _ = writeln!(out, "  tradeoff downgrades    : {}", self.downgrades);
        if self.advance_conflicts > 0 {
            let _ = writeln!(out, "  advance conflicts      : {}", self.advance_conflicts);
        }
        if self.advance_booked > 0 || self.advance_repacked > 0 || self.advance_rejected > 0 {
            let _ = writeln!(out, "  advance bookings       : {}", self.advance_booked);
            let _ = writeln!(out, "  advance repacks        : {}", self.advance_repacked);
            let _ = writeln!(out, "  advance rejections     : {}", self.advance_rejected);
            let _ = writeln!(out, "  advance volume booked  : {:.1}", self.advance_volume);
        }
        if self.faults_injected > 0
            || self.host_recoveries > 0
            || self.retries > 0
            || self.rollbacks > 0
            || self.degraded > 0
            || self.sessions_lost > 0
            || self.fault_failures > 0
        {
            let _ = writeln!(out, "  faults injected        : {}", self.faults_injected);
            let _ = writeln!(out, "  host recoveries        : {}", self.host_recoveries);
            let _ = writeln!(out, "  establish retries      : {}", self.retries);
            let _ = writeln!(out, "  rollbacks              : {}", self.rollbacks);
            let _ = writeln!(out, "  degraded establishes   : {}", self.degraded);
            let _ = writeln!(out, "  sessions lost          : {}", self.sessions_lost);
            let _ = writeln!(out, "  fault-exhausted fails  : {}", self.fault_failures);
        }
        if self.batches_planned > 0 || self.commit_conflicts > 0 || self.replans > 0 {
            let _ = writeln!(out, "  batch rounds planned   : {}", self.batches_planned);
            let _ = writeln!(out, "  commit conflicts       : {}", self.commit_conflicts);
            let _ = writeln!(out, "  replans                : {}", self.replans);
        }
        if self.scenario_triggers > 0 {
            let _ = writeln!(out, "  scenario triggers      : {}", self.scenario_triggers);
            for (rule, count) in &self.triggers_by_rule {
                let _ = writeln!(out, "    {rule:<24} {count}");
            }
        }
        if self.delta_repairs > 0 || self.delta_fallbacks > 0 {
            let _ = writeln!(out, "  delta repairs          : {}", self.delta_repairs);
            let _ = writeln!(out, "  delta fallbacks        : {}", self.delta_fallbacks);
            let _ = writeln!(
                out,
                "  relax nodes repaired   : {}",
                self.relax_nodes_repaired
            );
        }
        match self.success_rate() {
            Some(rate) => {
                let _ = writeln!(out, "  success rate           : {:.4}", rate);
            }
            None => {
                let _ = writeln!(out, "  success rate           : n/a");
            }
        }
        match self.mean_qos_level() {
            Some(level) => {
                let _ = writeln!(out, "  mean QoS level         : {:.4}", level);
            }
            None => {
                let _ = writeln!(out, "  mean QoS level         : n/a");
            }
        }
        if !self.bottlenecks.is_empty() {
            let _ = writeln!(out, "  bottleneck resources   :");
            for (name, count) in &self.bottlenecks {
                let _ = writeln!(out, "    {name:<24} {count}");
            }
        }
        let counts = self.psi_hist.counts();
        if counts.iter().any(|&c| c > 0) {
            let _ = writeln!(out, "  committed Ψ histogram  :");
            for (i, &count) in counts.iter().enumerate() {
                if count == 0 {
                    continue;
                }
                match psi_bucket_bounds(i) {
                    (lower, Some(upper)) => {
                        let _ = writeln!(out, "    [{lower:.1}, {upper:.1})              {count}");
                    }
                    (lower, None) => {
                        let _ = writeln!(out, "    [{lower:.1}, ∞)                {count}");
                    }
                }
            }
        }
        if !self.phase_timings.is_empty() {
            let _ = writeln!(out, "  phase timings (µs)     :");
            for (name, hist) in &self.phase_timings {
                let us = |q| hist.percentile(q).unwrap_or(0) as f64 / 1e3;
                let _ = writeln!(
                    out,
                    "    {name:<10} n={:<7} p50={:<9.1} p99={:<9.1} max={:.1}",
                    hist.count(),
                    us(0.50),
                    us(0.99),
                    hist.max().unwrap_or(0) as f64 / 1e3,
                );
            }
        }
        if !self.utilization.is_empty() {
            let _ = writeln!(out, "  utilization (mean/peak):");
            for (name, stat) in &self.utilization {
                let _ = writeln!(
                    out,
                    "    {name:<24} {:.3} / {:.3}",
                    stat.mean().unwrap_or(0.0),
                    stat.peak
                );
            }
        }
        if self.requests_traced > 0 {
            let _ = writeln!(out, "  traced requests        : {}", self.requests_traced);
            for (label, count) in &self.request_outcomes {
                let _ = writeln!(out, "    {label:<24} {count}");
            }
            let _ = writeln!(out, "  request spans (µs)     :");
            for (name, hist) in &self.request_spans {
                let us = |q| hist.percentile(q).unwrap_or(0) as f64 / 1e3;
                let _ = writeln!(
                    out,
                    "    {name:<10} n={:<7} p50={:<9.1} p99={:<9.1} max={:.1}",
                    hist.count(),
                    us(0.50),
                    us(0.99),
                    hist.max().unwrap_or(0) as f64 / 1e3,
                );
            }
            let us = |q| self.request_total.percentile(q).unwrap_or(0) as f64 / 1e3;
            let _ = writeln!(
                out,
                "    {:<10} n={:<7} p50={:<9.1} p99={:<9.1} max={:.1}",
                "total",
                self.request_total.count(),
                us(0.50),
                us(0.99),
                self.request_total.max().unwrap_or(0) as f64 / 1e3,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn commit(time: f64, session: u64, level: u32, psi: f64, resource: u64) -> TraceEvent {
        TraceEvent::new(time, EventKind::ReservationCommitted)
            .with_session(session)
            .with_level(level)
            .with_psi(psi)
            .with_resource(resource)
    }

    #[test]
    fn summary_reduces_lifecycle_counts() {
        let events = vec![
            TraceEvent::new(0.0, EventKind::ResourceName)
                .with_resource(3)
                .with_name("h0.cpu"),
            TraceEvent::new(1.0, EventKind::PlanStarted).with_service("clip"),
            TraceEvent::new(1.0, EventKind::PlanCompleted)
                .with_service("clip")
                .with_level(2),
            commit(1.0, 1, 2, 0.35, 3),
            TraceEvent::new(2.0, EventKind::PlanStarted).with_service("clip"),
            TraceEvent::new(2.0, EventKind::PlanRejected).with_service("clip"),
            TraceEvent::new(3.0, EventKind::SessionReleased).with_session(1),
        ];
        let summary = TraceSummary::from_events(&events);
        assert_eq!(summary.plans_started, 2);
        assert_eq!(summary.plans_completed, 1);
        assert_eq!(summary.plans_rejected, 1);
        assert_eq!(summary.committed, 1);
        assert_eq!(summary.released, 1);
        assert_eq!(summary.success_rate(), Some(0.5));
        assert_eq!(summary.mean_qos_level(), Some(2.0));
        assert_eq!(summary.bottlenecks.get("h0.cpu"), Some(&1));
        assert_eq!(summary.psi_hist.counts()[3], 1); // 0.35 ∈ [0.3, 0.4)
    }

    #[test]
    fn unresolved_resources_fall_back_to_display_form() {
        let events = vec![
            TraceEvent::new(0.0, EventKind::PlanStarted),
            commit(0.0, 1, 1, 0.1, 42),
        ];
        let summary = TraceSummary::from_events(&events);
        assert_eq!(summary.bottlenecks.get("r42"), Some(&1));
    }

    #[test]
    fn timelines_group_by_session() {
        let events = vec![
            TraceEvent::new(0.0, EventKind::ResourceName)
                .with_resource(0)
                .with_name("x"),
            commit(1.0, 1, 1, 0.2, 0),
            commit(2.0, 2, 2, 0.3, 0),
            TraceEvent::new(3.0, EventKind::SessionReleased).with_session(1),
        ];
        let (by_session, unscoped) = session_timelines(&events);
        assert_eq!(by_session.len(), 2);
        assert_eq!(by_session[&1].len(), 2);
        assert_eq!(by_session[&2].len(), 1);
        assert_eq!(unscoped.len(), 1);
    }

    #[test]
    fn batch_admission_events_reduce_and_render() {
        let events = vec![
            TraceEvent::new(0.0, EventKind::PlanStarted),
            TraceEvent::new(0.0, EventKind::BatchPlanned)
                .with_level(8)
                .with_detail("epoch 0, 4 workers"),
            TraceEvent::new(0.0, EventKind::CommitConflict)
                .with_service("clip")
                .with_resource(2)
                .with_psi(1.4),
            TraceEvent::new(0.0, EventKind::Replanned)
                .with_service("clip")
                .with_detail("replan 1, epoch 0"),
            TraceEvent::new(0.0, EventKind::DeltaRepair)
                .with_service("clip")
                .with_feasible(true)
                .with_level(2)
                .with_value(7.0)
                .with_detail("epoch 0"),
            TraceEvent::new(0.0, EventKind::DeltaRepair)
                .with_service("clip")
                .with_feasible(false)
                .with_detail("epoch 0, full: delta too large"),
        ];
        let summary = TraceSummary::from_events(&events);
        assert_eq!(summary.batches_planned, 1);
        assert_eq!(summary.commit_conflicts, 1);
        assert_eq!(summary.replans, 1);
        assert_eq!(summary.delta_repairs, 1);
        assert_eq!(summary.delta_fallbacks, 1);
        assert_eq!(summary.relax_nodes_repaired, 7);
        let rendered = summary.render();
        assert!(rendered.contains("batch rounds planned   : 1"));
        assert!(rendered.contains("commit conflicts       : 1"));
        assert!(rendered.contains("replans                : 1"));
        assert!(rendered.contains("delta repairs          : 1"));
        assert!(rendered.contains("delta fallbacks        : 1"));
        assert!(rendered.contains("relax nodes repaired   : 7"));
    }

    #[test]
    fn batch_block_is_hidden_for_non_batched_traces() {
        let summary = TraceSummary::from_events(&[]);
        assert!(!summary.render().contains("batch rounds planned"));
    }

    #[test]
    fn telemetry_events_reduce_into_phase_and_utilization_blocks() {
        let events = vec![
            TraceEvent::new(1.0, EventKind::PhaseTiming)
                .with_name("plan")
                .with_duration_ns(1_500),
            TraceEvent::new(1.0, EventKind::PhaseTiming)
                .with_name("plan")
                .with_duration_ns(2_500),
            TraceEvent::new(1.0, EventKind::PhaseTiming)
                .with_name("commit")
                .with_duration_ns(900),
            TraceEvent::new(2.0, EventKind::UtilizationSample)
                .with_name("h0.cpu")
                .with_value(0.25),
            TraceEvent::new(3.0, EventKind::UtilizationSample)
                .with_name("h0.cpu")
                .with_value(0.75),
        ];
        let summary = TraceSummary::from_events(&events);
        assert_eq!(summary.phase_timings["plan"].count(), 2);
        assert_eq!(summary.phase_timings["commit"].count(), 1);
        let util = &summary.utilization["h0.cpu"];
        assert_eq!(util.samples, 2);
        assert_eq!(util.mean(), Some(0.5));
        assert_eq!(util.peak, 0.75);
        let rendered = summary.render();
        assert!(rendered.contains("phase timings (µs)"));
        assert!(rendered.contains("utilization (mean/peak)"));
        assert!(rendered.contains("h0.cpu"));
    }

    #[test]
    fn scenario_triggers_reduce_and_render_per_rule() {
        let events = vec![
            TraceEvent::new(600.0, EventKind::ScenarioTrigger)
                .with_name("flash")
                .with_detail("at 600: 1 event(s)"),
            TraceEvent::new(700.0, EventKind::ScenarioTrigger)
                .with_name("flash")
                .with_detail("at 700: 1 event(s)"),
            TraceEvent::new(800.0, EventKind::ScenarioTrigger)
                .with_name("storm")
                .with_value(0.82),
        ];
        let summary = TraceSummary::from_events(&events);
        assert_eq!(summary.scenario_triggers, 3);
        assert_eq!(summary.triggers_by_rule["flash"], 2);
        assert_eq!(summary.triggers_by_rule["storm"], 1);
        let rendered = summary.render();
        assert!(rendered.contains("scenario triggers      : 3"));
        assert!(rendered.contains("flash"));
        // Untriggered traces omit the block entirely.
        assert!(!TraceSummary::from_events(&[])
            .render()
            .contains("scenario triggers"));
    }

    #[test]
    fn advance_events_reduce_and_render() {
        let events = vec![
            TraceEvent::new(1.0, EventKind::AdvanceBooked)
                .with_session(7)
                .with_value(600.0)
                .with_psi(0.6),
            TraceEvent::new(2.0, EventKind::AdvanceRepacked)
                .with_session(8)
                .with_value(400.0)
                .with_detail("moved 2 malleable sessions"),
            TraceEvent::new(3.0, EventKind::AdvanceRejected)
                .with_session(9)
                .with_detail("insufficient"),
        ];
        let summary = TraceSummary::from_events(&events);
        assert_eq!(summary.advance_booked, 1);
        assert_eq!(summary.advance_repacked, 1);
        assert_eq!(summary.advance_rejected, 1);
        assert_eq!(summary.advance_volume, 1000.0);
        let rendered = summary.render();
        assert!(rendered.contains("advance bookings       : 1"));
        assert!(rendered.contains("advance volume booked  : 1000.0"));
        // Traces with no advance traffic omit the block entirely.
        assert!(!TraceSummary::from_events(&[])
            .render()
            .contains("advance bookings"));
    }

    #[test]
    fn request_span_events_rebuild_the_live_attribution() {
        use crate::sink::MemorySink;
        use crate::trace::{RequestTrace, SpanKind, SpanRecord, Tracer, OUTCOME_COMMITTED};
        let tracer = Tracer::new(8);
        let sink = MemorySink::new();
        for id in 0..3u64 {
            tracer.record(
                RequestTrace {
                    trace: id,
                    service: Some("svc".into()),
                    outcome: OUTCOME_COMMITTED.into(),
                    session: Some(id),
                    rank: Some(2),
                    psi: Some(0.2),
                    conflicts: 0,
                    retries: 0,
                    total_ns: 300 + id,
                    spans: vec![
                        SpanRecord::new(SpanKind::Queue, 0, 100),
                        SpanRecord::new(SpanKind::Plan, 100, 150 + id),
                        SpanRecord::new(SpanKind::Commit, 250 + id, 50),
                    ],
                },
                &sink,
                id as f64,
            );
        }
        let summary = TraceSummary::from_events(&sink.events());
        assert_eq!(summary.requests_traced, 3);
        assert_eq!(summary.request_outcomes["committed"], 3);
        assert_eq!(summary.request_spans["plan"].count(), 3);
        summary.request_attribution_matches(&tracer).unwrap();
        let rendered = summary.render();
        assert!(rendered.contains("traced requests        : 3"));
        assert!(rendered.contains("request spans"));
        // Untraced traces omit the block entirely.
        assert!(!TraceSummary::from_events(&[])
            .render()
            .contains("traced requests"));
    }

    #[test]
    fn empty_trace_yields_no_rates() {
        let summary = TraceSummary::from_events(&[]);
        assert_eq!(summary.success_rate(), None);
        assert_eq!(summary.mean_qos_level(), None);
        assert!(summary.render().contains("n/a"));
    }
}
