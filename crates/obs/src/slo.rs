//! SLO engine: declarative admission-service targets evaluated with
//! multi-window burn rates.
//!
//! The admission service is treated as an SLA-bound service (per
//! "Design of QoS-aware Provisioning Systems"): operators declare
//! [`SloTargets`] — a p99 establish-latency bound, a maximum rejection
//! rate, a maximum degraded-commit rate — and the engine evaluates each
//! over two windows at once: a *long* window (everything since start,
//! the budget view) and a *short* window (the most recent
//! [`SHORT_WINDOW`] requests, the spike view). A target's **burn rate**
//! is `observed / target`; a target is **breached** only when both
//! windows burn above 1.0 — the classic multi-window rule that ignores
//! one-off blips (short spikes over a healthy history) and long-stale
//! history (a bad past the service has recovered from).
//!
//! [`SloReport`]s travel over the wire (the `slo` frame behind
//! `qosr slo`) and the burn rates are exported as Prometheus gauge
//! series by `qosr serve`. Breach *transitions* (healthy → breached)
//! also trigger an automatic flight-recorder dump, so the span trees of
//! the requests that burned the budget are on disk before the ring
//! recycles them.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

use crate::hist::Histogram;
use crate::trace::{OUTCOME_COMMITTED, OUTCOME_DEGRADED};

/// Requests in the short (spike-detection) window.
pub const SHORT_WINDOW: usize = 256;

/// Declarative service-level targets for the admission path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SloTargets {
    /// p99 establish latency bound, nanoseconds.
    pub p99_establish_ns: u64,
    /// Maximum tolerated rejection rate (0..=1).
    pub max_rejection_rate: f64,
    /// Maximum tolerated degraded-commit rate (0..=1).
    pub max_degraded_rate: f64,
}

impl Default for SloTargets {
    /// Deliberately generous defaults — a local `qosr serve` should run
    /// clean out of the box; production operators tighten per service.
    fn default() -> Self {
        SloTargets {
            p99_establish_ns: 250_000_000, // 250ms
            max_rejection_rate: 0.5,
            max_degraded_rate: 0.5,
        }
    }
}

/// How one observed request left the admission pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SloOutcome {
    /// Admitted at the planned rank.
    Committed,
    /// Admitted below the first-planned rank.
    Degraded,
    /// Not admitted.
    Rejected,
}

impl SloOutcome {
    /// Maps a [`RequestTrace`](crate::RequestTrace) outcome label.
    pub fn from_label(label: &str) -> SloOutcome {
        match label {
            OUTCOME_COMMITTED => SloOutcome::Committed,
            OUTCOME_DEGRADED => SloOutcome::Degraded,
            _ => SloOutcome::Rejected,
        }
    }
}

#[derive(Debug, Default)]
struct ShortWindow {
    entries: VecDeque<(SloOutcome, u64)>,
}

/// Evaluates [`SloTargets`] over long and short windows as requests
/// complete. `observe` is cheap (three relaxed atomics, one histogram
/// record, one short-window push under a small mutex) and is called for
/// *every* request, traced or not — SLO accounting never depends on the
/// tracing flag.
#[derive(Debug)]
pub struct SloEngine {
    targets: SloTargets,
    committed: AtomicU64,
    degraded: AtomicU64,
    rejected: AtomicU64,
    latency: Histogram,
    short: Mutex<ShortWindow>,
    breached: AtomicBool,
    breaches: AtomicU64,
}

impl SloEngine {
    /// An engine evaluating `targets`.
    pub fn new(targets: SloTargets) -> Self {
        SloEngine {
            targets,
            committed: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            latency: Histogram::new(),
            short: Mutex::new(ShortWindow::default()),
            breached: AtomicBool::new(false),
            breaches: AtomicU64::new(0),
        }
    }

    /// The declared targets.
    pub fn targets(&self) -> SloTargets {
        self.targets
    }

    /// Records one completed request with its end-to-end latency.
    pub fn observe(&self, outcome: SloOutcome, latency_ns: u64) {
        match outcome {
            SloOutcome::Committed => self.committed.fetch_add(1, Ordering::Relaxed),
            SloOutcome::Degraded => self.degraded.fetch_add(1, Ordering::Relaxed),
            SloOutcome::Rejected => self.rejected.fetch_add(1, Ordering::Relaxed),
        };
        self.latency.record(latency_ns);
        let mut short = self.short.lock().expect("slo window lock poisoned");
        if short.entries.len() == SHORT_WINDOW {
            short.entries.pop_front();
        }
        short.entries.push_back((outcome, latency_ns));
    }

    /// Evaluates the targets over both windows right now.
    pub fn report(&self) -> SloReport {
        let committed = self.committed.load(Ordering::Relaxed);
        let degraded = self.degraded.load(Ordering::Relaxed);
        let rejected = self.rejected.load(Ordering::Relaxed);
        let total = committed + degraded + rejected;
        let p99_ns = self.latency.percentile(0.99).unwrap_or(0);

        let (short_total, short_degraded, short_rejected, short_p99_ns) = {
            let short = self.short.lock().expect("slo window lock poisoned");
            let mut lat: Vec<u64> = short.entries.iter().map(|(_, ns)| *ns).collect();
            lat.sort_unstable();
            let p99 = if lat.is_empty() {
                0
            } else {
                // Nearest-rank p99 over the short window.
                let rank = ((lat.len() as f64) * 0.99).ceil() as usize;
                lat[rank.saturating_sub(1).min(lat.len() - 1)]
            };
            let deg = short
                .entries
                .iter()
                .filter(|(o, _)| *o == SloOutcome::Degraded)
                .count() as u64;
            let rej = short
                .entries
                .iter()
                .filter(|(o, _)| *o == SloOutcome::Rejected)
                .count() as u64;
            (short.entries.len() as u64, deg, rej, p99)
        };

        let rejection_rate = rate(rejected, total);
        let degraded_rate = rate(degraded, total);
        let short_rejection_rate = rate(short_rejected, short_total);
        let short_degraded_rate = rate(short_degraded, short_total);

        let rejection_burn = burn(rejection_rate, self.targets.max_rejection_rate);
        let degraded_burn = burn(degraded_rate, self.targets.max_degraded_rate);
        let latency_burn = burn(p99_ns as f64, self.targets.p99_establish_ns as f64);
        let short_rejection_burn = burn(short_rejection_rate, self.targets.max_rejection_rate);
        let short_degraded_burn = burn(short_degraded_rate, self.targets.max_degraded_rate);
        let short_latency_burn = burn(short_p99_ns as f64, self.targets.p99_establish_ns as f64);

        // A target is breached only when both windows burn over 1.0.
        let breached = total > 0
            && ((rejection_burn > 1.0 && short_rejection_burn > 1.0)
                || (degraded_burn > 1.0 && short_degraded_burn > 1.0)
                || (latency_burn > 1.0 && short_latency_burn > 1.0));

        SloReport {
            target_p99_ns: self.targets.p99_establish_ns,
            target_rejection_rate: self.targets.max_rejection_rate,
            target_degraded_rate: self.targets.max_degraded_rate,
            total,
            committed,
            degraded,
            rejected,
            p99_ns,
            rejection_rate,
            degraded_rate,
            short_total,
            short_p99_ns,
            short_rejection_rate,
            short_degraded_rate,
            rejection_burn,
            degraded_burn,
            latency_burn,
            short_rejection_burn,
            short_degraded_burn,
            short_latency_burn,
            breached,
            breaches: self.breaches.load(Ordering::Relaxed),
        }
    }

    /// Like [`SloEngine::report`], but also latches the breach state and
    /// returns whether this evaluation *entered* a breach (healthy →
    /// breached edge) — the trigger for an automatic flight dump.
    pub fn evaluate(&self) -> (SloReport, bool) {
        let mut report = self.report();
        let was = self.breached.swap(report.breached, Ordering::Relaxed);
        let entered = report.breached && !was;
        if entered {
            report.breaches = self.breaches.fetch_add(1, Ordering::Relaxed) + 1;
        }
        (report, entered)
    }
}

fn rate(part: u64, total: u64) -> f64 {
    if total == 0 {
        0.0
    } else {
        part as f64 / total as f64
    }
}

fn burn(observed: f64, target: f64) -> f64 {
    if target <= 0.0 {
        if observed > 0.0 {
            f64::INFINITY
        } else {
            0.0
        }
    } else {
        observed / target
    }
}

/// A point-in-time evaluation of the SLO targets: per-target observed
/// values and burn rates over both windows. Travels over the wire as
/// the `slo` response frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloReport {
    /// Declared p99 establish-latency target, nanoseconds.
    pub target_p99_ns: u64,
    /// Declared maximum rejection rate.
    pub target_rejection_rate: f64,
    /// Declared maximum degraded-commit rate.
    pub target_degraded_rate: f64,
    /// Requests observed since start (long window).
    pub total: u64,
    /// Long-window committed count.
    pub committed: u64,
    /// Long-window degraded count.
    pub degraded: u64,
    /// Long-window rejected count.
    pub rejected: u64,
    /// Long-window p99 establish latency, nanoseconds.
    pub p99_ns: u64,
    /// Long-window rejection rate.
    pub rejection_rate: f64,
    /// Long-window degraded rate.
    pub degraded_rate: f64,
    /// Requests in the short window (≤ [`SHORT_WINDOW`]).
    pub short_total: u64,
    /// Short-window p99 establish latency, nanoseconds.
    pub short_p99_ns: u64,
    /// Short-window rejection rate.
    pub short_rejection_rate: f64,
    /// Short-window degraded rate.
    pub short_degraded_rate: f64,
    /// Long-window rejection burn (`rate / target`).
    pub rejection_burn: f64,
    /// Long-window degraded burn.
    pub degraded_burn: f64,
    /// Long-window latency burn (`p99 / target`).
    pub latency_burn: f64,
    /// Short-window rejection burn.
    pub short_rejection_burn: f64,
    /// Short-window degraded burn.
    pub short_degraded_burn: f64,
    /// Short-window latency burn.
    pub short_latency_burn: f64,
    /// Whether any target currently burns over 1.0 in *both* windows.
    pub breached: bool,
    /// Healthy→breached transitions latched so far.
    pub breaches: u64,
}

impl SloReport {
    /// Renders the report as an operator-facing table (for `qosr slo`).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let status = if self.breached { "BREACHED" } else { "ok" };
        let _ = writeln!(
            out,
            "slo status: {status}  ({} requests, {} breach transitions)",
            self.total, self.breaches
        );
        let _ = writeln!(
            out,
            "  {:<12} {:>14} {:>14} {:>12} {:>12}",
            "target", "long", "short", "burn(long)", "burn(short)"
        );
        let _ = writeln!(
            out,
            "  {:<12} {:>14} {:>14} {:>12.3} {:>12.3}",
            format!("p99<{}ms", self.target_p99_ns / 1_000_000),
            format!("{:.3}ms", self.p99_ns as f64 / 1e6),
            format!("{:.3}ms", self.short_p99_ns as f64 / 1e6),
            self.latency_burn,
            self.short_latency_burn,
        );
        let _ = writeln!(
            out,
            "  {:<12} {:>14} {:>14} {:>12.3} {:>12.3}",
            format!("reject<{:.0}%", self.target_rejection_rate * 100.0),
            format!("{:.2}%", self.rejection_rate * 100.0),
            format!("{:.2}%", self.short_rejection_rate * 100.0),
            self.rejection_burn,
            self.short_rejection_burn,
        );
        let _ = writeln!(
            out,
            "  {:<12} {:>14} {:>14} {:>12.3} {:>12.3}",
            format!("degrade<{:.0}%", self.target_degraded_rate * 100.0),
            format!("{:.2}%", self.degraded_rate * 100.0),
            format!("{:.2}%", self.short_degraded_rate * 100.0),
            self.degraded_burn,
            self.short_degraded_burn,
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tight() -> SloTargets {
        SloTargets {
            p99_establish_ns: 1_000,
            max_rejection_rate: 0.10,
            max_degraded_rate: 0.10,
        }
    }

    #[test]
    fn clean_traffic_reports_clean() {
        let engine = SloEngine::new(tight());
        for _ in 0..100 {
            engine.observe(SloOutcome::Committed, 500);
        }
        let (report, entered) = engine.evaluate();
        assert!(!report.breached);
        assert!(!entered);
        assert_eq!(report.total, 100);
        assert_eq!(report.committed, 100);
        assert!(report.latency_burn <= 1.0);
        assert_eq!(report.rejection_burn, 0.0);
    }

    #[test]
    fn breach_requires_both_windows() {
        let engine = SloEngine::new(tight());
        // A rejected-heavy past...
        for _ in 0..100 {
            engine.observe(SloOutcome::Rejected, 500);
        }
        let (report, entered) = engine.evaluate();
        assert!(report.breached, "both windows over budget");
        assert!(entered, "first evaluation enters the breach");
        assert_eq!(report.breaches, 1);
        // ...then the service recovers: the short window goes clean while
        // the long window still burns over 1.0 — no longer a breach.
        for _ in 0..SHORT_WINDOW {
            engine.observe(SloOutcome::Committed, 500);
        }
        let (report, entered) = engine.evaluate();
        assert!(report.rejection_burn > 1.0, "long window still burning");
        assert!(report.short_rejection_burn == 0.0);
        assert!(!report.breached);
        assert!(!entered);
        assert_eq!(report.breaches, 1, "transition count is latched");
    }

    #[test]
    fn short_spike_over_healthy_history_is_not_a_breach() {
        let engine = SloEngine::new(tight());
        for _ in 0..10_000 {
            engine.observe(SloOutcome::Committed, 500);
        }
        // A full short window of rejections: short burn spikes, long stays low.
        for _ in 0..SHORT_WINDOW {
            engine.observe(SloOutcome::Rejected, 500);
        }
        let (report, entered) = engine.evaluate();
        assert!(report.short_rejection_burn > 1.0);
        assert!(report.rejection_burn <= 1.0);
        assert!(!report.breached);
        assert!(!entered);
    }

    #[test]
    fn latency_target_uses_p99_in_both_windows() {
        let engine = SloEngine::new(tight());
        for _ in 0..300 {
            engine.observe(SloOutcome::Committed, 5_000);
        }
        let (report, entered) = engine.evaluate();
        assert!(report.latency_burn > 1.0);
        assert!(report.short_latency_burn > 1.0);
        assert!(report.breached);
        assert!(entered);
    }

    #[test]
    fn report_roundtrips_through_serde() {
        let engine = SloEngine::new(SloTargets::default());
        engine.observe(SloOutcome::Committed, 100);
        engine.observe(SloOutcome::Degraded, 200);
        engine.observe(SloOutcome::Rejected, 300);
        let report = engine.report();
        let json = serde_json::to_string(&report).unwrap();
        let back: SloReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn render_mentions_status_and_targets() {
        let engine = SloEngine::new(SloTargets::default());
        engine.observe(SloOutcome::Committed, 1_000_000);
        let text = engine.report().render();
        assert!(text.contains("slo status: ok"));
        assert!(text.contains("p99<250ms"));
        assert!(text.contains("reject<50%"));
    }
}
