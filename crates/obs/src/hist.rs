//! Log-bucketed latency histograms and the committed-Ψ distribution.
//!
//! [`Histogram`] is a self-contained HDR-style histogram over `u64`
//! values (nanoseconds, microseconds — any non-negative integer scale):
//! a fixed array of atomic buckets whose widths grow geometrically, so
//! the full `u64` range is covered at a bounded relative error of
//! `1 / 2^SUB_BUCKET_BITS` (≈3%) with a lock-free, allocation-free
//! `record`. Shard-local histograms [`merge`](Histogram::merge) into one
//! another bucket-by-bucket, and because every reported quantile is a
//! pure function of the bucket counts (clamped to the tracked true
//! min/max), a merged histogram reports *exactly* the same percentiles
//! as a single histogram fed the same samples — the property the
//! `hist_properties` proptests pin down.
//!
//! [`PsiHistogram`] keeps the paper-facing fixed decile buckets over the
//! contention index Ψ and layers a milli-Ψ [`Histogram`] underneath for
//! p50/p90/p99. All Ψ bucket math lives here — [`psi_bucket_index`] and
//! [`psi_bucket_bounds`] are the single source of truth used by both
//! recording and rendering, so the bucket-boundary convention
//! (`p` lands in the first bucket with `p < edge`) cannot drift between
//! the counters and the replay report.

use std::sync::atomic::{AtomicU64, Ordering};

use serde::Serialize;

/// Sub-bucket resolution: each power-of-two octave is split into
/// `2^SUB_BUCKET_BITS` linear sub-buckets, bounding relative error at
/// `2^-SUB_BUCKET_BITS` (≈3.1%).
const SUB_BUCKET_BITS: u32 = 5;
/// Linear sub-buckets per octave.
const SUB_BUCKETS: usize = 1 << SUB_BUCKET_BITS;
/// Total bucket count covering the full `u64` range: one unit-width
/// octave (values `0..SUB_BUCKETS`) plus one octave per remaining
/// leading-bit position.
const BUCKETS: usize = (64 - SUB_BUCKET_BITS as usize + 1) * SUB_BUCKETS;

/// Maps a value to its bucket index. Values below `SUB_BUCKETS` map
/// exactly (width-1 buckets); above, the top `SUB_BUCKET_BITS + 1` bits
/// select the bucket, log-linear style.
pub fn bucket_index(value: u64) -> usize {
    if value < SUB_BUCKETS as u64 {
        value as usize
    } else {
        let msb = 63 - value.leading_zeros();
        let octave = (msb - SUB_BUCKET_BITS + 1) as usize;
        let sub = ((value >> (msb - SUB_BUCKET_BITS)) as usize) & (SUB_BUCKETS - 1);
        octave * SUB_BUCKETS + sub
    }
}

/// The half-open value range `[lo, hi)` covered by bucket `index`. The
/// last bucket's upper bound saturates to `u64::MAX` (its true bound is
/// `2^64`, which `u64` cannot hold).
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    assert!(index < BUCKETS, "bucket index {index} out of range");
    if index < SUB_BUCKETS {
        return (index as u64, index as u64 + 1);
    }
    let octave = index / SUB_BUCKETS;
    let sub = index % SUB_BUCKETS;
    let shift = (octave - 1) as u32;
    let lo = ((SUB_BUCKETS + sub) as u128) << shift;
    let hi = lo + (1u128 << shift);
    (lo as u64, u64::try_from(hi).unwrap_or(u64::MAX))
}

/// A lock-free, mergeable, log-bucketed histogram of `u64` samples.
///
/// ```
/// use qosr_obs::hist::Histogram;
/// let h = Histogram::new();
/// for v in [10, 20, 30, 40, 1_000_000] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.min(), Some(10));
/// assert_eq!(h.max(), Some(1_000_000));
/// assert_eq!(h.percentile(0.5), Some(30));
/// ```
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[AtomicU64; BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram. The bucket array is heap-allocated (~15 KiB)
    /// so owners stay cheap to move.
    pub fn new() -> Self {
        let buckets: Vec<AtomicU64> = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        let buckets: Box<[AtomicU64; BUCKETS]> = buckets
            .into_boxed_slice()
            .try_into()
            .expect("bucket vec has BUCKETS elements");
        Histogram {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample. Lock-free: four relaxed atomic RMWs.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Folds another histogram's samples into this one (shard merge).
    pub fn merge(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.min
            .fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples (wrapping on overflow, like the counters).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest sample, or `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count() > 0).then(|| self.min.load(Ordering::Relaxed))
    }

    /// Largest sample, or `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count() > 0).then(|| self.max.load(Ordering::Relaxed))
    }

    /// Mean sample, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        let n = self.count();
        (n > 0).then(|| self.sum() as f64 / n as f64)
    }

    /// The value at quantile `q` (`0.0..=1.0`), or `None` when empty.
    ///
    /// Reported as the upper edge of the bucket holding the q-th sample,
    /// clamped into the true `[min, max]` — a deterministic function of
    /// the bucket counts and the tracked extrema, so merged shards and a
    /// single histogram over the same samples agree exactly.
    pub fn percentile(&self, q: f64) -> Option<u64> {
        let n = self.count();
        if n == 0 {
            return None;
        }
        let target = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (idx, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= target {
                let (lo, hi) = bucket_bounds(idx);
                // Buckets are half-open except the saturated top one,
                // which is inclusive at `u64::MAX`.
                let rep = if hi == u64::MAX { hi } else { (hi - 1).max(lo) };
                return Some(rep.clamp(
                    self.min.load(Ordering::Relaxed),
                    self.max.load(Ordering::Relaxed),
                ));
            }
        }
        self.max() // unreachable unless counts race mid-walk
    }

    /// A point-in-time, serializable copy: count, extrema, and the
    /// standard p50/p90/p99 quantiles (zero when empty).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            min: self.min().unwrap_or(0),
            max: self.max().unwrap_or(0),
            p50: self.percentile(0.50).unwrap_or(0),
            p90: self.percentile(0.90).unwrap_or(0),
            p99: self.percentile(0.99).unwrap_or(0),
        }
    }
}

/// A serializable point-in-time copy of a [`Histogram`]. All fields are
/// integers so containing snapshots stay `Eq`-comparable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Default)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
}

/// Upper edges of the [`PsiHistogram`] decile buckets below the
/// overflow bucket. A committed bottleneck Ψ of `p` lands in the first
/// bucket whose edge satisfies `p < edge`; `p >= 1.0` (a plan committed
/// into contention, possible under the α-tradeoff policy) lands in the
/// overflow bucket.
pub const PSI_BUCKETS: [f64; 10] = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0];

/// The decile bucket a Ψ observation lands in: the first bucket whose
/// [`PSI_BUCKETS`] edge exceeds it, or the overflow bucket
/// (`PSI_BUCKETS.len()`) for `psi >= 1.0`. The single source of truth
/// for Ψ bucketing — recording and report rendering both call this.
pub fn psi_bucket_index(psi: f64) -> usize {
    PSI_BUCKETS
        .iter()
        .position(|&edge| psi < edge)
        .unwrap_or(PSI_BUCKETS.len())
}

/// The `[lo, hi)` Ψ range of decile bucket `index`; the overflow
/// bucket's upper bound is `None` (unbounded).
pub fn psi_bucket_bounds(index: usize) -> (f64, Option<f64>) {
    assert!(index <= PSI_BUCKETS.len(), "Ψ bucket {index} out of range");
    let lo = if index == 0 {
        0.0
    } else {
        PSI_BUCKETS[index - 1]
    };
    (lo, PSI_BUCKETS.get(index).copied())
}

/// Fixed-point scale for the milli-Ψ quantile histogram underneath
/// [`PsiHistogram`].
const PSI_MILLI: f64 = 1000.0;

/// A distribution of bottleneck contention indices Ψ: the paper-facing
/// fixed decile buckets, plus a milli-Ψ [`Histogram`] for percentiles.
#[derive(Debug, Default)]
pub struct PsiHistogram {
    buckets: [AtomicU64; PSI_BUCKETS.len() + 1],
    milli: Histogram,
}

impl PsiHistogram {
    /// Records one Ψ observation.
    pub fn record(&self, psi: f64) {
        self.buckets[psi_bucket_index(psi)].fetch_add(1, Ordering::Relaxed);
        self.milli.record((psi.max(0.0) * PSI_MILLI).round() as u64);
    }

    /// Per-bucket counts: one entry per edge in [`PSI_BUCKETS`], plus a
    /// final overflow bucket for `psi >= 1.0`.
    pub fn counts(&self) -> [u64; PSI_BUCKETS.len() + 1] {
        let mut out = [0u64; PSI_BUCKETS.len() + 1];
        for (slot, bucket) in out.iter_mut().zip(&self.buckets) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        out
    }

    /// Total observations across all buckets.
    pub fn total(&self) -> u64 {
        self.counts().iter().sum()
    }

    /// Sum of all recorded Ψ values (from the milli-Ψ fixed point).
    pub fn sum(&self) -> f64 {
        self.milli.sum() as f64 / PSI_MILLI
    }

    /// The Ψ value at quantile `q`, or `None` when empty. Resolution is
    /// the milli-Ψ fixed point (±0.001 plus ~3% bucket error).
    pub fn percentile(&self, q: f64) -> Option<f64> {
        self.milli.percentile(q).map(|m| m as f64 / PSI_MILLI)
    }

    /// The underlying milli-Ψ histogram (values are `round(Ψ × 1000)`).
    pub fn milli(&self) -> &Histogram {
        &self.milli
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_bucket_exactly() {
        for v in 0..SUB_BUCKETS as u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_bounds(v as usize), (v, v + 1));
        }
    }

    #[test]
    fn bounds_contain_their_values() {
        for v in [
            0,
            1,
            31,
            32,
            33,
            63,
            64,
            65,
            1000,
            123_456,
            u64::MAX / 2,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let idx = bucket_index(v);
            let (lo, hi) = bucket_bounds(idx);
            assert!(lo <= v, "bucket {idx} lower {lo} > value {v}");
            assert!(
                v < hi || hi == u64::MAX,
                "value {v} >= bucket {idx} upper {hi}"
            );
        }
    }

    #[test]
    fn last_bucket_upper_saturates() {
        let idx = bucket_index(u64::MAX);
        assert_eq!(idx, BUCKETS - 1);
        assert_eq!(bucket_bounds(idx).1, u64::MAX);
    }

    #[test]
    fn percentiles_track_known_distribution() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(100));
        // Width-1 buckets up to 31, then ≤3% bucket error.
        let p50 = h.percentile(0.5).unwrap();
        assert!((48..=52).contains(&p50), "p50 {p50}");
        let p99 = h.percentile(0.99).unwrap();
        assert!((97..=100).contains(&p99), "p99 {p99}");
        assert_eq!(h.percentile(1.0), Some(100));
        assert_eq!(h.percentile(0.0), Some(1));
    }

    #[test]
    fn merged_shards_match_single_histogram() {
        let single = Histogram::new();
        let a = Histogram::new();
        let b = Histogram::new();
        for (i, v) in [3u64, 17, 902, 44_000, 17, 5, 1_000_000, 63, 64]
            .iter()
            .enumerate()
        {
            single.record(*v);
            if i % 2 == 0 { &a } else { &b }.record(*v);
        }
        a.merge(&b);
        assert_eq!(a.snapshot(), single.snapshot());
    }

    #[test]
    fn empty_histogram_reports_none() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.percentile(0.5), None);
        assert_eq!(h.snapshot(), HistogramSnapshot::default());
    }

    #[test]
    fn psi_buckets_by_edge() {
        let h = PsiHistogram::default();
        h.record(0.05); // bucket 0: < 0.1
        h.record(0.1); // bucket 1: [0.1, 0.2)
        h.record(0.95); // bucket 9: [0.9, 1.0)
        h.record(1.0); // overflow
        h.record(7.5); // overflow
        let counts = h.counts();
        assert_eq!(counts[0], 1);
        assert_eq!(counts[1], 1);
        assert_eq!(counts[9], 1);
        assert_eq!(counts[10], 2);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn psi_bucket_bounds_are_contiguous_deciles() {
        assert_eq!(psi_bucket_bounds(0), (0.0, Some(0.1)));
        assert_eq!(psi_bucket_bounds(4), (0.4, Some(0.5)));
        assert_eq!(psi_bucket_bounds(10), (1.0, None));
        for i in 0..=PSI_BUCKETS.len() {
            let (lo, hi) = psi_bucket_bounds(i);
            assert_eq!(psi_bucket_index(lo), i);
            if let Some(hi) = hi {
                assert_eq!(psi_bucket_index(hi - 1e-9), i);
            }
        }
    }

    #[test]
    fn psi_percentiles_come_from_the_milli_histogram() {
        let h = PsiHistogram::default();
        for i in 0..100 {
            h.record(i as f64 / 100.0);
        }
        let p50 = h.percentile(0.5).unwrap();
        assert!((0.45..=0.55).contains(&p50), "p50 {p50}");
        assert!((h.sum() - 49.5).abs() < 1e-9);
    }
}
