//! # qosr-obs — observability for the reservation runtime
//!
//! The paper's whole evaluation (§5) is about *explaining* reservation
//! outcomes — success rate, end-to-end QoS level, the bottleneck
//! contention index ψ — yet a bare run only surfaces final aggregates.
//! This crate adds the missing middle layer: a structured, session-scoped
//! **event log** of everything the planner and the brokers decide, plus
//! process-wide **counters and histograms**, behind an API that costs
//! nothing when disabled.
//!
//! The pieces:
//!
//! * [`TraceEvent`] / [`EventKind`] — one flat, serializable record per
//!   lifecycle step: plan started/completed/rejected, every candidate
//!   `(Q^in, Q^out)` pair evaluated with its ψ, the selected per-hop ψ,
//!   reservations committed/rejected/released, α-tradeoff downgrades,
//!   QoS upgrades, and advance-booking conflicts.
//! * [`TraceSink`] — where events go. [`NullSink`] (the default
//!   everywhere) reports `enabled() == false` so instrumented code skips
//!   event construction entirely; [`JsonlSink`] streams events as JSON
//!   Lines to a file; [`MemorySink`] buffers them for tests.
//! * [`Counters`] / [`PsiHistogram`] — always-on monotonic counters
//!   (plans, reservations, skeleton-cache hits vs misses, downgrades)
//!   and a fixed-bucket distribution of committed bottleneck ψ values.
//! * [`hist`] — a self-contained HDR-style log-bucketed [`Histogram`]:
//!   fixed atomic buckets, lock-free record, shard merging, and
//!   p50/p90/p99 that agree exactly between merged shards and a single
//!   instance. All Ψ bucket math lives here too.
//! * [`span`] — RAII [`Phase`] timing guards over the admission
//!   pipeline (collect/plan/commit/replan/rollback), recording into
//!   per-phase histograms behind one [`PhaseTimers`] enable flag;
//!   zero-cost (one relaxed load) when disabled.
//! * [`metrics`] — the live [`MetricsRegistry`]: attached counters and
//!   timers plus ring-buffered utilization/queue gauges, rendered in
//!   Prometheus text format and optionally served over a minimal
//!   blocking HTTP responder ([`serve`]) for `--metrics-addr`.
//! * [`replay`] — load a JSONL trace back and reduce it to a
//!   [`TraceSummary`] whose success rate and mean QoS level reproduce
//!   the run's `RunMetrics` exactly, or to per-session timelines — now
//!   including the same phase-timing and utilization blocks the live
//!   registry reports. The `qosr trace` / `qosr report` CLI subcommands
//!   are thin wrappers over this module.
//! * [`trace`] — request-scoped tracing: a [`TraceId`] minted at
//!   ingress rides each request through queue, collect, plan, replan
//!   and commit, producing a causal [`SpanRecord`] tree
//!   ([`RequestTrace`]) that attributes the request's end-to-end
//!   latency span by span, recorded by a [`Tracer`] that is zero-cost
//!   (one relaxed load) when disabled.
//! * [`flight`] — the [`FlightRecorder`]: a fixed-size ring of recent
//!   span trees, always on, dumped oldest-first as canonical JSONL on
//!   demand (`qosr flight`) or automatically on SLO breaches.
//! * [`slo`] — the [`SloEngine`]: declarative [`SloTargets`] (p99
//!   establish latency, rejection rate, degraded rate) evaluated with
//!   multi-window burn rates into wire-serializable [`SloReport`]s.
//!
//! The crate deliberately depends on nothing but the serialization
//! stand-ins: resource ids travel as raw `u64`s (see
//! [`TraceEvent::resource`]) and are given names by
//! [`EventKind::ResourceName`] preamble events, so any layer — core,
//! broker, sim — can emit without new dependency edges.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod counters;
mod event;
pub mod flight;
pub mod hist;
pub mod metrics;
pub mod replay;
mod sink;
pub mod slo;
pub mod span;
pub mod trace;

pub use counters::{Counters, CountersSnapshot};
pub use event::{EventKind, TraceEvent};
pub use flight::FlightRecorder;
pub use hist::{Histogram, HistogramSnapshot, PsiHistogram, PSI_BUCKETS};
pub use metrics::{serve, GaugeSample, MetricsRegistry, MetricsServer};
pub use replay::{read_jsonl, session_timelines, TraceSummary, UtilStat};
pub use sink::{JsonlSink, MemorySink, NullSink, TraceSink};
pub use slo::{SloEngine, SloOutcome, SloReport, SloTargets};
pub use span::{Phase, PhaseTimers, Span};
pub use trace::{RequestTrace, SpanKind, SpanRecord, TraceId, Tracer};
