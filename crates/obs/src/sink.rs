//! Trace sinks: where [`TraceEvent`]s go.
//!
//! The contract that keeps tracing free when unused: instrumented code
//! must check [`TraceSink::enabled`] *before* constructing events, and
//! [`NullSink`] answers `false`. With the default sink, the entire
//! instrumentation path is a branch on a constant the optimizer removes.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

use crate::event::TraceEvent;

/// A destination for trace events.
///
/// Implementations must be cheap to call and thread-safe: the
/// coordinator emits from whatever thread runs the protocol, and the
/// simulator shares one sink across the whole run.
///
/// Instrumented code follows this pattern so that a disabled sink costs
/// one branch and zero allocations:
///
/// ```
/// use qosr_obs::{EventKind, MemorySink, NullSink, TraceEvent, TraceSink};
///
/// fn hot_path(sink: &dyn TraceSink) {
///     // ... real work ...
///     if sink.enabled() {
///         // Event construction (and any String formatting) happens
///         // only behind the check.
///         sink.emit(&TraceEvent::new(0.0, EventKind::PlanStarted).with_service("clip"));
///     }
/// }
///
/// let null = NullSink;
/// hot_path(&null); // no-op
///
/// let mem = MemorySink::new();
/// hot_path(&mem);
/// assert_eq!(mem.events().len(), 1);
/// ```
pub trait TraceSink: Send + Sync {
    /// Whether this sink wants events at all. Callers must gate event
    /// construction on this; the default is `true`.
    fn enabled(&self) -> bool {
        true
    }

    /// Records one event. Must not panic on I/O trouble — sinks that
    /// write report failures through [`TraceSink::flush`] instead.
    fn emit(&self, event: &TraceEvent);

    /// Forces buffered events out, returning the first I/O error seen.
    /// The default is a no-op for sinks with nothing to flush.
    fn flush(&self) -> io::Result<()> {
        Ok(())
    }
}

/// The do-nothing sink: [`enabled`](TraceSink::enabled) is `false`, so
/// correctly gated call sites never even build an event.
///
/// ```
/// use qosr_obs::{NullSink, TraceSink};
/// assert!(!NullSink.enabled());
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    fn emit(&self, _event: &TraceEvent) {}
}

/// A sink that streams each event as one JSON object per line (JSON
/// Lines) to any writer — typically a file created with
/// [`JsonlSink::create`]. The stream is append-only and flushable, so a
/// trace survives even if the process stops mid-run.
///
/// ```
/// use qosr_obs::{EventKind, JsonlSink, TraceEvent, TraceSink};
///
/// let mut buf = Vec::new();
/// {
///     let sink = JsonlSink::new(&mut buf);
///     sink.emit(&TraceEvent::new(1.0, EventKind::PlanStarted).with_service("clip"));
///     sink.emit(&TraceEvent::new(2.0, EventKind::PlanRejected).with_service("clip"));
///     sink.flush().unwrap();
/// }
/// let text = String::from_utf8(buf).unwrap();
/// assert_eq!(text.lines().count(), 2);
/// assert!(text.lines().next().unwrap().contains("PlanStarted"));
/// ```
pub struct JsonlSink<W: Write + Send = BufWriter<File>> {
    writer: Mutex<JsonlState<W>>,
}

struct JsonlState<W> {
    writer: W,
    /// First write/serialize error, surfaced by `flush()`.
    error: Option<io::Error>,
}

impl JsonlSink<BufWriter<File>> {
    /// Creates (truncating) `path` and returns a sink writing to it
    /// through a buffer. Call [`TraceSink::flush`] before reading the
    /// file back.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        let file = File::create(path)?;
        Ok(JsonlSink::new(BufWriter::new(file)))
    }
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wraps an arbitrary writer. Useful for tests (`Vec<u8>`) or for
    /// writing to stderr/sockets.
    pub fn new(writer: W) -> Self {
        JsonlSink {
            writer: Mutex::new(JsonlState {
                writer,
                error: None,
            }),
        }
    }

    /// Consumes the sink and returns the inner writer, flushed.
    pub fn into_inner(self) -> io::Result<W> {
        let state = self
            .writer
            .into_inner()
            .unwrap_or_else(|poison| poison.into_inner());
        if let Some(err) = state.error {
            return Err(err);
        }
        let mut writer = state.writer;
        writer.flush()?;
        Ok(writer)
    }
}

impl<W: Write + Send> TraceSink for JsonlSink<W> {
    fn emit(&self, event: &TraceEvent) {
        let mut state = self.writer.lock().unwrap_or_else(|p| p.into_inner());
        if state.error.is_some() {
            return;
        }
        let line = match serde_json::to_string(event) {
            Ok(line) => line,
            Err(err) => {
                state.error = Some(io::Error::new(io::ErrorKind::InvalidData, err.to_string()));
                return;
            }
        };
        if let Err(err) = writeln!(state.writer, "{line}") {
            state.error = Some(err);
        }
    }

    fn flush(&self) -> io::Result<()> {
        let mut state = self.writer.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(err) = state.error.take() {
            return Err(err);
        }
        state.writer.flush()
    }
}

/// A sink that buffers events in memory, for tests and in-process
/// analysis.
///
/// ```
/// use qosr_obs::{EventKind, MemorySink, TraceEvent, TraceSink};
/// let sink = MemorySink::new();
/// sink.emit(&TraceEvent::new(0.5, EventKind::SessionReleased).with_session(3));
/// let events = sink.take();
/// assert_eq!(events.len(), 1);
/// assert_eq!(events[0].session, Some(3));
/// assert!(sink.events().is_empty());
/// ```
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<TraceEvent>>,
}

impl MemorySink {
    /// An empty buffer.
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// A copy of everything emitted so far, in order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }

    /// Drains and returns the buffer.
    pub fn take(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut *self.events.lock().unwrap_or_else(|p| p.into_inner()))
    }
}

impl TraceSink for MemorySink {
    fn emit(&self, event: &TraceEvent) {
        self.events
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    #[test]
    fn null_sink_is_disabled() {
        assert!(!NullSink.enabled());
        NullSink.emit(&TraceEvent::new(0.0, EventKind::PlanStarted));
        assert!(NullSink.flush().is_ok());
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let sink = JsonlSink::new(Vec::new());
        sink.emit(&TraceEvent::new(1.0, EventKind::PlanStarted).with_service("a"));
        sink.emit(
            &TraceEvent::new(2.0, EventKind::ReservationCommitted)
                .with_session(1)
                .with_level(2),
        );
        let buf = sink.into_inner().unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let first: TraceEvent = serde_json::from_str(lines[0]).unwrap();
        assert_eq!(first.kind, EventKind::PlanStarted);
        let second: TraceEvent = serde_json::from_str(lines[1]).unwrap();
        assert_eq!(second.level, Some(2));
    }

    #[test]
    fn memory_sink_preserves_order() {
        let sink = MemorySink::new();
        for i in 0..4 {
            sink.emit(&TraceEvent::new(i as f64, EventKind::HopSelected).with_pair(i, 0, 0));
        }
        let events = sink.events();
        assert_eq!(events.len(), 4);
        assert!(events.windows(2).all(|w| w[0].time < w[1].time));
    }
}
