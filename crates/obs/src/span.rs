//! Phase-timing spans for the admission pipeline.
//!
//! An admission runs through distinct phases — availability collection,
//! planning, two-phase commit dispatch, conflict replanning, rollback —
//! and the question the ROADMAP's heavy-traffic work keeps asking is
//! *where the time goes*. [`PhaseTimers`] holds one log-bucketed
//! [`Histogram`] of wall-clock nanoseconds per [`Phase`];
//! [`PhaseTimers::span`] hands out an RAII [`Span`] guard that measures
//! from construction to drop and records into the phase's histogram.
//!
//! The whole layer is **zero-cost when disabled** (the default): a span
//! taken while `enabled()` is false performs exactly one relaxed atomic
//! load, never reads the clock, and its drop is a no-op — verified
//! empirically by `benches/obs_overhead.rs`. When a tracing sink is
//! also live, [`PhaseTimers::span_traced`] additionally emits one
//! [`EventKind::PhaseTiming`] event per measured span, which is how the
//! offline [`TraceSummary`](crate::TraceSummary) reconstructs the same
//! per-phase distributions the live registry reports.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use crate::event::{EventKind, TraceEvent};
use crate::hist::Histogram;
use crate::sink::TraceSink;

/// One timed phase of the establishment/admission pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Phase 1: collecting availability observations from the proxies.
    Collect,
    /// Phase 2: computing a reservation plan over the QRG.
    Plan,
    /// Phase 3: two-phase reserve/commit dispatch to the brokers.
    Commit,
    /// Replanning a batched request against the round's working view
    /// after a same-round commit conflict (or a coordinator replan).
    Replan,
    /// Rolling back partially reserved hops after a dispatch failure.
    Rollback,
}

impl Phase {
    /// Every phase, in histogram-slot order.
    pub const ALL: [Phase; 5] = [
        Phase::Collect,
        Phase::Plan,
        Phase::Commit,
        Phase::Replan,
        Phase::Rollback,
    ];

    /// Stable lowercase name used as the metric/event label.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Collect => "collect",
            Phase::Plan => "plan",
            Phase::Commit => "commit",
            Phase::Replan => "replan",
            Phase::Rollback => "rollback",
        }
    }

    /// Slot in [`Phase::ALL`] / the [`PhaseTimers`] histogram array.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Parses a [`Phase::name`] back (for replay aggregation).
    pub fn from_name(name: &str) -> Option<Phase> {
        Phase::ALL.into_iter().find(|p| p.name() == name)
    }
}

/// Per-phase wall-clock histograms behind a single enable flag.
///
/// Disabled by default; attaching a
/// [`MetricsRegistry`](crate::MetricsRegistry) (or calling
/// [`PhaseTimers::set_enabled`]) turns measurement on.
#[derive(Debug, Default)]
pub struct PhaseTimers {
    enabled: AtomicBool,
    phases: [Histogram; Phase::ALL.len()],
}

impl PhaseTimers {
    /// Fresh timers, disabled.
    pub fn new() -> Self {
        PhaseTimers::default()
    }

    /// Turns measurement on or off. Spans already in flight keep the
    /// decision they took at construction.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether spans currently measure (one relaxed load — the entire
    /// disabled-mode cost).
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// The nanosecond histogram for one phase.
    pub fn histogram(&self, phase: Phase) -> &Histogram {
        &self.phases[phase.index()]
    }

    /// Records a measured duration directly (for pre-measured values,
    /// e.g. replayed [`EventKind::PhaseTiming`] events).
    pub fn record_ns(&self, phase: Phase, ns: u64) {
        self.phases[phase.index()].record(ns);
    }

    /// An RAII guard that measures from now until drop and records into
    /// `phase`'s histogram. Inert (no clock read) when disabled.
    pub fn span(&self, phase: Phase) -> Span<'_> {
        Span {
            timers: self,
            phase,
            start: self.enabled().then(Instant::now),
            sink: None,
        }
    }

    /// Like [`PhaseTimers::span`], but when both the timers and `sink`
    /// are enabled the guard also emits one [`EventKind::PhaseTiming`]
    /// event (stamped `time`, phase name, measured nanoseconds) on drop
    /// — keeping live histograms and the trace in exact count lockstep.
    pub fn span_traced<'a>(&'a self, phase: Phase, sink: &'a dyn TraceSink, time: f64) -> Span<'a> {
        let measuring = self.enabled();
        Span {
            timers: self,
            phase,
            start: measuring.then(Instant::now),
            sink: (measuring && sink.enabled()).then_some((sink, time)),
        }
    }
}

/// The RAII measurement guard handed out by [`PhaseTimers::span`].
pub struct Span<'a> {
    timers: &'a PhaseTimers,
    phase: Phase,
    start: Option<Instant>,
    sink: Option<(&'a dyn TraceSink, f64)>,
}

impl Span<'_> {
    /// Ends the span now, returning the measured nanoseconds (`None`
    /// when the timers were disabled at construction). Use this instead
    /// of drop when the caller needs the measurement — e.g. to buffer a
    /// [`EventKind::PhaseTiming`] event for deterministic later emission.
    pub fn end(mut self) -> Option<u64> {
        self.finish()
    }

    fn finish(&mut self) -> Option<u64> {
        let start = self.start.take()?;
        let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.timers.record_ns(self.phase, ns);
        if let Some((sink, time)) = self.sink.take() {
            sink.emit(
                &TraceEvent::new(time, EventKind::PhaseTiming)
                    .with_name(self.phase.name())
                    .with_duration_ns(ns),
            );
        }
        Some(ns)
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let _ = self.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::MemorySink;

    #[test]
    fn disabled_spans_record_nothing() {
        let timers = PhaseTimers::new();
        assert!(!timers.enabled());
        let span = timers.span(Phase::Plan);
        assert_eq!(span.end(), None);
        drop(timers.span(Phase::Commit));
        for phase in Phase::ALL {
            assert_eq!(timers.histogram(phase).count(), 0);
        }
    }

    #[test]
    fn enabled_spans_record_into_their_phase() {
        let timers = PhaseTimers::new();
        timers.set_enabled(true);
        let ns = timers.span(Phase::Collect).end().expect("measured");
        drop(timers.span(Phase::Collect));
        assert_eq!(timers.histogram(Phase::Collect).count(), 2);
        assert_eq!(timers.histogram(Phase::Plan).count(), 0);
        assert!(timers.histogram(Phase::Collect).max().unwrap() >= ns.min(1));
    }

    #[test]
    fn traced_spans_emit_phase_timing_events() {
        let timers = PhaseTimers::new();
        timers.set_enabled(true);
        let sink = MemorySink::default();
        drop(timers.span_traced(Phase::Commit, &sink, 4.5));
        let events = sink.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, EventKind::PhaseTiming);
        assert_eq!(events[0].time, 4.5);
        assert_eq!(events[0].name.as_deref(), Some("commit"));
        assert!(events[0].duration_ns.is_some());
    }

    #[test]
    fn traced_spans_stay_silent_when_timers_disabled() {
        let timers = PhaseTimers::new();
        let sink = MemorySink::default();
        drop(timers.span_traced(Phase::Commit, &sink, 1.0));
        assert!(sink.events().is_empty());
        assert_eq!(timers.histogram(Phase::Commit).count(), 0);
    }

    #[test]
    fn phase_names_round_trip() {
        for phase in Phase::ALL {
            assert_eq!(Phase::from_name(phase.name()), Some(phase));
            assert_eq!(Phase::ALL[phase.index()], phase);
        }
        assert_eq!(Phase::from_name("nope"), None);
    }
}
