//! Flight recorder: a fixed-size ring of recent request span trees.
//!
//! Modeled on an aircraft flight recorder — always on, bounded, and
//! most useful right after something went wrong. Every completed
//! [`RequestTrace`] is pushed into the ring; when
//! an operator asks (`qosr flight`, the `flight` wire frame) or the
//! server detects an SLO breach, the ring is dumped oldest-first as
//! canonical JSONL and analysis starts from the actual recent traffic
//! rather than from a reproduction attempt.
//!
//! Writers never block each other on a shared structure: the write
//! cursor is a single atomic fetch-add and each slot is an independent
//! `Mutex<Option<Arc<..>>>` touched only for an `Arc` pointer swap (the
//! crate forbids `unsafe`, so the per-slot lock stands in for a raw
//! atomic pointer — it is uncontended unless two writers lap each other
//! on the same slot). Dumps walk the slots without stopping writers; a
//! dump taken during concurrent recording sees each slot's latest
//! consistent value and orders whatever it saw by sequence number.

use std::io::{self, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::trace::RequestTrace;

/// One ring slot: the trace plus the write sequence that placed it,
/// used to order dumps oldest-first.
type Slot = Mutex<Option<(u64, Arc<RequestTrace>)>>;

/// A bounded ring of the most recent request span trees.
#[derive(Debug)]
pub struct FlightRecorder {
    slots: Box<[Slot]>,
    cursor: AtomicU64,
}

impl FlightRecorder {
    /// A ring retaining the last `capacity` traces (`capacity >= 1`).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "flight recorder needs at least one slot");
        let slots = (0..capacity)
            .map(|_| Mutex::new(None))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        FlightRecorder {
            slots,
            cursor: AtomicU64::new(0),
        }
    }

    /// Maximum traces retained.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total traces ever recorded (monotonic; not capped at capacity).
    pub fn recorded(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed)
    }

    /// Traces currently retained.
    pub fn len(&self) -> usize {
        (self.recorded() as usize).min(self.capacity())
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.recorded() == 0
    }

    /// Pushes a trace, overwriting the oldest once the ring is full.
    pub fn record(&self, trace: Arc<RequestTrace>) {
        let seq = self.cursor.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(seq % self.slots.len() as u64) as usize];
        *slot.lock().expect("flight slot lock poisoned") = Some((seq, trace));
    }

    /// Snapshots the retained traces, oldest first. Safe to call while
    /// writers are recording.
    pub fn dump(&self) -> Vec<Arc<RequestTrace>> {
        let mut entries: Vec<(u64, Arc<RequestTrace>)> = self
            .slots
            .iter()
            .filter_map(|slot| slot.lock().expect("flight slot lock poisoned").clone())
            .collect();
        entries.sort_by_key(|(seq, _)| *seq);
        entries.into_iter().map(|(_, trace)| trace).collect()
    }

    /// Writes the retained traces as canonical JSONL (one trace per
    /// line, oldest first) and returns how many lines were written.
    pub fn dump_jsonl(&self, out: &mut dyn Write) -> io::Result<usize> {
        let traces = self.dump();
        for trace in &traces {
            out.write_all(trace.to_jsonl().as_bytes())?;
            out.write_all(b"\n")?;
        }
        Ok(traces.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{SpanKind, SpanRecord, OUTCOME_COMMITTED};

    fn trace(id: u64) -> Arc<RequestTrace> {
        Arc::new(RequestTrace {
            trace: id,
            service: None,
            outcome: OUTCOME_COMMITTED.into(),
            session: Some(id),
            rank: Some(2),
            psi: None,
            conflicts: 0,
            retries: 0,
            total_ns: 10 * id,
            spans: vec![SpanRecord::new(SpanKind::Plan, 0, 10 * id)],
        })
    }

    #[test]
    fn retains_the_most_recent_capacity_traces_oldest_first() {
        let ring = FlightRecorder::new(4);
        assert!(ring.is_empty());
        for id in 0..10 {
            ring.record(trace(id));
        }
        assert_eq!(ring.recorded(), 10);
        assert_eq!(ring.len(), 4);
        let ids: Vec<u64> = ring.dump().iter().map(|t| t.trace).collect();
        assert_eq!(ids, [6, 7, 8, 9]);
    }

    #[test]
    fn partial_fill_dumps_in_order() {
        let ring = FlightRecorder::new(8);
        for id in 0..3 {
            ring.record(trace(id));
        }
        let ids: Vec<u64> = ring.dump().iter().map(|t| t.trace).collect();
        assert_eq!(ids, [0, 1, 2]);
    }

    #[test]
    fn dump_jsonl_is_one_canonical_line_per_trace() {
        let ring = FlightRecorder::new(2);
        ring.record(trace(1));
        ring.record(trace(2));
        let mut buf = Vec::new();
        assert_eq!(ring.dump_jsonl(&mut buf).unwrap(), 2);
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for (line, id) in lines.iter().zip([1u64, 2]) {
            let decoded = RequestTrace::from_jsonl(line).unwrap();
            assert_eq!(decoded.trace, id);
            assert_eq!(decoded.to_jsonl(), *line);
        }
    }

    #[test]
    fn concurrent_recording_and_dumping_stays_consistent() {
        let ring = Arc::new(FlightRecorder::new(16));
        std::thread::scope(|scope| {
            for worker in 0..4u64 {
                let ring = Arc::clone(&ring);
                scope.spawn(move || {
                    for i in 0..200 {
                        ring.record(trace(worker * 1000 + i));
                    }
                });
            }
            let ring = Arc::clone(&ring);
            scope.spawn(move || {
                for _ in 0..50 {
                    let dump = ring.dump();
                    assert!(dump.len() <= 16);
                    // Sequence order implies strictly increasing ids per worker.
                    for pair in dump.windows(2) {
                        let (a, b) = (pair[0].trace, pair[1].trace);
                        if a / 1000 == b / 1000 {
                            assert!(a < b, "same-worker traces out of order: {a} {b}");
                        }
                    }
                }
            });
        });
        assert_eq!(ring.recorded(), 800);
        assert_eq!(ring.len(), 16);
    }
}
