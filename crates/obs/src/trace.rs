//! Request-scoped tracing: one causal span tree per admission request.
//!
//! The global telemetry ([`Counters`](crate::Counters), phase
//! histograms) answers *that* p99 regressed; this module answers *which
//! requests paid it and where*. A [`TraceId`] is minted at ingress (a
//! wire frame's `trace` field, the CLI, the scenario engine, the load
//! generator) and rides the request through every admission layer; the
//! layers measure their work into [`SpanRecord`]s (queue-wait,
//! collect-share, plan, replan, commit — with Ψ, planner, conflict and
//! retry annotations) and the completed [`RequestTrace`] is handed to a
//! [`Tracer`].
//!
//! The tracer is **zero-cost when disabled**: one relaxed atomic load
//! per request, no clock reads, no allocation. When enabled it
//! aggregates per-span-kind latency histograms, pushes the span tree
//! into its [`FlightRecorder`] ring, and — when a
//! [`TraceSink`] is live — emits one flat [`EventKind::RequestSpan`]
//! event per span plus a closing [`EventKind::RequestOutcome`], in the
//! same arrival-order lockstep as the rest of the trace stream, so
//! JSONL replay ([`TraceSummary`](crate::TraceSummary)) reproduces the
//! live per-request attribution exactly.
//!
//! Span trees serialize to a *canonical* compact JSON line
//! ([`RequestTrace::to_jsonl`]): absent fields are omitted (never
//! `null`) and field order is fixed, so re-encoding a decoded line is
//! bit-for-bit identical — the property `tests/trace_properties.rs`
//! pins.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use serde::{find_field, DeError, Deserialize, Serialize, Value};

use crate::event::{EventKind, TraceEvent};
use crate::flight::FlightRecorder;
use crate::hist::Histogram;
use crate::sink::TraceSink;

/// The identity of one traced admission request, minted at ingress and
/// propagated unchanged through every layer. Plain `u64` on the wire
/// (the `trace` field of an `establish` frame).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u64);

impl TraceId {
    /// The raw id.
    pub fn value(self) -> u64 {
        self.0
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// What one span of a request's tree measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpanKind {
    /// Everything between ingress and the first measured phase: socket
    /// read, gather-window wait, round scheduling, bookkeeping. Computed
    /// as the residual `total - measured`, so per-request attribution
    /// always sums exactly to the observed total.
    Queue,
    /// The request's share of the round's phase-1 availability snapshot
    /// (one collect per batched round, attributed to every request in
    /// it).
    Collect,
    /// Phase-2 planning over the QRG.
    Plan,
    /// A replan after a same-round commit conflict (one span per
    /// attempt, annotated with the contended resource).
    Replan,
    /// Phase-3 two-phase reserve/commit dispatch.
    Commit,
}

impl SpanKind {
    /// Every kind, in histogram-slot order.
    pub const ALL: [SpanKind; 5] = [
        SpanKind::Queue,
        SpanKind::Collect,
        SpanKind::Plan,
        SpanKind::Replan,
        SpanKind::Commit,
    ];

    /// Stable lowercase label used on events and in reports.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Queue => "queue",
            SpanKind::Collect => "collect",
            SpanKind::Plan => "plan",
            SpanKind::Replan => "replan",
            SpanKind::Commit => "commit",
        }
    }

    /// Slot in [`SpanKind::ALL`] / the [`Tracer`] histogram array.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Parses a [`SpanKind::name`] back (for replay aggregation).
    pub fn from_name(name: &str) -> Option<SpanKind> {
        SpanKind::ALL.into_iter().find(|k| k.name() == name)
    }
}

/// One node of a request's causal span tree: a measured slice of the
/// admission pipeline, with the annotations that explain it.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Which pipeline slice this span measures.
    pub kind: SpanKind,
    /// Start offset in nanoseconds from the request's ingress.
    pub start_ns: u64,
    /// Measured wall-clock duration in nanoseconds.
    pub duration_ns: u64,
    /// The contention index Ψ the slice produced (plan/replan spans).
    pub psi: Option<f64>,
    /// The planning algorithm used (plan/replan spans).
    pub planner: Option<String>,
    /// The contended resource id (replan spans after a commit conflict).
    pub resource: Option<u64>,
    /// Attempt ordinal (replan/retry spans; first replan is 1).
    pub attempt: Option<u32>,
    /// Free-form context.
    pub detail: Option<String>,
    /// Child spans nested inside this one.
    pub children: Vec<SpanRecord>,
}

impl SpanRecord {
    /// A bare span of `kind` covering `[start_ns, start_ns + duration_ns)`.
    pub fn new(kind: SpanKind, start_ns: u64, duration_ns: u64) -> Self {
        SpanRecord {
            kind,
            start_ns,
            duration_ns,
            psi: None,
            planner: None,
            resource: None,
            attempt: None,
            detail: None,
            children: Vec::new(),
        }
    }

    /// Sets the contention index Ψ.
    pub fn with_psi(mut self, psi: f64) -> Self {
        self.psi = Some(psi);
        self
    }

    /// Sets the planner label.
    pub fn with_planner(mut self, planner: impl Into<String>) -> Self {
        self.planner = Some(planner.into());
        self
    }

    /// Sets the contended resource id.
    pub fn with_resource(mut self, resource: u64) -> Self {
        self.resource = Some(resource);
        self
    }

    /// Sets the attempt ordinal.
    pub fn with_attempt(mut self, attempt: u32) -> Self {
        self.attempt = Some(attempt);
        self
    }

    /// Sets the free-form detail text.
    pub fn with_detail(mut self, detail: impl Into<String>) -> Self {
        self.detail = Some(detail.into());
        self
    }

    /// Appends a child span.
    pub fn with_child(mut self, child: SpanRecord) -> Self {
        self.children.push(child);
        self
    }

    /// This span's duration plus every descendant's.
    pub fn subtree_ns(&self) -> u64 {
        self.duration_ns
            + self
                .children
                .iter()
                .map(SpanRecord::subtree_ns)
                .sum::<u64>()
    }
}

impl Serialize for SpanRecord {
    fn to_value(&self) -> Value {
        let mut fields: Vec<(String, Value)> = Vec::with_capacity(4);
        fields.push(("kind".into(), self.kind.to_value()));
        fields.push(("start_ns".into(), Value::UInt(self.start_ns)));
        fields.push(("duration_ns".into(), Value::UInt(self.duration_ns)));
        if let Some(psi) = self.psi {
            fields.push(("psi".into(), Value::Float(psi)));
        }
        if let Some(planner) = &self.planner {
            fields.push(("planner".into(), Value::Str(planner.clone())));
        }
        if let Some(resource) = self.resource {
            fields.push(("resource".into(), Value::UInt(resource)));
        }
        if let Some(attempt) = self.attempt {
            fields.push(("attempt".into(), Value::UInt(u64::from(attempt))));
        }
        if let Some(detail) = &self.detail {
            fields.push(("detail".into(), Value::Str(detail.clone())));
        }
        if !self.children.is_empty() {
            fields.push((
                "children".into(),
                Value::Array(self.children.iter().map(Serialize::to_value).collect()),
            ));
        }
        Value::Object(fields)
    }
}

impl Deserialize for SpanRecord {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let fields = v
            .as_object()
            .ok_or_else(|| DeError::custom("expected object for `SpanRecord`"))?;
        let children = match find_field(fields, "children") {
            Some(v) => Vec::<SpanRecord>::from_value(v).map_err(|e| e.in_field("children"))?,
            None => Vec::new(),
        };
        Ok(SpanRecord {
            kind: required(fields, "kind")?,
            start_ns: required(fields, "start_ns")?,
            duration_ns: required(fields, "duration_ns")?,
            psi: optional(fields, "psi")?,
            planner: optional(fields, "planner")?,
            resource: optional(fields, "resource")?,
            attempt: optional(fields, "attempt")?,
            detail: optional(fields, "detail")?,
            children,
        })
    }
}

/// The completed causal trace of one admission request: identity,
/// outcome, end-to-end latency, and the span tree that attributes it.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestTrace {
    /// The ingress-minted trace id.
    pub trace: u64,
    /// The service spec's name.
    pub service: Option<String>,
    /// `"committed"`, `"degraded"` or `"rejected"` (the same vocabulary
    /// the wire outcome frames use).
    pub outcome: String,
    /// The session id at the brokers, when admitted.
    pub session: Option<u64>,
    /// The committed end-to-end QoS rank, when admitted.
    pub rank: Option<u32>,
    /// The committed bottleneck contention index Ψ, when admitted.
    pub psi: Option<f64>,
    /// Same-round commit conflicts this request hit.
    pub conflicts: u32,
    /// Retries / replan attempts spent.
    pub retries: u32,
    /// End-to-end wall-clock nanoseconds from ingress to outcome.
    pub total_ns: u64,
    /// Root spans in causal order. Their durations sum exactly to
    /// [`RequestTrace::total_ns`] (the queue span absorbs the residual).
    pub spans: Vec<SpanRecord>,
}

/// Outcome label for admitted-as-planned requests.
pub const OUTCOME_COMMITTED: &str = "committed";
/// Outcome label for admitted-but-degraded requests.
pub const OUTCOME_DEGRADED: &str = "degraded";
/// Outcome label for rejected requests.
pub const OUTCOME_REJECTED: &str = "rejected";

impl RequestTrace {
    /// The summed duration of every root span of `kind`.
    pub fn span_ns(&self, kind: SpanKind) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.kind == kind)
            .map(|s| s.duration_ns)
            .sum()
    }

    /// Encodes the trace as one canonical compact JSON line (no trailing
    /// newline). Decoding and re-encoding a canonical line is bit-for-bit
    /// stable.
    pub fn to_jsonl(&self) -> String {
        serde_json::to_string(self).expect("a RequestTrace value tree always serializes")
    }

    /// Decodes a [`RequestTrace::to_jsonl`] line.
    pub fn from_jsonl(line: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(line)
    }
}

impl Serialize for RequestTrace {
    fn to_value(&self) -> Value {
        let mut fields: Vec<(String, Value)> = Vec::with_capacity(8);
        fields.push(("trace".into(), Value::UInt(self.trace)));
        if let Some(service) = &self.service {
            fields.push(("service".into(), Value::Str(service.clone())));
        }
        fields.push(("outcome".into(), Value::Str(self.outcome.clone())));
        if let Some(session) = self.session {
            fields.push(("session".into(), Value::UInt(session)));
        }
        if let Some(rank) = self.rank {
            fields.push(("rank".into(), Value::UInt(u64::from(rank))));
        }
        if let Some(psi) = self.psi {
            fields.push(("psi".into(), Value::Float(psi)));
        }
        if self.conflicts != 0 {
            fields.push(("conflicts".into(), Value::UInt(u64::from(self.conflicts))));
        }
        if self.retries != 0 {
            fields.push(("retries".into(), Value::UInt(u64::from(self.retries))));
        }
        fields.push(("total_ns".into(), Value::UInt(self.total_ns)));
        fields.push((
            "spans".into(),
            Value::Array(self.spans.iter().map(Serialize::to_value).collect()),
        ));
        Value::Object(fields)
    }
}

impl Deserialize for RequestTrace {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let fields = v
            .as_object()
            .ok_or_else(|| DeError::custom("expected object for `RequestTrace`"))?;
        Ok(RequestTrace {
            trace: required(fields, "trace")?,
            service: optional(fields, "service")?,
            outcome: required(fields, "outcome")?,
            session: optional(fields, "session")?,
            rank: optional(fields, "rank")?,
            psi: optional(fields, "psi")?,
            conflicts: optional(fields, "conflicts")?.unwrap_or(0),
            retries: optional(fields, "retries")?.unwrap_or(0),
            total_ns: required(fields, "total_ns")?,
            spans: required(fields, "spans")?,
        })
    }
}

fn required<T: Deserialize>(fields: &[(String, Value)], name: &str) -> Result<T, DeError> {
    match find_field(fields, name) {
        Some(v) => T::from_value(v).map_err(|e| e.in_field(name)),
        None => Err(DeError::custom(format!("missing field `{name}`"))),
    }
}

fn optional<T: Deserialize>(fields: &[(String, Value)], name: &str) -> Result<Option<T>, DeError> {
    match find_field(fields, name) {
        Some(Value::Null) | None => Ok(None),
        Some(v) => T::from_value(v).map(Some).map_err(|e| e.in_field(name)),
    }
}

/// The recording end of request-scoped tracing: an enable flag, live
/// per-span-kind aggregates, and the flight-recorder ring.
///
/// Disabled (the default) the whole layer costs one relaxed atomic load
/// per request — instrumented code checks [`Tracer::enabled`] before
/// reading any clock or building any span. `benches/obs_overhead.rs`
/// verifies the disabled mode empirically.
#[derive(Debug)]
pub struct Tracer {
    enabled: AtomicBool,
    flight: FlightRecorder,
    /// Nanosecond histogram per [`SpanKind`], over every span recorded
    /// (children included) — the live side of the replay-equivalence
    /// contract with [`TraceSummary`](crate::TraceSummary).
    spans: [Histogram; SpanKind::ALL.len()],
    /// End-to-end request latency.
    totals: Histogram,
    committed: AtomicU64,
    degraded: AtomicU64,
    rejected: AtomicU64,
}

/// Default flight-ring capacity (span trees retained).
pub const DEFAULT_FLIGHT_CAPACITY: usize = 256;

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new(DEFAULT_FLIGHT_CAPACITY)
    }
}

impl Tracer {
    /// A disabled tracer whose flight ring retains `flight_capacity`
    /// recent span trees once enabled.
    pub fn new(flight_capacity: usize) -> Self {
        Tracer {
            enabled: AtomicBool::new(false),
            flight: FlightRecorder::new(flight_capacity),
            spans: std::array::from_fn(|_| Histogram::new()),
            totals: Histogram::new(),
            committed: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        }
    }

    /// Whether requests are currently traced (one relaxed load — the
    /// entire disabled-mode cost).
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns request tracing on or off. Requests already in flight keep
    /// the decision they took at ingress.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// The flight-recorder ring of recent span trees.
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// Records a completed trace: aggregates its spans, pushes it into
    /// the flight ring, and — when `sink` is enabled — emits one
    /// [`EventKind::RequestSpan`] per span (depth-first, causal order)
    /// plus a closing [`EventKind::RequestOutcome`], stamped `time`.
    /// Call from the arrival-order section of the pipeline so the event
    /// stream stays deterministic. Returns the shared trace for callers
    /// that feed outcome frames.
    pub fn record(
        &self,
        trace: RequestTrace,
        sink: &dyn TraceSink,
        time: f64,
    ) -> Arc<RequestTrace> {
        for span in &trace.spans {
            self.aggregate(span);
        }
        self.totals.record(trace.total_ns);
        match trace.outcome.as_str() {
            OUTCOME_COMMITTED => self.committed.fetch_add(1, Ordering::Relaxed),
            OUTCOME_DEGRADED => self.degraded.fetch_add(1, Ordering::Relaxed),
            _ => self.rejected.fetch_add(1, Ordering::Relaxed),
        };
        if sink.enabled() {
            for span in &trace.spans {
                emit_span(sink, time, trace.trace, span);
            }
            let mut ev = TraceEvent::new(time, EventKind::RequestOutcome)
                .with_trace(trace.trace)
                .with_name(trace.outcome.clone())
                .with_duration_ns(trace.total_ns);
            if let Some(service) = &trace.service {
                ev = ev.with_service(service.clone());
            }
            if let Some(session) = trace.session {
                ev = ev.with_session(session);
            }
            if let Some(rank) = trace.rank {
                ev = ev.with_level(rank);
            }
            if let Some(psi) = trace.psi {
                ev = ev.with_psi(psi);
            }
            sink.emit(&ev);
        }
        let trace = Arc::new(trace);
        self.flight.record(Arc::clone(&trace));
        trace
    }

    fn aggregate(&self, span: &SpanRecord) {
        self.spans[span.kind.index()].record(span.duration_ns);
        for child in &span.children {
            self.aggregate(child);
        }
    }

    /// The live nanosecond histogram for one span kind.
    pub fn span_histogram(&self, kind: SpanKind) -> &Histogram {
        &self.spans[kind.index()]
    }

    /// The live end-to-end request-latency histogram.
    pub fn total_histogram(&self) -> &Histogram {
        &self.totals
    }

    /// `(committed, degraded, rejected)` counts over recorded traces.
    pub fn outcome_counts(&self) -> (u64, u64, u64) {
        (
            self.committed.load(Ordering::Relaxed),
            self.degraded.load(Ordering::Relaxed),
            self.rejected.load(Ordering::Relaxed),
        )
    }

    /// Total traces recorded since construction.
    pub fn recorded(&self) -> u64 {
        self.flight.recorded()
    }
}

/// Emits one flat [`EventKind::RequestSpan`] event for `span` and then
/// its children (depth-first — the order the work actually happened).
fn emit_span(sink: &dyn TraceSink, time: f64, trace: u64, span: &SpanRecord) {
    let mut ev = TraceEvent::new(time, EventKind::RequestSpan)
        .with_trace(trace)
        .with_name(span.kind.name())
        .with_duration_ns(span.duration_ns)
        .with_value(span.start_ns as f64);
    if let Some(psi) = span.psi {
        ev = ev.with_psi(psi);
    }
    if let Some(resource) = span.resource {
        ev = ev.with_resource(resource);
    }
    if let Some(attempt) = span.attempt {
        ev = ev.with_level(attempt);
    }
    if let Some(planner) = &span.planner {
        ev = ev.with_detail(planner.clone());
    } else if let Some(detail) = &span.detail {
        ev = ev.with_detail(detail.clone());
    }
    sink.emit(&ev);
    for child in &span.children {
        emit_span(sink, time, trace, child);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{MemorySink, NullSink};

    fn sample_trace(id: u64) -> RequestTrace {
        RequestTrace {
            trace: id,
            service: Some("clip".into()),
            outcome: OUTCOME_DEGRADED.into(),
            session: Some(9),
            rank: Some(1),
            psi: Some(0.375),
            conflicts: 1,
            retries: 1,
            total_ns: 1000,
            spans: vec![
                SpanRecord::new(SpanKind::Queue, 0, 100),
                SpanRecord::new(SpanKind::Collect, 100, 200),
                SpanRecord::new(SpanKind::Plan, 300, 300)
                    .with_planner("basic")
                    .with_psi(0.5),
                SpanRecord::new(SpanKind::Replan, 600, 250)
                    .with_attempt(1)
                    .with_resource(3)
                    .with_child(SpanRecord::new(SpanKind::Plan, 620, 200).with_planner("tradeoff")),
                SpanRecord::new(SpanKind::Commit, 850, 150),
            ],
        }
    }

    #[test]
    fn canonical_jsonl_reencodes_bit_for_bit() {
        let trace = sample_trace(7);
        let line = trace.to_jsonl();
        let back = RequestTrace::from_jsonl(&line).unwrap();
        assert_eq!(back, trace);
        assert_eq!(back.to_jsonl(), line);
        assert!(!line.contains("null"), "absent fields are omitted: {line}");
    }

    #[test]
    fn span_sums_attribute_the_total() {
        let trace = sample_trace(1);
        let measured: u64 = trace.spans.iter().map(|s| s.duration_ns).sum();
        assert_eq!(measured, trace.total_ns);
        assert_eq!(trace.span_ns(SpanKind::Plan), 300);
        assert_eq!(trace.spans[3].subtree_ns(), 450);
    }

    #[test]
    fn disabled_tracer_is_just_a_flag() {
        let tracer = Tracer::new(4);
        assert!(!tracer.enabled());
        tracer.set_enabled(true);
        assert!(tracer.enabled());
    }

    #[test]
    fn record_aggregates_and_fills_the_ring() {
        let tracer = Tracer::new(8);
        tracer.set_enabled(true);
        tracer.record(sample_trace(1), &NullSink, 1.0);
        tracer.record(sample_trace(2), &NullSink, 2.0);
        assert_eq!(tracer.recorded(), 2);
        assert_eq!(tracer.outcome_counts(), (0, 2, 0));
        assert_eq!(tracer.total_histogram().count(), 2);
        // The replan child plan span aggregates into the plan histogram.
        assert_eq!(tracer.span_histogram(SpanKind::Plan).count(), 4);
        assert_eq!(tracer.span_histogram(SpanKind::Queue).count(), 2);
        let dump = tracer.flight().dump();
        assert_eq!(dump.len(), 2);
        assert_eq!(dump[0].trace, 1);
        assert_eq!(dump[1].trace, 2);
    }

    #[test]
    fn record_emits_flat_span_events_in_causal_order() {
        let tracer = Tracer::new(4);
        let sink = MemorySink::new();
        tracer.record(sample_trace(5), &sink, 3.5);
        let events = sink.events();
        // 5 roots + 1 nested child + 1 outcome.
        assert_eq!(events.len(), 7);
        let names: Vec<_> = events
            .iter()
            .map(|e| e.name.as_deref().unwrap().to_string())
            .collect();
        assert_eq!(
            names,
            ["queue", "collect", "plan", "replan", "plan", "commit", "degraded"]
        );
        assert!(events.iter().all(|e| e.trace == Some(5)));
        let outcome = events.last().unwrap();
        assert_eq!(outcome.kind, EventKind::RequestOutcome);
        assert_eq!(outcome.duration_ns, Some(1000));
        assert_eq!(outcome.session, Some(9));
    }

    #[test]
    fn span_kind_names_round_trip() {
        for kind in SpanKind::ALL {
            assert_eq!(SpanKind::from_name(kind.name()), Some(kind));
            assert_eq!(SpanKind::ALL[kind.index()], kind);
        }
        assert_eq!(SpanKind::from_name("nope"), None);
    }
}
