//! Always-on monotonic counters and the ψ histogram.
//!
//! Unlike trace events, counters are *not* gated on a sink: they are
//! relaxed atomic increments, cheap enough to leave on unconditionally.
//! Each [`Coordinator`](../../qosr_broker/struct.Coordinator.html) owns
//! its own [`Counters`]; one process-wide instance ([`Counters::global`])
//! backs the places that have no natural owner, such as the
//! `QrgSkeleton` memo's hit/miss accounting.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use serde::Serialize;

use crate::hist::{HistogramSnapshot, PsiHistogram};

/// Monotonic event counters for one coordinator (or for the process,
/// via [`Counters::global`]). All increments are relaxed atomics; reads
/// are advisory snapshots, not synchronization points.
#[derive(Debug, Default)]
pub struct Counters {
    plans_started: AtomicU64,
    plans_completed: AtomicU64,
    plans_rejected: AtomicU64,
    reservations_committed: AtomicU64,
    reservations_rejected: AtomicU64,
    sessions_released: AtomicU64,
    upgrades: AtomicU64,
    tradeoff_downgrades: AtomicU64,
    skeleton_hits: AtomicU64,
    skeleton_misses: AtomicU64,
    faults_injected: AtomicU64,
    rollbacks: AtomicU64,
    retries: AtomicU64,
    degraded_commits: AtomicU64,
    sessions_lost: AtomicU64,
    fault_failures: AtomicU64,
    establish_attempts: AtomicU64,
    establishments: AtomicU64,
    batches_planned: AtomicU64,
    commit_conflicts: AtomicU64,
    replans: AtomicU64,
    delta_repairs: AtomicU64,
    delta_fallbacks: AtomicU64,
    relax_nodes_repaired: AtomicU64,
    serve_requests: AtomicU64,
    serve_batches: AtomicU64,
    serve_protocol_errors: AtomicU64,
    serve_disconnects: AtomicU64,
    advance_booked: AtomicU64,
    advance_repacked: AtomicU64,
    advance_rejected: AtomicU64,
    psi: PsiHistogram,
}

impl Counters {
    /// A fresh, all-zero counter set.
    pub fn new() -> Self {
        Counters::default()
    }

    /// The process-wide instance. Used by code with no owning
    /// coordinator — notably the `QrgSkeleton` cache, which is itself a
    /// process-wide memo. Because tests in one binary share this, assert
    /// on *deltas* of its values, never absolutes.
    pub fn global() -> &'static Counters {
        static GLOBAL: OnceLock<Counters> = OnceLock::new();
        GLOBAL.get_or_init(Counters::new)
    }

    /// A planning attempt began (establishment phase 2).
    pub fn record_plan_started(&self) {
        self.plans_started.fetch_add(1, Ordering::Relaxed);
    }

    /// Planning produced a feasible end-to-end plan.
    pub fn record_plan_completed(&self) {
        self.plans_completed.fetch_add(1, Ordering::Relaxed);
    }

    /// Planning found no feasible plan.
    pub fn record_plan_rejected(&self) {
        self.plans_rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// A session's reservations were committed at every broker; records
    /// the plan's bottleneck Ψ into the histogram.
    pub fn record_commit(&self, psi: f64) {
        self.reservations_committed.fetch_add(1, Ordering::Relaxed);
        self.psi.record(psi);
    }

    /// A broker rejected dispatch and the plan was rolled back.
    pub fn record_reservation_rejected(&self) {
        self.reservations_rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// A session terminated and released its reservations.
    pub fn record_release(&self) {
        self.sessions_released.fetch_add(1, Ordering::Relaxed);
    }

    /// A renegotiation swapped a session to a better plan.
    pub fn record_upgrade(&self) {
        self.upgrades.fetch_add(1, Ordering::Relaxed);
    }

    /// The α-tradeoff policy stepped a plan down from the best reachable
    /// level.
    pub fn record_tradeoff_downgrade(&self) {
        self.tradeoff_downgrades.fetch_add(1, Ordering::Relaxed);
    }

    /// The `QrgSkeleton` memo served a cached skeleton.
    pub fn record_skeleton_hit(&self) {
        self.skeleton_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// The `QrgSkeleton` memo had to build a skeleton from scratch.
    pub fn record_skeleton_miss(&self) {
        self.skeleton_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// An injected fault fired: a host crash, a dropped protocol
    /// message, or a forced commit failure.
    pub fn record_fault_injected(&self) {
        self.faults_injected.fetch_add(1, Ordering::Relaxed);
    }

    /// Partially reserved hops were rolled back after a later hop of the
    /// same plan failed.
    pub fn record_rollback(&self) {
        self.rollbacks.fetch_add(1, Ordering::Relaxed);
    }

    /// A failed establishment attempt was retried (bounded backoff).
    pub fn record_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// An establishment committed at a lower rank than its first attempt
    /// planned — graceful degradation after capacity was lost mid-flight.
    pub fn record_degraded_commit(&self) {
        self.degraded_commits.fetch_add(1, Ordering::Relaxed);
    }

    /// A live session was killed by a host crash and fully released.
    pub fn record_session_lost(&self) {
        self.sessions_lost.fetch_add(1, Ordering::Relaxed);
    }

    /// An establishment exhausted its retry budget on injected faults.
    pub fn record_fault_failure(&self) {
        self.fault_failures.fetch_add(1, Ordering::Relaxed);
    }

    /// An establishment request entered the coordinator (counted once
    /// per request, before any retries). Replaces the old
    /// `Mutex<MessageStats>.attempts` bookkeeping on the establish path.
    pub fn record_establish_attempt(&self) {
        self.establish_attempts.fetch_add(1, Ordering::Relaxed);
    }

    /// An establishment request ultimately committed. Replaces the old
    /// `Mutex<MessageStats>.established` bookkeeping.
    pub fn record_establishment(&self) {
        self.establishments.fetch_add(1, Ordering::Relaxed);
    }

    /// A batched admission round planned its requests in parallel
    /// against one epoch snapshot.
    pub fn record_batch_planned(&self) {
        self.batches_planned.fetch_add(1, Ordering::Relaxed);
    }

    /// The sequential commit phase found a plan whose resource was
    /// consumed by an earlier commit in the same round.
    pub fn record_commit_conflict(&self) {
        self.commit_conflicts.fetch_add(1, Ordering::Relaxed);
    }

    /// A conflicted request was replanned against the round's working
    /// view instead of being failed.
    pub fn record_replan(&self) {
        self.replans.fetch_add(1, Ordering::Relaxed);
    }

    /// A delta-aware prepare repaired the cached relaxation in place
    /// instead of recomputing it from scratch.
    pub fn record_delta_repair(&self) {
        self.delta_repairs.fetch_add(1, Ordering::Relaxed);
    }

    /// A delta-aware prepare fell back to a full rebuild (cold cache,
    /// session/options change, or an oversized delta).
    pub fn record_delta_fallback(&self) {
        self.delta_fallbacks.fetch_add(1, Ordering::Relaxed);
    }

    /// `n` QRG nodes were recomputed by incremental relaxation repairs
    /// (the full-sweep path does not count here).
    pub fn record_relax_nodes_repaired(&self, n: u64) {
        self.relax_nodes_repaired.fetch_add(n, Ordering::Relaxed);
    }

    /// A wire-protocol request frame was decoded by the admission
    /// server (establish, terminate, stats, …).
    pub fn record_serve_request(&self) {
        self.serve_requests.fetch_add(1, Ordering::Relaxed);
    }

    /// The admission server flushed one coalesced batch into the
    /// [`AdmissionQueue`](../../qosr_broker/struct.AdmissionQueue.html).
    pub fn record_serve_batch(&self) {
        self.serve_batches.fetch_add(1, Ordering::Relaxed);
    }

    /// A client sent a malformed frame (bad length prefix, truncated
    /// payload, or undecodable JSON).
    pub fn record_serve_protocol_error(&self) {
        self.serve_protocol_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// A client connection closed (cleanly or not) and its leased
    /// sessions were released.
    pub fn record_serve_disconnect(&self) {
        self.serve_disconnects.fetch_add(1, Ordering::Relaxed);
    }

    /// An advance request (rigid window or malleable bulk transfer) was
    /// booked without displacing anyone.
    pub fn record_advance_booked(&self) {
        self.advance_booked.fetch_add(1, Ordering::Relaxed);
    }

    /// A rigid advance request was admitted by preempting malleable
    /// bookings and replanning them around it.
    pub fn record_advance_repacked(&self) {
        self.advance_repacked.fetch_add(1, Ordering::Relaxed);
    }

    /// An advance request was rejected (no feasible profile, or the
    /// repack could not make room).
    pub fn record_advance_rejected(&self) {
        self.advance_rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// The committed-Ψ histogram.
    pub fn psi_histogram(&self) -> &PsiHistogram {
        &self.psi
    }

    /// A point-in-time, serializable copy of every counter.
    pub fn snapshot(&self) -> CountersSnapshot {
        CountersSnapshot {
            plans_started: self.plans_started.load(Ordering::Relaxed),
            plans_completed: self.plans_completed.load(Ordering::Relaxed),
            plans_rejected: self.plans_rejected.load(Ordering::Relaxed),
            reservations_committed: self.reservations_committed.load(Ordering::Relaxed),
            reservations_rejected: self.reservations_rejected.load(Ordering::Relaxed),
            sessions_released: self.sessions_released.load(Ordering::Relaxed),
            upgrades: self.upgrades.load(Ordering::Relaxed),
            tradeoff_downgrades: self.tradeoff_downgrades.load(Ordering::Relaxed),
            skeleton_hits: self.skeleton_hits.load(Ordering::Relaxed),
            skeleton_misses: self.skeleton_misses.load(Ordering::Relaxed),
            faults_injected: self.faults_injected.load(Ordering::Relaxed),
            rollbacks: self.rollbacks.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            degraded_commits: self.degraded_commits.load(Ordering::Relaxed),
            sessions_lost: self.sessions_lost.load(Ordering::Relaxed),
            fault_failures: self.fault_failures.load(Ordering::Relaxed),
            establish_attempts: self.establish_attempts.load(Ordering::Relaxed),
            establishments: self.establishments.load(Ordering::Relaxed),
            batches_planned: self.batches_planned.load(Ordering::Relaxed),
            commit_conflicts: self.commit_conflicts.load(Ordering::Relaxed),
            replans: self.replans.load(Ordering::Relaxed),
            delta_repairs: self.delta_repairs.load(Ordering::Relaxed),
            delta_fallbacks: self.delta_fallbacks.load(Ordering::Relaxed),
            relax_nodes_repaired: self.relax_nodes_repaired.load(Ordering::Relaxed),
            serve_requests: self.serve_requests.load(Ordering::Relaxed),
            serve_batches: self.serve_batches.load(Ordering::Relaxed),
            serve_protocol_errors: self.serve_protocol_errors.load(Ordering::Relaxed),
            serve_disconnects: self.serve_disconnects.load(Ordering::Relaxed),
            advance_booked: self.advance_booked.load(Ordering::Relaxed),
            advance_repacked: self.advance_repacked.load(Ordering::Relaxed),
            advance_rejected: self.advance_rejected.load(Ordering::Relaxed),
            psi_buckets: self.psi.counts().to_vec(),
            psi_milli: self.psi.milli().snapshot(),
        }
    }
}

/// A serializable point-in-time copy of a [`Counters`] instance.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct CountersSnapshot {
    /// Planning attempts begun.
    pub plans_started: u64,
    /// Planning attempts that produced a plan.
    pub plans_completed: u64,
    /// Planning attempts that found no feasible plan.
    pub plans_rejected: u64,
    /// Sessions committed at every broker.
    pub reservations_committed: u64,
    /// Dispatches rejected by a broker and rolled back.
    pub reservations_rejected: u64,
    /// Sessions terminated and released.
    pub sessions_released: u64,
    /// Renegotiations that swapped to a better plan.
    pub upgrades: u64,
    /// α-tradeoff downgrades taken during planning.
    pub tradeoff_downgrades: u64,
    /// `QrgSkeleton` memo hits.
    pub skeleton_hits: u64,
    /// `QrgSkeleton` memo misses (fresh builds).
    pub skeleton_misses: u64,
    /// Injected faults that fired (crashes, drops, commit failures).
    pub faults_injected: u64,
    /// Partial-plan rollbacks (two-phase aborts).
    pub rollbacks: u64,
    /// Establishment retries taken.
    pub retries: u64,
    /// Commits at a lower rank than first planned (graceful degradation).
    pub degraded_commits: u64,
    /// Live sessions killed by host crashes.
    pub sessions_lost: u64,
    /// Establishments that failed after exhausting fault retries.
    pub fault_failures: u64,
    /// Establishment requests received (once per request, before
    /// retries).
    pub establish_attempts: u64,
    /// Establishment requests that ultimately committed.
    pub establishments: u64,
    /// Batched admission rounds planned.
    pub batches_planned: u64,
    /// Same-round commit conflicts detected by the sequential commit
    /// phase.
    pub commit_conflicts: u64,
    /// Conflicted requests replanned against the round's working view.
    pub replans: u64,
    /// Delta-aware prepares that repaired the cached relaxation in
    /// place.
    pub delta_repairs: u64,
    /// Delta-aware prepares that fell back to a full rebuild.
    pub delta_fallbacks: u64,
    /// QRG nodes recomputed by incremental relaxation repairs.
    pub relax_nodes_repaired: u64,
    /// Wire-protocol request frames decoded by the admission server.
    pub serve_requests: u64,
    /// Coalesced batches the admission server flushed into its queue.
    pub serve_batches: u64,
    /// Malformed frames received by the admission server.
    pub serve_protocol_errors: u64,
    /// Client connections closed (sessions leased to them released).
    pub serve_disconnects: u64,
    /// Advance requests booked (rigid windows and malleable profiles).
    pub advance_booked: u64,
    /// Rigid advance requests admitted by preempt-and-repack.
    pub advance_repacked: u64,
    /// Advance requests rejected.
    pub advance_rejected: u64,
    /// Committed-Ψ histogram counts
    /// ([`PSI_BUCKETS`](crate::PSI_BUCKETS) edges + overflow).
    pub psi_buckets: Vec<u64>,
    /// Quantile snapshot of committed Ψ in milli-Ψ fixed point
    /// (`round(Ψ × 1000)`): count/min/max/p50/p90/p99.
    pub psi_milli: HistogramSnapshot,
}

impl CountersSnapshot {
    /// Fraction of skeleton lookups served from the memo, or `None`
    /// before any lookup happened.
    pub fn skeleton_hit_rate(&self) -> Option<f64> {
        let total = self.skeleton_hits + self.skeleton_misses;
        (total > 0).then(|| self.skeleton_hits as f64 / total as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_records() {
        let c = Counters::new();
        c.record_plan_started();
        c.record_plan_started();
        c.record_plan_completed();
        c.record_plan_rejected();
        c.record_commit(0.4);
        c.record_release();
        c.record_upgrade();
        c.record_tradeoff_downgrade();
        c.record_skeleton_hit();
        c.record_skeleton_hit();
        c.record_skeleton_miss();
        c.record_delta_repair();
        c.record_delta_fallback();
        c.record_relax_nodes_repaired(12);
        c.record_relax_nodes_repaired(3);
        c.record_serve_request();
        c.record_serve_request();
        c.record_serve_batch();
        c.record_serve_protocol_error();
        c.record_serve_disconnect();
        c.record_advance_booked();
        c.record_advance_booked();
        c.record_advance_repacked();
        c.record_advance_rejected();
        let snap = c.snapshot();
        assert_eq!(snap.plans_started, 2);
        assert_eq!(snap.plans_completed, 1);
        assert_eq!(snap.plans_rejected, 1);
        assert_eq!(snap.reservations_committed, 1);
        assert_eq!(snap.sessions_released, 1);
        assert_eq!(snap.upgrades, 1);
        assert_eq!(snap.tradeoff_downgrades, 1);
        assert_eq!(snap.skeleton_hits, 2);
        assert_eq!(snap.skeleton_misses, 1);
        assert_eq!(snap.delta_repairs, 1);
        assert_eq!(snap.delta_fallbacks, 1);
        assert_eq!(snap.relax_nodes_repaired, 15);
        assert_eq!(snap.serve_requests, 2);
        assert_eq!(snap.serve_batches, 1);
        assert_eq!(snap.serve_protocol_errors, 1);
        assert_eq!(snap.serve_disconnects, 1);
        assert_eq!(snap.advance_booked, 2);
        assert_eq!(snap.advance_repacked, 1);
        assert_eq!(snap.advance_rejected, 1);
        assert_eq!(snap.psi_buckets[4], 1); // 0.4 falls in [0.4, 0.5)
        assert_eq!(snap.psi_milli.count, 1);
        assert_eq!(snap.psi_milli.max, 400); // milli-Ψ fixed point
        assert_eq!(snap.skeleton_hit_rate(), Some(2.0 / 3.0));
    }

    #[test]
    fn global_is_shared_and_monotonic() {
        let before = Counters::global().snapshot().skeleton_hits;
        Counters::global().record_skeleton_hit();
        let after = Counters::global().snapshot().skeleton_hits;
        assert!(after > before);
    }
}
