//! Live metrics: gauges, a Prometheus-text registry, and a minimal
//! HTTP exposition server.
//!
//! [`MetricsRegistry`] is the aggregation point the live telemetry
//! layer reports through: attach a coordinator's [`Counters`] and
//! [`PhaseTimers`], feed utilization/queue gauges from the simulator's
//! sampling tick, and [`MetricsRegistry::render`] produces standard
//! Prometheus text format (version 0.0.4) with all four metric shapes —
//! `counter`s for the monotonic event counts, a `histogram` for
//! committed Ψ, `summary` quantiles for per-phase wall-clock timings,
//! and `gauge`s for utilization and queue depth. The `qosr metrics`
//! subcommand dumps one render; [`serve`] exposes the same payload over
//! a blocking [`std::net::TcpListener`] responder for `--metrics-addr`.
//!
//! Gauges keep a short ring-buffer time series ([`GaugeSample`]) behind
//! the current value, so `qosr top` can show recent movement without a
//! full trace.

use std::collections::BTreeMap;
use std::io::{self, Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::counters::Counters;
use crate::hist::PSI_BUCKETS;
use crate::span::{Phase, PhaseTimers};

/// Ring-buffer depth kept per gauge series.
const RING_CAPACITY: usize = 256;

/// One timestamped gauge observation (sim-time, value).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaugeSample {
    /// Sim-time of the observation.
    pub time: f64,
    /// Observed value.
    pub value: f64,
}

#[derive(Debug, Default)]
struct GaugeSeries {
    value: f64,
    /// Fixed-capacity wrap-cursor ring: grows to `RING_CAPACITY`, then
    /// `cursor` marks the next overwrite slot — which is also the oldest
    /// retained sample.
    ring: Vec<GaugeSample>,
    cursor: usize,
}

impl GaugeSeries {
    fn push(&mut self, sample: GaugeSample) {
        self.value = sample.value;
        if self.ring.len() < RING_CAPACITY {
            self.ring.push(sample);
        } else {
            self.ring[self.cursor] = sample;
            self.cursor = (self.cursor + 1) % RING_CAPACITY;
        }
    }

    /// Chronological (oldest-first) view. Once the ring has wrapped,
    /// in-memory order is rotated: the oldest sample sits at `cursor`,
    /// so the read path must stitch `ring[cursor..]` before
    /// `ring[..cursor]` — returning the raw slice order here would show
    /// the newest samples *before* the oldest after every wrap.
    fn samples(&self) -> Vec<GaugeSample> {
        let (head, tail) = self.ring.split_at(self.cursor);
        tail.iter().chain(head.iter()).copied().collect()
    }
}

/// The label key/value attached to one gauge series (owned form).
type LabelKey = Option<(String, String)>;

/// The live metrics aggregation point. Cheap to share (`Arc`) and
/// thread-safe; every mutator takes `&self`.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<Option<Arc<Counters>>>,
    timers: Mutex<Option<Arc<PhaseTimers>>>,
    gauges: Mutex<BTreeMap<String, BTreeMap<String, GaugeSeries>>>,
    labels: Mutex<BTreeMap<(String, String), LabelKey>>,
}

impl MetricsRegistry {
    /// An empty registry with no sources attached.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Attaches a coordinator's counter block; rendered as `counter`
    /// families plus the committed-Ψ `histogram`.
    pub fn attach_counters(&self, counters: Arc<Counters>) {
        *self.counters.lock().expect("counters lock") = Some(counters);
    }

    /// Attaches a coordinator's phase timers and **enables** them
    /// (attaching a registry is the opt-in that turns measurement on).
    pub fn attach_timers(&self, timers: Arc<PhaseTimers>) {
        timers.set_enabled(true);
        *self.timers.lock().expect("timers lock") = Some(timers);
    }

    /// The attached phase timers, if any.
    pub fn timers(&self) -> Option<Arc<PhaseTimers>> {
        self.timers.lock().expect("timers lock").clone()
    }

    /// The attached counters, if any.
    pub fn counters(&self) -> Option<Arc<Counters>> {
        self.counters.lock().expect("counters lock").clone()
    }

    /// Sets gauge `family` (optionally labelled `label = (key, value)`)
    /// to `value` at sim-time `time`, appending to the series ring
    /// (bounded at `RING_CAPACITY` = 256, oldest dropped).
    pub fn set_gauge(&self, family: &str, label: Option<(&str, &str)>, time: f64, value: f64) {
        let series_key = label.map(|(k, v)| format!("{k}={v}")).unwrap_or_default();
        self.labels
            .lock()
            .expect("labels lock")
            .entry((family.to_string(), series_key.clone()))
            .or_insert_with(|| label.map(|(k, v)| (k.to_string(), v.to_string())));
        let mut gauges = self.gauges.lock().expect("gauges lock");
        gauges
            .entry(family.to_string())
            .or_default()
            .entry(series_key)
            .or_default()
            .push(GaugeSample { time, value });
    }

    /// The current value of a gauge series, if it has ever been set.
    pub fn gauge(&self, family: &str, label: Option<(&str, &str)>) -> Option<f64> {
        let series_key = label.map(|(k, v)| format!("{k}={v}")).unwrap_or_default();
        self.gauges
            .lock()
            .expect("gauges lock")
            .get(family)?
            .get(&series_key)
            .map(|s| s.value)
    }

    /// The recent time series of a gauge (oldest first, bounded ring).
    pub fn series(&self, family: &str, label: Option<(&str, &str)>) -> Vec<GaugeSample> {
        let series_key = label.map(|(k, v)| format!("{k}={v}")).unwrap_or_default();
        self.gauges
            .lock()
            .expect("gauges lock")
            .get(family)
            .and_then(|m| m.get(&series_key))
            .map(GaugeSeries::samples)
            .unwrap_or_default()
    }

    /// Every series of a gauge family: `(series key, ring)` pairs, where
    /// the series key is `""` for the unlabelled series and `"key=value"`
    /// otherwise. Lets consumers (e.g. `qosr top`) aggregate across
    /// labels without knowing them in advance.
    pub fn gauge_families(&self, family: &str) -> Vec<(String, Vec<GaugeSample>)> {
        self.gauges
            .lock()
            .expect("gauges lock")
            .get(family)
            .map(|m| {
                m.iter()
                    .map(|(key, s)| (key.clone(), s.samples()))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Renders the full registry in Prometheus text format 0.0.4.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();

        if let Some(counters) = self.counters() {
            let snap = counters.snapshot();
            let families: [(&str, &str, u64); 28] = [
                (
                    "plans_started",
                    "Planning attempts begun",
                    snap.plans_started,
                ),
                (
                    "plans_completed",
                    "Planning attempts that produced a plan",
                    snap.plans_completed,
                ),
                (
                    "plans_rejected",
                    "Planning attempts with no feasible plan",
                    snap.plans_rejected,
                ),
                (
                    "reservations_committed",
                    "Sessions committed at every broker",
                    snap.reservations_committed,
                ),
                (
                    "reservations_rejected",
                    "Dispatches rejected by a broker",
                    snap.reservations_rejected,
                ),
                (
                    "sessions_released",
                    "Sessions terminated and released",
                    snap.sessions_released,
                ),
                ("upgrades", "Renegotiations to a better plan", snap.upgrades),
                (
                    "tradeoff_downgrades",
                    "Alpha-tradeoff downgrades taken",
                    snap.tradeoff_downgrades,
                ),
                (
                    "skeleton_hits",
                    "QRG skeleton memo hits",
                    snap.skeleton_hits,
                ),
                (
                    "skeleton_misses",
                    "QRG skeleton memo misses",
                    snap.skeleton_misses,
                ),
                (
                    "faults_injected",
                    "Injected faults fired",
                    snap.faults_injected,
                ),
                ("rollbacks", "Partial-plan rollbacks", snap.rollbacks),
                ("retries", "Establishment retries", snap.retries),
                (
                    "degraded_commits",
                    "Commits below first-planned rank",
                    snap.degraded_commits,
                ),
                (
                    "sessions_lost",
                    "Sessions killed by host crashes",
                    snap.sessions_lost,
                ),
                (
                    "fault_failures",
                    "Establishments failed after fault retries",
                    snap.fault_failures,
                ),
                (
                    "establish_attempts",
                    "Establishment requests received",
                    snap.establish_attempts,
                ),
                (
                    "establishments",
                    "Establishment requests committed",
                    snap.establishments,
                ),
                (
                    "batches_planned",
                    "Batched admission rounds planned",
                    snap.batches_planned,
                ),
                (
                    "commit_conflicts",
                    "Same-round commit conflicts",
                    snap.commit_conflicts,
                ),
                ("replans", "Conflicted requests replanned", snap.replans),
                (
                    "delta_repairs",
                    "Delta-aware prepares repaired in place",
                    snap.delta_repairs,
                ),
                (
                    "delta_fallbacks",
                    "Delta-aware prepares that fell back to a full rebuild",
                    snap.delta_fallbacks,
                ),
                (
                    "relax_nodes_repaired",
                    "QRG nodes recomputed by incremental relaxation repairs",
                    snap.relax_nodes_repaired,
                ),
                (
                    "serve_requests",
                    "Wire-protocol request frames decoded by the admission server",
                    snap.serve_requests,
                ),
                (
                    "serve_batches",
                    "Coalesced batches the admission server flushed",
                    snap.serve_batches,
                ),
                (
                    "serve_protocol_errors",
                    "Malformed frames received by the admission server",
                    snap.serve_protocol_errors,
                ),
                (
                    "serve_disconnects",
                    "Client connections closed with leased sessions released",
                    snap.serve_disconnects,
                ),
            ];
            for (name, help, value) in families {
                let _ = writeln!(out, "# HELP qosr_{name}_total {help}.");
                let _ = writeln!(out, "# TYPE qosr_{name}_total counter");
                let _ = writeln!(out, "qosr_{name}_total {value}");
            }

            let psi = counters.psi_histogram();
            let _ = writeln!(
                out,
                "# HELP qosr_committed_psi Bottleneck contention index of committed plans."
            );
            let _ = writeln!(out, "# TYPE qosr_committed_psi histogram");
            let counts = psi.counts();
            let mut cumulative = 0u64;
            for (i, &count) in counts.iter().enumerate().take(PSI_BUCKETS.len()) {
                cumulative += count;
                let _ = writeln!(
                    out,
                    "qosr_committed_psi_bucket{{le=\"{}\"}} {cumulative}",
                    PSI_BUCKETS[i]
                );
            }
            cumulative += counts[PSI_BUCKETS.len()];
            let _ = writeln!(out, "qosr_committed_psi_bucket{{le=\"+Inf\"}} {cumulative}");
            let _ = writeln!(out, "qosr_committed_psi_sum {}", psi.sum());
            let _ = writeln!(out, "qosr_committed_psi_count {cumulative}");
        }

        if let Some(timers) = self.timers() {
            let _ = writeln!(
                out,
                "# HELP qosr_phase_duration_seconds Wall-clock time per admission phase."
            );
            let _ = writeln!(out, "# TYPE qosr_phase_duration_seconds summary");
            for phase in Phase::ALL {
                let hist = timers.histogram(phase);
                let name = phase.name();
                for (label, q) in [("0.5", 0.5), ("0.9", 0.9), ("0.99", 0.99)] {
                    if let Some(ns) = hist.percentile(q) {
                        let _ = writeln!(
                            out,
                            "qosr_phase_duration_seconds{{phase=\"{name}\",quantile=\"{label}\"}} {}",
                            ns as f64 / 1e9
                        );
                    }
                }
                let _ = writeln!(
                    out,
                    "qosr_phase_duration_seconds_sum{{phase=\"{name}\"}} {}",
                    hist.sum() as f64 / 1e9
                );
                let _ = writeln!(
                    out,
                    "qosr_phase_duration_seconds_count{{phase=\"{name}\"}} {}",
                    hist.count()
                );
            }
        }

        let gauges = self.gauges.lock().expect("gauges lock");
        let labels = self.labels.lock().expect("labels lock");
        for (family, series) in gauges.iter() {
            let _ = writeln!(out, "# TYPE qosr_{family} gauge");
            for (series_key, entry) in series {
                let label = labels
                    .get(&(family.clone(), series_key.clone()))
                    .and_then(|l| l.as_ref());
                match label {
                    Some((k, v)) => {
                        let _ = writeln!(
                            out,
                            "qosr_{family}{{{k}=\"{}\"}} {}",
                            escape_label(v),
                            entry.value
                        );
                    }
                    None => {
                        let _ = writeln!(out, "qosr_{family} {}", entry.value);
                    }
                }
            }
        }
        out
    }
}

/// Escapes a label value per the Prometheus text format (backslash,
/// double quote, newline).
fn escape_label(value: &str) -> String {
    value
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// A running metrics HTTP responder; dropping it (or calling
/// [`MetricsServer::shutdown`]) stops the listener thread.
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// The bound local address (useful when serving on port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the listener thread and waits for it to exit.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Unblock the accept loop with one throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        if self.handle.is_some() {
            self.stop_and_join();
        }
    }
}

/// Serves `registry.render()` over plain HTTP/1.1 on `addr` (e.g.
/// `127.0.0.1:9184`, or port `0` to let the OS pick — read the result
/// back from [`MetricsServer::addr`]). Every request, regardless of
/// path, gets the current exposition; the implementation is a single
/// blocking accept loop, deliberately dependency-free.
pub fn serve(
    addr: impl ToSocketAddrs,
    registry: Arc<MetricsRegistry>,
) -> io::Result<MetricsServer> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let handle = std::thread::Builder::new()
        .name("qosr-metrics".into())
        .spawn(move || {
            for stream in listener.incoming() {
                if stop_flag.load(Ordering::Relaxed) {
                    break;
                }
                if let Ok(mut stream) = stream {
                    let _ = respond(&mut stream, &registry.render());
                }
            }
        })?;
    Ok(MetricsServer {
        addr: local,
        stop,
        handle: Some(handle),
    })
}

/// Drains (best-effort) the request head and writes one 200 response
/// carrying `body` as the exposition payload.
fn respond(stream: &mut TcpStream, body: &str) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    let mut buf = [0u8; 1024];
    let mut head = Vec::new();
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                head.extend_from_slice(&buf[..n]);
                if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() > 16 * 1024 {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    write!(
        stream,
        "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_contains_all_four_metric_types() {
        let registry = MetricsRegistry::new();
        let counters = Arc::new(Counters::new());
        counters.record_plan_started();
        counters.record_commit(0.42);
        registry.attach_counters(Arc::clone(&counters));
        let timers = Arc::new(PhaseTimers::new());
        registry.attach_timers(Arc::clone(&timers));
        assert!(timers.enabled(), "attaching the registry enables timers");
        timers.record_ns(Phase::Plan, 1_500);
        registry.set_gauge("utilization", Some(("resource", "h0.cpu")), 1.0, 0.25);
        registry.set_gauge("queue_depth", None, 1.0, 3.0);

        let text = registry.render();
        assert!(text.contains("# TYPE qosr_plans_started_total counter"));
        assert!(text.contains("qosr_plans_started_total 1"));
        assert!(text.contains("# TYPE qosr_delta_repairs_total counter"));
        assert!(text.contains("qosr_delta_fallbacks_total 0"));
        assert!(text.contains("qosr_relax_nodes_repaired_total 0"));
        assert!(text.contains("# TYPE qosr_serve_requests_total counter"));
        assert!(text.contains("qosr_serve_protocol_errors_total 0"));
        assert!(text.contains("# TYPE qosr_committed_psi histogram"));
        assert!(text.contains("qosr_committed_psi_bucket{le=\"0.5\"} 1"));
        assert!(text.contains("qosr_committed_psi_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("qosr_committed_psi_count 1"));
        assert!(text.contains("# TYPE qosr_phase_duration_seconds summary"));
        assert!(text.contains("qosr_phase_duration_seconds{phase=\"plan\",quantile=\"0.5\"}"));
        assert!(text.contains("qosr_phase_duration_seconds_count{phase=\"plan\"} 1"));
        assert!(text.contains("qosr_phase_duration_seconds_count{phase=\"collect\"} 0"));
        assert!(text.contains("# TYPE qosr_utilization gauge"));
        assert!(text.contains("qosr_utilization{resource=\"h0.cpu\"} 0.25"));
        assert!(text.contains("qosr_queue_depth 3"));
    }

    #[test]
    fn gauges_keep_a_bounded_ring() {
        let registry = MetricsRegistry::new();
        for i in 0..(RING_CAPACITY + 10) {
            registry.set_gauge("depth", None, i as f64, i as f64);
        }
        let series = registry.series("depth", None);
        assert_eq!(series.len(), RING_CAPACITY);
        assert_eq!(series.first().unwrap().value, 10.0);
        assert_eq!(series.last().unwrap().value, (RING_CAPACITY + 9) as f64);
        assert_eq!(
            registry.gauge("depth", None),
            Some((RING_CAPACITY + 9) as f64)
        );
        assert_eq!(registry.gauge("missing", None), None);
    }

    #[test]
    fn gauge_ring_wraparound_keeps_oldest_first_order() {
        let registry = MetricsRegistry::new();
        // Fill past two full wraps so the cursor lands mid-ring, then
        // pin that every read path stitches the rotated storage back
        // into strictly increasing time order, oldest first.
        let total = RING_CAPACITY * 2 + 37;
        for i in 0..total {
            registry.set_gauge("wrap", None, i as f64, i as f64);
        }
        let series = registry.series("wrap", None);
        assert_eq!(series.len(), RING_CAPACITY);
        assert_eq!(series.first().unwrap().time, (total - RING_CAPACITY) as f64);
        assert_eq!(series.last().unwrap().time, (total - 1) as f64);
        for pair in series.windows(2) {
            assert!(
                pair[0].time < pair[1].time,
                "wrapped ring out of order: {} !< {}",
                pair[0].time,
                pair[1].time
            );
        }
        let families = registry.gauge_families("wrap");
        assert_eq!(families.len(), 1);
        assert_eq!(families[0].1, series, "gauge_families shares the stitch");
        // A partially filled ring is already chronological.
        registry.set_gauge("fresh", None, 1.0, 1.0);
        registry.set_gauge("fresh", None, 2.0, 2.0);
        let fresh = registry.series("fresh", None);
        assert_eq!(fresh.iter().map(|s| s.time).collect::<Vec<_>>(), [1.0, 2.0]);
    }

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(escape_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn server_serves_the_rendered_payload() {
        let registry = Arc::new(MetricsRegistry::new());
        registry.set_gauge("utilization", Some(("resource", "x")), 0.0, 0.5);
        let server = serve("127.0.0.1:0", Arc::clone(&registry)).expect("bind");
        let addr = server.addr();

        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        assert!(response.starts_with("HTTP/1.1 200 OK"));
        assert!(response.contains("text/plain; version=0.0.4"));
        assert!(response.contains("qosr_utilization{resource=\"x\"} 0.5"));

        server.shutdown();
    }
}
