//! A lock-light pool of [`PlanCtx`] scratch instances.
//!
//! Planning through a [`PlanCtx`] is allocation-free after warm-up, but a
//! context is `&mut self` state: under concurrent admission many worker
//! threads plan at once, and funnelling them through a single
//! `Mutex<PlanCtx>` serializes the very phase that dominates admission
//! cost. A [`PlanCtxPool`] hands each worker its own context instead: a
//! checkout pops a warmed context (or creates a fresh one when the pool
//! runs dry), and dropping the [`PooledCtx`] guard returns it. The pool's
//! mutex is held only for the `Vec` push/pop — nanoseconds — never for
//! the planning work itself, so throughput scales with worker count.
//!
//! Contexts keep whatever [`QrgSkeleton`](crate::QrgSkeleton) they last
//! planned against, so a pool that serves a recurring service mix stays
//! warm across checkouts exactly like the old single shared context did.

use crate::ctx::PlanCtx;
use std::sync::Mutex;

/// A pool of reusable [`PlanCtx`] instances for concurrent planning.
///
/// Grows on demand — a checkout never blocks waiting for a peer to
/// finish — and never shrinks; the steady-state size is the maximum
/// number of simultaneous planners observed so far.
#[derive(Debug, Default)]
pub struct PlanCtxPool {
    free: Mutex<Vec<PlanCtx>>,
}

impl PlanCtxPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Checks a context out of the pool, creating a fresh one when none
    /// is idle. The guard returns the context on drop.
    pub fn checkout(&self) -> PooledCtx<'_> {
        let ctx = self.lock_free().pop().unwrap_or_default();
        PooledCtx {
            pool: self,
            ctx: Some(ctx),
        }
    }

    /// The number of idle contexts currently parked in the pool.
    pub fn idle(&self) -> usize {
        self.lock_free().len()
    }

    fn checkin(&self, ctx: PlanCtx) {
        self.lock_free().push(ctx);
    }

    fn lock_free(&self) -> std::sync::MutexGuard<'_, Vec<PlanCtx>> {
        // A panic while holding this lock can only poison a Vec of
        // scratch buffers — always safe to keep using.
        self.free.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// An exclusive checkout of one [`PlanCtx`]; derefs to the context and
/// returns it to its [`PlanCtxPool`] on drop.
#[derive(Debug)]
pub struct PooledCtx<'a> {
    pool: &'a PlanCtxPool,
    ctx: Option<PlanCtx>,
}

impl std::ops::Deref for PooledCtx<'_> {
    type Target = PlanCtx;

    fn deref(&self) -> &PlanCtx {
        self.ctx.as_ref().expect("ctx present until drop")
    }
}

impl std::ops::DerefMut for PooledCtx<'_> {
    fn deref_mut(&mut self) -> &mut PlanCtx {
        self.ctx.as_mut().expect("ctx present until drop")
    }
}

impl Drop for PooledCtx<'_> {
    fn drop(&mut self) {
        if let Some(ctx) = self.ctx.take() {
            self.pool.checkin(ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_grows_and_checkin_reuses() {
        let pool = PlanCtxPool::new();
        assert_eq!(pool.idle(), 0);
        {
            let _a = pool.checkout();
            let _b = pool.checkout();
            assert_eq!(pool.idle(), 0, "both contexts are out");
        }
        assert_eq!(pool.idle(), 2, "guards returned their contexts");
        {
            let _c = pool.checkout();
            assert_eq!(pool.idle(), 1, "reused an idle context");
        }
        assert_eq!(pool.idle(), 2);
    }

    #[test]
    fn pool_is_shareable_across_threads() {
        let pool = PlanCtxPool::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..64 {
                        let _ctx = pool.checkout();
                    }
                });
            }
        });
        assert!(pool.idle() <= 4, "at most one context per worker");
        assert!(pool.idle() >= 1);
    }
}
