//! Snapshots of end-to-end resource availability.

use qosr_model::ResourceId;

/// A snapshot of resource availability (and availability trend) at plan
/// time, as collected by the main QoSProxy from the Resource Brokers of
/// all participating hosts (§3).
///
/// Each entry carries:
/// * `avail` — the currently available (unreserved) amount `r^avail`;
/// * `alpha` — the *Availability Change Index* `α = r^avail /
///   r^avail_avg` of §4.3.1 (eq. 5), reported by the broker; `α ≥ 1`
///   means the availability trend is up or unchanged, `α < 1` down.
///
/// Resources absent from the view are treated as having **zero**
/// availability: a planner must never reserve a resource it has no
/// observation for.
///
/// Storage is a vector sorted by resource id. Views are small (a
/// handful to a few hundred resources) and sit on the hot planning
/// path, where every candidate evaluation reads them: a branchy binary
/// search over a contiguous array beats hashing the key, and the sorted
/// order lets the delta path diff two views with a linear merge instead
/// of per-entry probes.
#[derive(Debug, Clone, Default)]
pub struct AvailabilityView {
    /// `(resource, (avail, alpha))`, strictly ascending by resource id.
    entries: Vec<(ResourceId, (f64, f64))>,
}

impl AvailabilityView {
    /// Creates an empty view.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn search(&self, id: ResourceId) -> Result<usize, usize> {
        self.entries.binary_search_by_key(&id, |&(rid, _)| rid)
    }

    /// The observation for `id`, if any.
    #[inline]
    pub(crate) fn get(&self, id: ResourceId) -> Option<(f64, f64)> {
        self.search(id).ok().map(|i| self.entries[i].1)
    }

    /// The sorted backing entries (for merge-style diffs).
    #[inline]
    pub(crate) fn entries(&self) -> &[(ResourceId, (f64, f64))] {
        &self.entries
    }

    /// Records availability for `id` with a neutral trend (`α = 1`).
    pub fn set(&mut self, id: ResourceId, avail: f64) {
        self.set_with_alpha(id, avail, 1.0);
    }

    /// Records availability and availability-change index for `id`.
    pub fn set_with_alpha(&mut self, id: ResourceId, avail: f64, alpha: f64) {
        match self.search(id) {
            Ok(i) => self.entries[i].1 = (avail, alpha),
            Err(i) => self.entries.insert(i, (id, (avail, alpha))),
        }
    }

    /// Observed availability of `id`; zero when unobserved.
    #[inline]
    pub fn avail(&self, id: ResourceId) -> f64 {
        self.get(id).map_or(0.0, |(a, _)| a)
    }

    /// Observed availability-change index of `id`; `1.0` (no trend) when
    /// unobserved.
    #[inline]
    pub fn alpha(&self, id: ResourceId) -> f64 {
        self.get(id).map_or(1.0, |(_, al)| al)
    }

    /// `true` if the view carries an observation for `id`.
    pub fn contains(&self, id: ResourceId) -> bool {
        self.search(id).is_ok()
    }

    /// Number of observed resources.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no resources are observed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(resource, avail, alpha)` observations in
    /// ascending resource-id order.
    pub fn iter(&self) -> impl Iterator<Item = (ResourceId, f64, f64)> + '_ {
        self.entries.iter().map(|&(id, (a, al))| (id, a, al))
    }

    /// Subtracts `amount` from the recorded availability of `id`,
    /// clamping at zero. Unobserved resources stay unobserved: a debit
    /// cannot create an observation out of thin air.
    ///
    /// Used by the batched admission pipeline to keep a *working copy*
    /// of an epoch snapshot current as plans from the same round commit
    /// ahead of later arrivals.
    pub fn debit(&mut self, id: ResourceId, amount: f64) {
        if let Ok(i) = self.search(id) {
            let avail = &mut self.entries[i].1 .0;
            *avail = (*avail - amount).max(0.0);
        }
    }

    /// Checks a demand vector against the view and returns the *worst*
    /// shortfall, if any: the `(resource, requested, available)` triple
    /// maximizing `requested − available` over all entries that do not
    /// fit. Returns `None` when every entry fits (within a small epsilon
    /// absorbing float drift from repeated debits).
    ///
    /// Duplicate resources in `demand` are **not** summed; callers pass
    /// per-resource totals (as produced by
    /// [`ReservationPlan::total_demand`](crate::ReservationPlan::total_demand)).
    pub fn first_deficit(
        &self,
        demand: impl IntoIterator<Item = (ResourceId, f64)>,
    ) -> Option<(ResourceId, f64, f64)> {
        let mut worst: Option<(ResourceId, f64, f64)> = None;
        for (id, requested) in demand {
            let available = self.avail(id);
            let short = requested - available;
            if short > 1e-9 && worst.is_none_or(|(_, r, a)| short > r - a) {
                worst = Some((id, requested, available));
            }
        }
        worst
    }

    /// Builds a view by probing `avail` (with neutral α) for each id.
    pub fn from_fn(
        ids: impl IntoIterator<Item = ResourceId>,
        mut avail: impl FnMut(ResourceId) -> f64,
    ) -> Self {
        let mut view = AvailabilityView::new();
        for id in ids {
            let a = avail(id);
            view.set(id, a);
        }
        view
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rid(i: u32) -> ResourceId {
        ResourceId(i)
    }

    #[test]
    fn defaults_for_unobserved() {
        let view = AvailabilityView::new();
        assert_eq!(view.avail(rid(0)), 0.0);
        assert_eq!(view.alpha(rid(0)), 1.0);
        assert!(!view.contains(rid(0)));
        assert!(view.is_empty());
    }

    #[test]
    fn set_and_get() {
        let mut view = AvailabilityView::new();
        view.set(rid(1), 100.0);
        view.set_with_alpha(rid(2), 50.0, 0.8);
        assert_eq!(view.avail(rid(1)), 100.0);
        assert_eq!(view.alpha(rid(1)), 1.0);
        assert_eq!(view.avail(rid(2)), 50.0);
        assert_eq!(view.alpha(rid(2)), 0.8);
        assert_eq!(view.len(), 2);
        // Overwrite.
        view.set_with_alpha(rid(1), 70.0, 1.2);
        assert_eq!(view.avail(rid(1)), 70.0);
        assert_eq!(view.alpha(rid(1)), 1.2);
        assert_eq!(view.len(), 2);
    }

    #[test]
    fn debit_clamps_and_ignores_unobserved() {
        let mut view = AvailabilityView::new();
        view.set_with_alpha(rid(1), 100.0, 0.9);
        view.debit(rid(1), 30.0);
        assert_eq!(view.avail(rid(1)), 70.0);
        assert_eq!(view.alpha(rid(1)), 0.9, "debit preserves the trend");
        view.debit(rid(1), 1000.0);
        assert_eq!(view.avail(rid(1)), 0.0, "clamped at zero");
        view.debit(rid(2), 10.0);
        assert!(!view.contains(rid(2)), "debit never creates observations");
    }

    #[test]
    fn first_deficit_reports_worst_shortfall() {
        let mut view = AvailabilityView::new();
        view.set(rid(1), 100.0);
        view.set(rid(2), 10.0);
        assert_eq!(view.first_deficit([(rid(1), 50.0), (rid(2), 10.0)]), None);
        // rid(3) is unobserved (zero availability) and overshoots by 20;
        // rid(2) overshoots by 5. The worst shortfall wins.
        let hit = view
            .first_deficit([(rid(2), 15.0), (rid(3), 20.0)])
            .expect("deficit");
        assert_eq!(hit, (rid(3), 20.0, 0.0));
    }

    #[test]
    fn from_fn_probes_all() {
        let view = AvailabilityView::from_fn([rid(0), rid(3)], |id| id.0 as f64 * 10.0);
        assert_eq!(view.avail(rid(0)), 0.0);
        assert!(view.contains(rid(0)));
        assert_eq!(view.avail(rid(3)), 30.0);
        let mut seen: Vec<_> = view.iter().map(|(id, a, _)| (id, a)).collect();
        seen.sort_by_key(|&(id, _)| id);
        assert_eq!(seen, vec![(rid(0), 0.0), (rid(3), 30.0)]);
    }
}
