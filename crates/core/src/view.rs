//! The planner's internal view of a QRG.
//!
//! Pass I/II and the four planners are implemented once, generically over
//! [`PlanView`] (see `relax.rs`, `backtrack.rs`, `planner.rs`). Two
//! implementations exist:
//!
//! * [`QrgView`] — adapts a materialized [`Qrg`] (the documented §4.1.1
//!   construction: one graph built per availability snapshot). Edge ids
//!   are compact over the *feasible* translation edges.
//! * `CtxView` (in `ctx.rs`) — the amortized hot path: a cached
//!   per-service [`crate::QrgSkeleton`] plus per-call weight/feasibility
//!   buffers in a reusable [`crate::PlanCtx`]. Edge ids range over *all
//!   candidate* edges; infeasible candidates report `edge_weight == None`.
//!
//! Both views enumerate edges in the same per-component construction
//! order, so the feasible edges of the skeleton view are an
//! order-preserving subsequence of the legacy ids. Every edge-id
//! comparison in the algorithms (the relaxation tie-break, first-found
//! scans) therefore decides identically under either view, which is what
//! makes the two paths produce byte-identical [`crate::ReservationPlan`]s.

use crate::backtrack::{Assignment, BtScratch};
use crate::qrg::EdgeBottleneck;
use crate::{EdgeKind, NodeRef, Qrg};
use qosr_model::{ResourceVector, ServiceSpec};

/// Read-only interface the planning algorithms run against.
pub(crate) trait PlanView {
    /// The service being planned.
    fn service(&self) -> &ServiceSpec;
    /// `true` when the paper's tie-breaking rule is disabled (ablation).
    fn disable_tie_break(&self) -> bool;
    /// Total number of QRG nodes.
    fn n_nodes(&self) -> usize;
    /// What node `n` represents.
    fn node_ref(&self, n: usize) -> NodeRef;
    /// The QRG source node.
    fn source_node(&self) -> usize;
    /// Node index of `Q^in` level `i` of component `c`.
    fn in_node(&self, c: usize, i: usize) -> usize;
    /// Node index of `Q^out` level `j` of component `c`.
    fn out_node(&self, c: usize, j: usize) -> usize;
    /// Nodes in relaxation (topological) order.
    fn relax_order(&self) -> &[usize];
    /// Sink output levels ordered best-first.
    fn sink_order(&self) -> &[usize];
    /// Ids of edges arriving at node `n` (may include infeasible
    /// candidates; filter with [`PlanView::edge_weight`]).
    fn in_edges(&self, n: usize) -> &[u32];
    /// Ids of edges leaving node `n`.
    fn out_edges(&self, n: usize) -> &[u32];
    /// `(from, to)` node indices of edge `e`.
    fn edge_endpoints(&self, e: u32) -> (usize, usize);
    /// Weight Ψ of edge `e`, or `None` when the edge is infeasible under
    /// the current availability. Equivalence edges are always `Some(0.0)`.
    fn edge_weight(&self, e: u32) -> Option<f64>;
    /// `(component, qin, qout)` for translation edges, `None` for
    /// equivalence edges.
    fn edge_pair(&self, e: u32) -> Option<(usize, usize, usize)>;
    /// The *feasible* translation edge of component `c` from input level
    /// `i` to output level `j`, if any.
    fn translation_edge(&self, c: usize, i: usize, j: usize) -> Option<u32>;
    /// The scaled demand of translation edge `e` as a canonical vector.
    fn edge_demand(&self, e: u32) -> ResourceVector;
    /// The bottleneck of translation edge `e` (absent for equivalence
    /// edges and empty demands).
    fn edge_bottleneck(&self, e: u32) -> Option<EdgeBottleneck>;

    /// Node index of sink output level `level`.
    fn sink_node(&self, level: usize) -> usize {
        self.out_node(self.service().graph().sink(), level)
    }
}

/// Adapter running the generic algorithms over a materialized [`Qrg`].
pub(crate) struct QrgView<'q, 'a> {
    qrg: &'q Qrg<'a>,
    sink_order: Vec<usize>,
}

impl<'q, 'a> QrgView<'q, 'a> {
    pub(crate) fn new(qrg: &'q Qrg<'a>) -> Self {
        let sink_order = qrg.session().service().sink_rank_order();
        QrgView { qrg, sink_order }
    }
}

impl PlanView for QrgView<'_, '_> {
    fn service(&self) -> &ServiceSpec {
        self.qrg.session().service()
    }

    fn disable_tie_break(&self) -> bool {
        self.qrg.options().disable_tie_break
    }

    fn n_nodes(&self) -> usize {
        self.qrg.n_nodes()
    }

    fn node_ref(&self, n: usize) -> NodeRef {
        self.qrg.node_ref(n)
    }

    fn source_node(&self) -> usize {
        self.qrg.source_node()
    }

    fn in_node(&self, c: usize, i: usize) -> usize {
        self.qrg.in_node(c, i)
    }

    fn out_node(&self, c: usize, j: usize) -> usize {
        self.qrg.out_node(c, j)
    }

    fn relax_order(&self) -> &[usize] {
        self.qrg.relax_order()
    }

    fn sink_order(&self) -> &[usize] {
        &self.sink_order
    }

    fn in_edges(&self, n: usize) -> &[u32] {
        self.qrg.in_edges(n)
    }

    fn out_edges(&self, n: usize) -> &[u32] {
        self.qrg.out_edges(n)
    }

    fn edge_endpoints(&self, e: u32) -> (usize, usize) {
        let edge = self.qrg.edge(e);
        (edge.from, edge.to)
    }

    fn edge_weight(&self, e: u32) -> Option<f64> {
        // A materialized Qrg only contains feasible edges.
        Some(self.qrg.edge(e).weight)
    }

    fn edge_pair(&self, e: u32) -> Option<(usize, usize, usize)> {
        match self.qrg.edge(e).kind {
            EdgeKind::Translation {
                component,
                qin,
                qout,
                ..
            } => Some((component, qin, qout)),
            EdgeKind::Equivalence => None,
        }
    }

    fn translation_edge(&self, c: usize, i: usize, j: usize) -> Option<u32> {
        self.qrg.translation_edge(c, i, j)
    }

    fn edge_demand(&self, e: u32) -> ResourceVector {
        match &self.qrg.edge(e).kind {
            EdgeKind::Translation { demand, .. } => demand.clone(),
            EdgeKind::Equivalence => ResourceVector::empty(),
        }
    }

    fn edge_bottleneck(&self, e: u32) -> Option<EdgeBottleneck> {
        match &self.qrg.edge(e).kind {
            EdgeKind::Translation { bottleneck, .. } => *bottleneck,
            EdgeKind::Equivalence => None,
        }
    }
}

/// Reusable buffers for one full planning run (Pass I + Pass II +
/// assembly). [`crate::PlanCtx`] holds one and reuses it across calls;
/// the legacy `plan_*` entry points allocate a fresh one per call.
#[derive(Debug, Default)]
pub(crate) struct PlanScratch {
    /// Pass I minimax distances.
    pub dist: Vec<f64>,
    /// Pass I chosen incoming translation edge per `Q^out` node.
    pub pred: Vec<Option<u32>>,
    /// Pass II + assembly buffers.
    pub work: PlanWorkspace,
}

/// Reusable Pass II + assembly buffers for one planning run.
///
/// A [`crate::PlanCtx`] owns one for its exclusive
/// [`crate::PlanCtx::plan`] path. Concurrent callers sharing a single
/// *prepared* context (one relaxation repaired once per batch round —
/// [`crate::PlanCtx::plan_shared`]) each bring their own workspace, so
/// Pass I is computed once while every worker backtracks privately.
#[derive(Debug, Default)]
pub struct PlanWorkspace {
    /// Pass II scratch.
    pub(crate) bt: BtScratch,
    /// Primary backtracked assignments.
    pub(crate) asg: Vec<Assignment>,
    /// Secondary assignment buffer (tradeoff candidate levels).
    pub(crate) asg_alt: Vec<Assignment>,
    /// Backward-reachability marks (random planner).
    pub(crate) reach: Vec<bool>,
    /// Feasible outgoing-edge candidates of one node (random planner).
    pub(crate) candidates: Vec<u32>,
    /// `(from_rank, to_rank)` when the last tradeoff run stepped down
    /// from the best reachable level (§4.3.1); `None` otherwise. Cleared
    /// by every planner, read back through
    /// [`crate::PlanCtx::last_downgrade`] /
    /// [`PlanWorkspace::last_downgrade`].
    pub(crate) downgrade: Option<(u32, u32)>,
}

impl PlanWorkspace {
    /// An empty workspace; buffers grow on first use and are reused.
    pub fn new() -> Self {
        PlanWorkspace::default()
    }

    /// `(from_rank, to_rank)` when the last plan run through this
    /// workspace took an α-tradeoff step down (§4.3.1), `None` otherwise.
    pub fn last_downgrade(&self) -> Option<(u32, u32)> {
        self.downgrade
    }
}
