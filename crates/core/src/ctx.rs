//! The amortized planning hot path.
//!
//! [`crate::Qrg::build`] re-derives the whole graph — node layout,
//! adjacency, demand vectors, relaxation order — on every call, then the
//! planners allocate fresh distance/predecessor/assignment buffers on
//! top. That is fine for one-off planning but wasteful for a broker that
//! plans the same few service specs against a fresh availability snapshot
//! on every `establish`/`replan`.
//!
//! A [`PlanCtx`] splits the work by lifetime:
//!
//! * **Per service spec** (cached, shared): the [`QrgSkeleton`] — see its
//!   module docs.
//! * **Per call** (recomputed in [`PlanCtx::prepare`], zero allocations
//!   in steady state): each candidate edge's scaled canonical demand,
//!   feasibility, weight Ψ, and bottleneck under the given availability
//!   snapshot, stored in flat reusable buffers.
//! * **Per run** (reused): the relax/backtrack/assembly scratch.
//!
//! The planners then run generically over this representation (see
//! `view.rs`) and return plans **byte-identical** to the
//! `Qrg::build`-based entry points — the equivalence is enforced by a
//! property test in the workspace root (`tests/plan_equivalence.rs`).
//!
//! ```
//! use std::sync::Arc;
//! use qosr_model::*;
//! use qosr_core::*;
//! use rand::SeedableRng;
//!
//! let schema = QosSchema::new("q", ["level"]);
//! let lv = |v: u32| QosVector::new(schema.clone(), [v]);
//! let comp = ComponentSpec::new(
//!     "encoder",
//!     vec![lv(0)],
//!     vec![lv(1), lv(2)],
//!     vec![SlotSpec::new("cpu", ResourceKind::Compute)],
//!     Arc::new(TableTranslation::builder(1, 2, 1)
//!         .entry(0, 0, [10.0])
//!         .entry(0, 1, [80.0])
//!         .build()),
//! );
//! let service = Arc::new(ServiceSpec::chain("svc", vec![comp], vec![1, 2]).unwrap());
//! let mut space = ResourceSpace::new();
//! let cpu = space.register("H1.cpu", ResourceKind::Compute);
//! let session = SessionInstance::new(
//!     service, vec![ComponentBinding::new([cpu])], 1.0).unwrap();
//!
//! let mut ctx = PlanCtx::new();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! for avail in [100.0, 50.0, 12.0] {
//!     let mut view = AvailabilityView::new();
//!     view.set(cpu, avail);
//!     // Re-prepares against the new snapshot; the skeleton is reused.
//!     ctx.prepare(&session, &view, &QrgOptions::default());
//!     let plan = ctx.plan(Planner::Basic, &mut rng).unwrap();
//!     assert_eq!(plan.sink_level, usize::from(avail >= 80.0));
//! }
//! ```

use crate::planner::{plan_basic_view, plan_minimax, plan_random_view, plan_tradeoff_view};
use crate::qrg::EdgeBottleneck;
use crate::skeleton::QrgSkeleton;
use crate::view::{PlanScratch, PlanView};
use crate::{AvailabilityView, NodeRef, PlanError, Planner, QrgOptions, ReservationPlan};
use qosr_model::{ResourceId, ResourceVector, ServiceSpec, SessionInstance};
use rand::Rng;
use std::sync::Arc;

/// Reusable planning context: a cached per-service [`QrgSkeleton`] plus
/// flat per-call buffers. Call [`PlanCtx::prepare`] with a session and an
/// availability snapshot, then [`PlanCtx::plan`] (any number of times).
/// After warm-up, neither step allocates.
#[derive(Debug, Default)]
pub struct PlanCtx {
    skeleton: Option<Arc<QrgSkeleton>>,
    options: QrgOptions,
    /// Canonical scaled demand segment of candidate `e`:
    /// `demand_buf[demand_off[e] .. demand_off[e + 1]]`, sorted by
    /// resource id, duplicates summed, zeros dropped — the
    /// [`ResourceVector`] invariants, flattened.
    demand_off: Vec<u32>,
    demand_buf: Vec<(ResourceId, f64)>,
    /// Weight Ψ per candidate; `f64::INFINITY` marks an infeasible
    /// candidate (feasible ψ values are clamped to [`crate::PsiDef::CLAMP`]).
    weight: Vec<f64>,
    bottleneck: Vec<Option<EdgeBottleneck>>,
    scratch: PlanScratch,
    /// Per-candidate staging buffer for demand canonicalization.
    stage: Vec<(ResourceId, f64)>,
}

impl PlanCtx {
    /// Creates an empty context.
    pub fn new() -> Self {
        Self::default()
    }

    /// Prepares the context for planning `session` under the availability
    /// snapshot `view` — the amortized equivalent of [`crate::Qrg::build`].
    /// The session's service skeleton is fetched from the process-wide
    /// memo (computed on first encounter); demands, feasibility, weights
    /// and bottlenecks are recomputed into reusable buffers.
    pub fn prepare(
        &mut self,
        session: &SessionInstance,
        view: &AvailabilityView,
        options: &QrgOptions,
    ) {
        let sk = match &self.skeleton {
            Some(sk) if sk.service().uid() == session.service().uid() => sk.clone(),
            _ => {
                let sk = QrgSkeleton::shared(session.service());
                self.skeleton = Some(sk.clone());
                sk
            }
        };
        self.options = options.clone();

        let scale = session.scale();
        let bindings = session.bindings();
        let n = sk.n_candidates();

        // 1. Bind, scale, and canonicalize each candidate's demand.
        self.demand_off.clear();
        self.demand_off.reserve(n + 1);
        self.demand_off.push(0);
        self.demand_buf.clear();
        for e in 0..n {
            if let Some((c, _, _)) = sk.candidates[e].pair {
                let resources = bindings[c as usize].resources();
                self.stage.clear();
                self.stage.extend(
                    sk.slot_demand(e as u32)
                        .iter()
                        .map(|&(slot, amount)| (resources[slot as usize], amount * scale)),
                );
                self.stage.sort_unstable_by_key(|&(rid, _)| rid);
                // Merge duplicates, drop zeros (ResourceVector::from_pairs
                // semantics).
                let seg_start = self.demand_buf.len();
                for &(rid, amount) in &self.stage {
                    let merge = self.demand_buf.len() > seg_start
                        && self.demand_buf.last().is_some_and(|&(last, _)| last == rid);
                    if merge {
                        self.demand_buf.last_mut().unwrap().1 += amount;
                    } else {
                        self.demand_buf.push((rid, amount));
                    }
                }
                let mut w = seg_start;
                for r in seg_start..self.demand_buf.len() {
                    if self.demand_buf[r].1 > 0.0 {
                        self.demand_buf[w] = self.demand_buf[r];
                        w += 1;
                    }
                }
                self.demand_buf.truncate(w);
            }
            self.demand_off
                .push(u32::try_from(self.demand_buf.len()).expect("QRG too large"));
        }

        // 2. Feasibility, weight, and bottleneck per candidate — exactly
        // the Qrg::build computation, over the flat segments.
        self.weight.clear();
        self.weight.resize(n, 0.0);
        self.bottleneck.clear();
        self.bottleneck.resize(n, None);
        for e in 0..n {
            if sk.candidates[e].pair.is_none() {
                continue; // equivalence: weight 0, always feasible
            }
            let seg =
                &self.demand_buf[self.demand_off[e] as usize..self.demand_off[e + 1] as usize];
            if !seg.iter().all(|&(rid, req)| req <= view.avail(rid)) {
                self.weight[e] = f64::INFINITY;
                // Diagnostic only: remember which resource overshoots the
                // most (raw req/avail ratio, > 1 by construction) so
                // rejections can name their blocking resource. Planners
                // never read bottlenecks of infeasible candidates, so
                // plans are unaffected.
                let mut worst = 0.0f64;
                let mut bottleneck = None;
                for &(rid, req) in seg {
                    let avail = view.avail(rid);
                    let ratio = if avail > 0.0 {
                        (req / avail).min(crate::PsiDef::CLAMP)
                    } else {
                        crate::PsiDef::CLAMP
                    };
                    if bottleneck.is_none() || ratio > worst {
                        worst = ratio;
                        bottleneck = Some(EdgeBottleneck {
                            resource: rid,
                            psi: ratio,
                            alpha: view.alpha(rid),
                        });
                    }
                }
                self.bottleneck[e] = bottleneck;
                continue;
            }
            let mut weight = 0.0f64;
            let mut bottleneck = None;
            for &(rid, req) in seg {
                let psi = options.psi.psi(req, view.avail(rid));
                if bottleneck.is_none() || psi > weight {
                    weight = psi;
                    bottleneck = Some(EdgeBottleneck {
                        resource: rid,
                        psi,
                        alpha: view.alpha(rid),
                    });
                }
            }
            self.weight[e] = weight;
            self.bottleneck[e] = bottleneck;
        }
    }

    /// Runs `planner` against the prepared snapshot. `rng` is only
    /// consulted by [`Planner::Random`]. May be called repeatedly between
    /// `prepare` calls.
    ///
    /// # Panics
    /// Panics if [`PlanCtx::prepare`] has never been called.
    pub fn plan(
        &mut self,
        planner: Planner,
        rng: &mut impl Rng,
    ) -> Result<ReservationPlan, PlanError> {
        let sk = self
            .skeleton
            .as_ref()
            .expect("PlanCtx::plan called before PlanCtx::prepare");
        let view = CtxView {
            sk,
            options: &self.options,
            demand_off: &self.demand_off,
            demand_buf: &self.demand_buf,
            weight: &self.weight,
            bottleneck: &self.bottleneck,
        };
        let scratch = &mut self.scratch;
        match planner {
            Planner::Basic => plan_basic_view(&view, scratch),
            Planner::Tradeoff => plan_tradeoff_view(&view, scratch),
            Planner::Random => plan_random_view(&view, scratch, rng),
            Planner::Dag => plan_minimax(&view, scratch),
        }
    }

    /// One-shot convenience: [`PlanCtx::prepare`] + [`PlanCtx::plan`].
    pub fn plan_session(
        &mut self,
        session: &SessionInstance,
        view: &AvailabilityView,
        options: &QrgOptions,
        planner: Planner,
        rng: &mut impl Rng,
    ) -> Result<ReservationPlan, PlanError> {
        self.prepare(session, view, options);
        self.plan(planner, rng)
    }

    /// Every translation candidate's evaluation under the last
    /// [`PlanCtx::prepare`] snapshot, in construction order. Empty before
    /// the first `prepare`. This is the observability read-out backing
    /// `CandidateEvaluated` trace events.
    pub fn candidates(&self) -> impl Iterator<Item = CandidateEval> + '_ {
        let sk = self.skeleton.as_deref();
        let n = sk.map_or(0, |sk| sk.n_candidates());
        (0..n).filter_map(move |e| self.eval_of(sk?, e))
    }

    /// The evaluation of translation cell `(c, i, j)` under the last
    /// snapshot, if that cell is populated.
    pub fn candidate(&self, c: usize, i: usize, j: usize) -> Option<CandidateEval> {
        let sk = self.skeleton.as_deref()?;
        let e = sk.pair_candidate(c, i, j)?;
        self.eval_of(sk, e as usize)
    }

    fn eval_of(&self, sk: &QrgSkeleton, e: usize) -> Option<CandidateEval> {
        let (c, i, j) = sk.candidates[e].pair?;
        let w = self.weight[e];
        let b = self.bottleneck[e];
        Some(CandidateEval {
            component: c,
            qin: i,
            qout: j,
            feasible: w.is_finite(),
            psi: if w.is_finite() {
                w
            } else {
                b.map_or(f64::INFINITY, |b| b.psi)
            },
            resource: b.map(|b| b.resource),
            alpha: b.map(|b| b.alpha),
        })
    }

    /// `(from_rank, to_rank)` when the last [`PlanCtx::plan`] run took an
    /// α-tradeoff step down (§4.3.1), `None` otherwise.
    pub fn last_downgrade(&self) -> Option<(u32, u32)> {
        self.scratch.downgrade
    }

    /// The infeasible candidate closest to fitting under the last
    /// snapshot: its most-overshooting resource and the `req/avail`
    /// overshoot ratio (> 1). `None` when every candidate fits (or none
    /// carries demand). This names the blocking resource when planning
    /// fails outright.
    pub fn nearest_miss(&self) -> Option<(ResourceId, f64)> {
        let sk = self.skeleton.as_deref()?;
        let mut best: Option<(ResourceId, f64)> = None;
        for e in 0..sk.n_candidates() {
            if self.weight[e].is_finite() {
                continue;
            }
            if let Some(b) = self.bottleneck[e] {
                if best.is_none_or(|(_, ratio)| b.psi < ratio) {
                    best = Some((b.resource, b.psi));
                }
            }
        }
        best
    }
}

/// One translation candidate's evaluation under a prepared availability
/// snapshot — the per-candidate read-out behind `CandidateEvaluated`
/// trace events. See [`PlanCtx::candidates`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CandidateEval {
    /// Component index within the service.
    pub component: u32,
    /// Input QoS level index.
    pub qin: u32,
    /// Output QoS level index.
    pub qout: u32,
    /// Whether the candidate's demand fits current availability.
    pub feasible: bool,
    /// The candidate's weight ψ when feasible; the limiting `req/avail`
    /// overshoot ratio (> 1) when not.
    pub psi: f64,
    /// The candidate's most stressed resource (absent for zero-demand
    /// candidates).
    pub resource: Option<ResourceId>,
    /// The availability-change index α of that resource.
    pub alpha: Option<f64>,
}

/// [`PlanView`] over a prepared [`PlanCtx`]: skeleton structure plus the
/// per-call weight/feasibility buffers. Candidate ids play the role of
/// edge ids; infeasible candidates answer `edge_weight() == None` and are
/// skipped by the algorithms, which preserves the legacy edge-id order
/// among the surviving edges.
struct CtxView<'a> {
    sk: &'a QrgSkeleton,
    options: &'a QrgOptions,
    demand_off: &'a [u32],
    demand_buf: &'a [(ResourceId, f64)],
    weight: &'a [f64],
    bottleneck: &'a [Option<EdgeBottleneck>],
}

impl PlanView for CtxView<'_> {
    fn service(&self) -> &ServiceSpec {
        self.sk.service()
    }

    fn disable_tie_break(&self) -> bool {
        self.options.disable_tie_break
    }

    fn n_nodes(&self) -> usize {
        self.sk.n_nodes()
    }

    fn node_ref(&self, n: usize) -> NodeRef {
        self.sk.node_refs[n]
    }

    fn source_node(&self) -> usize {
        self.sk.source_node
    }

    fn in_node(&self, c: usize, i: usize) -> usize {
        self.sk.in_offset[c] + i
    }

    fn out_node(&self, c: usize, j: usize) -> usize {
        self.sk.out_offset[c] + j
    }

    fn relax_order(&self) -> &[usize] {
        &self.sk.relax_order
    }

    fn sink_order(&self) -> &[usize] {
        &self.sk.sink_order
    }

    fn in_edges(&self, n: usize) -> &[u32] {
        self.sk.in_edges(n)
    }

    fn out_edges(&self, n: usize) -> &[u32] {
        self.sk.out_edges(n)
    }

    fn edge_endpoints(&self, e: u32) -> (usize, usize) {
        let cand = &self.sk.candidates[e as usize];
        (cand.from as usize, cand.to as usize)
    }

    fn edge_weight(&self, e: u32) -> Option<f64> {
        let w = self.weight[e as usize];
        w.is_finite().then_some(w)
    }

    fn edge_pair(&self, e: u32) -> Option<(usize, usize, usize)> {
        self.sk.candidates[e as usize]
            .pair
            .map(|(c, i, j)| (c as usize, i as usize, j as usize))
    }

    fn translation_edge(&self, c: usize, i: usize, j: usize) -> Option<u32> {
        self.sk
            .pair_candidate(c, i, j)
            .filter(|&e| self.weight[e as usize].is_finite())
    }

    fn edge_demand(&self, e: u32) -> ResourceVector {
        let seg = &self.demand_buf
            [self.demand_off[e as usize] as usize..self.demand_off[e as usize + 1] as usize];
        // The segment already satisfies the canonical invariants, so this
        // is a plain copy.
        ResourceVector::from_pairs(seg.iter().copied())
            .expect("prepared demands are validated at session construction")
    }

    fn edge_bottleneck(&self, e: u32) -> Option<EdgeBottleneck> {
        self.bottleneck[e as usize]
    }

    fn sink_node(&self, level: usize) -> usize {
        self.sk.out_offset[self.sk.service().graph().sink()] + level
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::*;
    use crate::{plan_basic, plan_dag, plan_random, plan_tradeoff, Qrg};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ctx_equals_legacy(fx_session: &SessionInstance, view: &AvailabilityView) {
        let options = QrgOptions::default();
        let mut ctx = PlanCtx::new();
        ctx.prepare(fx_session, view, &options);
        let qrg = Qrg::build(fx_session, view, &options);

        let is_chain = fx_session.service().graph().is_chain();
        let planners: &[Planner] = if is_chain {
            &[
                Planner::Basic,
                Planner::Tradeoff,
                Planner::Random,
                Planner::Dag,
            ]
        } else {
            &[Planner::Tradeoff, Planner::Dag]
        };
        for &p in planners {
            // Identical RNG state for both paths: Random must consume the
            // stream identically too.
            let mut rng_a = StdRng::seed_from_u64(42);
            let mut rng_b = StdRng::seed_from_u64(42);
            let legacy = match p {
                Planner::Basic => plan_basic(&qrg),
                Planner::Tradeoff => plan_tradeoff(&qrg),
                Planner::Random => plan_random(&qrg, &mut rng_a),
                Planner::Dag => plan_dag(&qrg),
            };
            let cached = ctx.plan(p, &mut rng_b);
            assert_eq!(legacy, cached, "planner {p:?} diverged");
            assert_eq!(rng_a, rng_b, "planner {p:?} consumed RNG differently");
        }
    }

    #[test]
    fn matches_legacy_on_paper_chain_across_availability() {
        let fx = ChainFixture::paper_like();
        for avail in [3.0, 11.0, 20.0, 40.0, 100.0, 1000.0] {
            let view = AvailabilityView::from_fn(fx.space.ids(), |_| avail);
            ctx_equals_legacy(&fx.session, &view);
        }
    }

    #[test]
    fn matches_legacy_on_dags() {
        for fx in [DagFixture::diamond(), DagFixture::non_convergent()] {
            for avail in [5.0, 9.0, 100.0] {
                let view = AvailabilityView::from_fn(fx.space.ids(), |_| avail);
                ctx_equals_legacy(&fx.session, &view);
            }
        }
    }

    #[test]
    fn matches_legacy_on_tie_break_fixture() {
        let fx = TieBreakFixture::new();
        ctx_equals_legacy(&fx.session, &fx.view());
    }

    #[test]
    fn reprepare_across_sessions_and_scales() {
        // One context serving two different sessions (different specs and
        // scales) must stay correct — buffers are fully rebuilt.
        let fx = ChainFixture::paper_like();
        let fat = ChainFixture::paper_like_scaled(10.0);
        let mut ctx = PlanCtx::new();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..3 {
            for (session, space, expect_level) in
                [(&fx.session, &fx.space, 2), (&fat.session, &fat.space, 0)]
            {
                let view = AvailabilityView::from_fn(space.ids(), |_| 100.0);
                let options = QrgOptions::default();
                let plan = ctx
                    .plan_session(session, &view, &options, Planner::Basic, &mut rng)
                    .unwrap();
                let qrg = Qrg::build(session, &view, &options);
                assert_eq!(plan, plan_basic(&qrg).unwrap());
                assert_eq!(plan.sink_level, expect_level);
            }
        }
    }

    #[test]
    fn plan_can_be_called_repeatedly_after_one_prepare() {
        let fx = ChainFixture::paper_like();
        let view = AvailabilityView::from_fn(fx.space.ids(), |_| 100.0);
        let mut ctx = PlanCtx::new();
        ctx.prepare(&fx.session, &view, &QrgOptions::default());
        let mut rng = StdRng::seed_from_u64(9);
        let a = ctx.plan(Planner::Basic, &mut rng).unwrap();
        let b = ctx.plan(Planner::Basic, &mut rng).unwrap();
        assert_eq!(a, b);
        for _ in 0..10 {
            let r = ctx.plan(Planner::Random, &mut rng).unwrap();
            assert_eq!(r.sink_level, a.sink_level);
        }
    }

    #[test]
    #[should_panic(expected = "before PlanCtx::prepare")]
    fn plan_before_prepare_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = PlanCtx::new().plan(Planner::Basic, &mut rng);
    }
}
