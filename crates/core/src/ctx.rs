//! The amortized planning hot path.
//!
//! [`crate::Qrg::build`] re-derives the whole graph — node layout,
//! adjacency, demand vectors, relaxation order — on every call, then the
//! planners allocate fresh distance/predecessor/assignment buffers on
//! top. That is fine for one-off planning but wasteful for a broker that
//! plans the same few service specs against a fresh availability snapshot
//! on every `establish`/`replan`.
//!
//! A [`PlanCtx`] splits the work by lifetime:
//!
//! * **Per service spec** (cached, shared): the [`QrgSkeleton`] — see its
//!   module docs.
//! * **Per call** (recomputed in [`PlanCtx::prepare`], zero allocations
//!   in steady state): each candidate edge's scaled canonical demand,
//!   feasibility, weight Ψ, and bottleneck under the given availability
//!   snapshot, stored in flat reusable buffers.
//! * **Per run** (reused): the relax/backtrack/assembly scratch.
//!
//! The planners then run generically over this representation (see
//! `view.rs`) and return plans **byte-identical** to the
//! `Qrg::build`-based entry points — the equivalence is enforced by a
//! property test in the workspace root (`tests/plan_equivalence.rs`).
//!
//! ```
//! use std::sync::Arc;
//! use qosr_model::*;
//! use qosr_core::*;
//! use rand::SeedableRng;
//!
//! let schema = QosSchema::new("q", ["level"]);
//! let lv = |v: u32| QosVector::new(schema.clone(), [v]);
//! let comp = ComponentSpec::new(
//!     "encoder",
//!     vec![lv(0)],
//!     vec![lv(1), lv(2)],
//!     vec![SlotSpec::new("cpu", ResourceKind::Compute)],
//!     Arc::new(TableTranslation::builder(1, 2, 1)
//!         .entry(0, 0, [10.0])
//!         .entry(0, 1, [80.0])
//!         .build()),
//! );
//! let service = Arc::new(ServiceSpec::chain("svc", vec![comp], vec![1, 2]).unwrap());
//! let mut space = ResourceSpace::new();
//! let cpu = space.register("H1.cpu", ResourceKind::Compute);
//! let session = SessionInstance::new(
//!     service, vec![ComponentBinding::new([cpu])], 1.0).unwrap();
//!
//! let mut ctx = PlanCtx::new();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! for avail in [100.0, 50.0, 12.0] {
//!     let mut view = AvailabilityView::new();
//!     view.set(cpu, avail);
//!     // Re-prepares against the new snapshot; the skeleton is reused.
//!     ctx.prepare(&session, &view, &QrgOptions::default());
//!     let plan = ctx.plan(Planner::Basic, &mut rng).unwrap();
//!     assert_eq!(plan.sink_level, usize::from(avail >= 80.0));
//! }
//! ```

use crate::delta::{diff_views, DeltaConfig, FullReason, RelaxCache, RepairOutcome, RepairStats};
use crate::planner::{ensure_chain, finish_minimax, finish_random, finish_tradeoff};
use crate::qrg::EdgeBottleneck;
use crate::relax::{relax_into, relax_repair};
use crate::skeleton::QrgSkeleton;
use crate::snapshot::EpochSnapshot;
use crate::view::{PlanScratch, PlanView, PlanWorkspace};
use crate::{AvailabilityView, NodeRef, PlanError, Planner, QrgOptions, ReservationPlan};
use qosr_model::{ResourceId, ResourceVector, ServiceSpec, SessionInstance};
use rand::Rng;
use std::sync::Arc;

/// Reusable planning context: a cached per-service [`QrgSkeleton`] plus
/// flat per-call buffers. Call [`PlanCtx::prepare`] with a session and an
/// availability snapshot, then [`PlanCtx::plan`] (any number of times).
/// After warm-up, neither step allocates.
///
/// For snapshot sequences, [`PlanCtx::prepare_delta`] /
/// [`PlanCtx::prepare_epoch`] are the incremental alternative to
/// [`PlanCtx::prepare`]: they diff the new view against the previous one
/// and *repair* the prepared weights and relaxation in place (see the
/// `delta` module docs), which is what the batched admission pipeline
/// rides in steady state.
#[derive(Debug, Default)]
pub struct PlanCtx {
    skeleton: Option<Arc<QrgSkeleton>>,
    options: QrgOptions,
    /// Canonical scaled demand segment of candidate `e`:
    /// `demand_buf[demand_off[e] .. demand_off[e + 1]]`, sorted by
    /// resource id, duplicates summed, zeros dropped — the
    /// [`ResourceVector`] invariants, flattened.
    demand_off: Vec<u32>,
    demand_buf: Vec<(ResourceId, f64)>,
    /// Weight Ψ per candidate; `f64::INFINITY` marks an infeasible
    /// candidate (feasible ψ values are clamped to [`crate::PsiDef::CLAMP`]).
    weight: Vec<f64>,
    bottleneck: Vec<Option<EdgeBottleneck>>,
    /// Pass-I buffers (`scratch.dist`/`scratch.pred`) and the exclusive
    /// Pass-II workspace. When `relaxed` is set, the Pass-I buffers hold
    /// the relaxation of the current `weight` buffer and planners reuse
    /// it instead of resweeping.
    scratch: PlanScratch,
    relaxed: bool,
    /// Delta-repair state: the effective view the buffers were computed
    /// against, fingerprint, inverted index, and repair scratch.
    cache: RelaxCache,
    /// Per-candidate staging buffer for demand canonicalization.
    stage: Vec<(ResourceId, f64)>,
}

/// One candidate's feasibility, weight, and bottleneck under `view` —
/// the per-candidate computation shared by the full prepare and the
/// delta repair, so both fill the buffers bit-identically.
fn eval_candidate(
    seg: &[(ResourceId, f64)],
    view: &AvailabilityView,
    options: &QrgOptions,
) -> (f64, Option<EdgeBottleneck>) {
    if !seg.iter().all(|&(rid, req)| req <= view.avail(rid)) {
        // Diagnostic only: remember which resource overshoots the most
        // (raw req/avail ratio, > 1 by construction) so rejections can
        // name their blocking resource. Planners never read bottlenecks
        // of infeasible candidates, so plans are unaffected.
        let mut worst = 0.0f64;
        let mut bottleneck = None;
        for &(rid, req) in seg {
            let avail = view.avail(rid);
            let ratio = if avail > 0.0 {
                (req / avail).min(crate::PsiDef::CLAMP)
            } else {
                crate::PsiDef::CLAMP
            };
            if bottleneck.is_none() || ratio > worst {
                worst = ratio;
                bottleneck = Some(EdgeBottleneck {
                    resource: rid,
                    psi: ratio,
                    alpha: view.alpha(rid),
                });
            }
        }
        return (f64::INFINITY, bottleneck);
    }
    let mut weight = 0.0f64;
    let mut bottleneck = None;
    for &(rid, req) in seg {
        let psi = options.psi.psi(req, view.avail(rid));
        if bottleneck.is_none() || psi > weight {
            weight = psi;
            bottleneck = Some(EdgeBottleneck {
                resource: rid,
                psi,
                alpha: view.alpha(rid),
            });
        }
    }
    (weight, bottleneck)
}

impl PlanCtx {
    /// Creates an empty context.
    pub fn new() -> Self {
        Self::default()
    }

    /// Prepares the context for planning `session` under the availability
    /// snapshot `view` — the amortized equivalent of [`crate::Qrg::build`].
    /// The session's service skeleton is fetched from the process-wide
    /// memo (computed on first encounter); demands, feasibility, weights
    /// and bottlenecks are recomputed into reusable buffers.
    ///
    /// This is the *full* path: it always rebuilds every candidate and
    /// defers Pass I to the next [`PlanCtx::plan`] call. Use
    /// [`PlanCtx::prepare_delta`] / [`PlanCtx::prepare_epoch`] to repair
    /// the previous state incrementally instead.
    pub fn prepare(
        &mut self,
        session: &SessionInstance,
        view: &AvailabilityView,
        options: &QrgOptions,
    ) {
        self.cache.invalidate();
        self.relaxed = false;
        self.prepare_full(session, view, options);
    }

    fn prepare_full(
        &mut self,
        session: &SessionInstance,
        view: &AvailabilityView,
        options: &QrgOptions,
    ) {
        let sk = match &self.skeleton {
            Some(sk) if sk.service().uid() == session.service().uid() => sk.clone(),
            _ => {
                let sk = QrgSkeleton::shared(session.service());
                self.skeleton = Some(sk.clone());
                sk
            }
        };
        self.options = options.clone();

        let scale = session.scale();
        let bindings = session.bindings();
        let n = sk.n_candidates();

        // 1. Bind, scale, and canonicalize each candidate's demand.
        self.demand_off.clear();
        self.demand_off.reserve(n + 1);
        self.demand_off.push(0);
        self.demand_buf.clear();
        for e in 0..n {
            if let Some((c, _, _)) = sk.candidates[e].pair {
                let resources = bindings[c as usize].resources();
                self.stage.clear();
                self.stage.extend(
                    sk.slot_demand(e as u32)
                        .iter()
                        .map(|&(slot, amount)| (resources[slot as usize], amount * scale)),
                );
                self.stage.sort_unstable_by_key(|&(rid, _)| rid);
                // Merge duplicates, drop zeros (ResourceVector::from_pairs
                // semantics).
                let seg_start = self.demand_buf.len();
                for &(rid, amount) in &self.stage {
                    let merge = self.demand_buf.len() > seg_start
                        && self.demand_buf.last().is_some_and(|&(last, _)| last == rid);
                    if merge {
                        self.demand_buf.last_mut().unwrap().1 += amount;
                    } else {
                        self.demand_buf.push((rid, amount));
                    }
                }
                let mut w = seg_start;
                for r in seg_start..self.demand_buf.len() {
                    if self.demand_buf[r].1 > 0.0 {
                        self.demand_buf[w] = self.demand_buf[r];
                        w += 1;
                    }
                }
                self.demand_buf.truncate(w);
            }
            self.demand_off
                .push(u32::try_from(self.demand_buf.len()).expect("QRG too large"));
        }

        // 2. Feasibility, weight, and bottleneck per candidate — exactly
        // the Qrg::build computation, over the flat segments.
        self.weight.clear();
        self.weight.resize(n, 0.0);
        self.bottleneck.clear();
        self.bottleneck.resize(n, None);
        for e in 0..n {
            if sk.candidates[e].pair.is_none() {
                continue; // equivalence: weight 0, always feasible
            }
            let seg =
                &self.demand_buf[self.demand_off[e] as usize..self.demand_off[e + 1] as usize];
            let (w, b) = eval_candidate(seg, view, options);
            self.weight[e] = w;
            self.bottleneck[e] = b;
        }
    }

    /// Incremental prepare against an arbitrary availability view (e.g.
    /// the commit phase's debited *working* view): diffs `view` against
    /// the effective view the buffers were last computed against and
    /// repairs only the candidates (and relaxation nodes) downstream of
    /// resources that moved past the quantization threshold. Falls back
    /// to a full [`PlanCtx::prepare`]-equivalent rebuild when the cache
    /// is cold, the session or options changed, or the delta is too
    /// large (see [`DeltaConfig`]).
    ///
    /// With the default zero threshold, the resulting state — weights,
    /// bottlenecks, and Pass-I distances — is **bit-identical** to a
    /// full prepare, so subsequent plans are byte-identical too.
    pub fn prepare_delta(
        &mut self,
        session: &SessionInstance,
        view: &AvailabilityView,
        options: &QrgOptions,
    ) -> RepairOutcome {
        self.prepare_delta_inner(session, view, options, None)
    }

    /// [`PlanCtx::prepare_delta`] for an [`EpochSnapshot`]: additionally
    /// keys on the snapshot's generation token, so re-preparing against
    /// the *same* snapshot (every same-shaped request of a batch round)
    /// is a token-compare no-op with no view diff at all.
    pub fn prepare_epoch(
        &mut self,
        session: &SessionInstance,
        snapshot: &EpochSnapshot,
        options: &QrgOptions,
    ) -> RepairOutcome {
        self.prepare_delta_inner(
            session,
            snapshot.view(),
            options,
            Some(snapshot.generation()),
        )
    }

    fn prepare_delta_inner(
        &mut self,
        session: &SessionInstance,
        view: &AvailabilityView,
        options: &QrgOptions,
        token: Option<u64>,
    ) -> RepairOutcome {
        let full_reason = if !self.cache.valid {
            Some(FullReason::ColdCache)
        } else if !self.cache.matches_session(session) {
            Some(FullReason::SessionChanged)
        } else if self.options != *options {
            Some(FullReason::OptionsChanged)
        } else {
            None
        };
        if let Some(reason) = full_reason {
            self.install_full(session, view, options, token);
            return RepairOutcome::Full(reason);
        }

        // Same snapshot as the buffers were prepared against: nothing
        // can have moved (tokens are process-unique per snapshot).
        if token.is_some() && token == self.cache.token {
            return RepairOutcome::Repaired(RepairStats::default());
        }

        // Diff the incoming view against the cache's *effective* view
        // under the ψ-quantization threshold.
        diff_views(
            &self.cache.view,
            view,
            self.cache.config.psi_threshold,
            &mut self.cache.pending,
        );
        self.cache.token = token;
        if self.cache.pending.is_empty() {
            return RepairOutcome::Repaired(RepairStats::default());
        }

        let sk = self
            .skeleton
            .clone()
            .expect("a valid RelaxCache implies a prepared skeleton");
        let n_cands = sk.n_candidates();

        // Seed: every candidate demanding a changed resource, deduped
        // into a compact worklist so the re-evaluation below touches
        // only dirty candidates instead of scanning the flag array.
        self.cache.cand_seen.clear();
        self.cache.cand_seen.resize(n_cands, false);
        self.cache.dirty_cands.clear();
        for i in 0..self.cache.pending.len() {
            let rid = self.cache.pending[i].0;
            if let Ok(p) = self.cache.idx_rids.binary_search(&rid) {
                let lo = self.cache.idx_start[p] as usize;
                let hi = self.cache.idx_start[p + 1] as usize;
                for k in lo..hi {
                    let e = self.cache.idx_cands[k];
                    if !self.cache.cand_seen[e as usize] {
                        self.cache.cand_seen[e as usize] = true;
                        self.cache.dirty_cands.push(e);
                    }
                }
            }
        }
        let dirty = self.cache.dirty_cands.len();
        if dirty as f64 > self.cache.config.max_dirty_fraction * n_cands as f64 {
            self.install_full(session, view, options, token);
            return RepairOutcome::Full(FullReason::DeltaTooLarge);
        }

        // Apply the delta to the effective view, then re-evaluate the
        // dirty candidates against it — the same per-candidate function
        // the full prepare runs, so repaired buffers match it bitwise.
        let resources_changed = self.cache.pending.len();
        for i in 0..resources_changed {
            let (rid, avail, alpha) = self.cache.pending[i];
            self.cache.view.set_with_alpha(rid, avail, alpha);
        }
        self.cache.dirty_nodes.clear();
        self.cache.dirty_nodes.resize(sk.n_nodes(), false);
        for k in 0..dirty {
            let e = self.cache.dirty_cands[k] as usize;
            let seg =
                &self.demand_buf[self.demand_off[e] as usize..self.demand_off[e + 1] as usize];
            let (w, b) = eval_candidate(seg, &self.cache.view, &self.options);
            // Only an actual weight move can shift the relaxation;
            // bottleneck-only changes (e.g. α drift) don't propagate.
            if w.to_bits() != self.weight[e].to_bits() {
                self.cache.dirty_nodes[sk.candidates[e].to as usize] = true;
            }
            self.weight[e] = w;
            self.bottleneck[e] = b;
        }
        let reevaluated = dirty;

        // Repair Pass I downstream of the re-weighted nodes.
        let nodes_recomputed = if self.relaxed {
            let view = CtxView {
                sk: &sk,
                options: &self.options,
                demand_off: &self.demand_off,
                demand_buf: &self.demand_buf,
                weight: &self.weight,
                bottleneck: &self.bottleneck,
            };
            relax_repair(
                &view,
                &mut self.scratch.dist,
                &mut self.scratch.pred,
                &self.cache.dirty_nodes,
                &mut self.cache.moved_nodes,
            )
        } else {
            // A valid cache is always installed with an eager
            // relaxation; stay correct if that invariant ever bends.
            self.relax_now();
            sk.n_nodes()
        };

        RepairOutcome::Repaired(RepairStats {
            resources_changed,
            candidates_reevaluated: reevaluated,
            nodes_recomputed,
        })
    }

    /// Full rebuild + eager relaxation + cache (re)install — the
    /// fallback body of the delta path.
    fn install_full(
        &mut self,
        session: &SessionInstance,
        view: &AvailabilityView,
        options: &QrgOptions,
        token: Option<u64>,
    ) {
        self.prepare_full(session, view, options);
        self.relax_now();
        self.cache.install(session, view, token);
        RelaxCache::rebuild_index(&mut self.cache, &self.demand_off, &self.demand_buf);
    }

    /// Runs Pass I over the current buffers into the context's own
    /// relax buffers and marks them valid.
    fn relax_now(&mut self) {
        let sk = self
            .skeleton
            .clone()
            .expect("relax_now called before prepare");
        let view = CtxView {
            sk: &sk,
            options: &self.options,
            demand_off: &self.demand_off,
            demand_buf: &self.demand_buf,
            weight: &self.weight,
            bottleneck: &self.bottleneck,
        };
        relax_into(&view, &mut self.scratch.dist, &mut self.scratch.pred);
        self.relaxed = true;
    }

    /// Runs `planner` against the prepared snapshot. `rng` is only
    /// consulted by [`Planner::Random`]. May be called repeatedly between
    /// `prepare` calls; Pass I runs at most once per prepared state (the
    /// delta path usually has it repaired already).
    ///
    /// # Panics
    /// Panics if [`PlanCtx::prepare`] has never been called.
    pub fn plan(
        &mut self,
        planner: Planner,
        rng: &mut impl Rng,
    ) -> Result<ReservationPlan, PlanError> {
        let sk = self
            .skeleton
            .as_ref()
            .expect("PlanCtx::plan called before PlanCtx::prepare");
        let view = CtxView {
            sk,
            options: &self.options,
            demand_off: &self.demand_off,
            demand_buf: &self.demand_buf,
            weight: &self.weight,
            bottleneck: &self.bottleneck,
        };
        // Same order as the legacy planners: the chain check precedes
        // any Pass-I work.
        if matches!(planner, Planner::Basic | Planner::Random) {
            ensure_chain(&view)?;
        }
        if !self.relaxed {
            relax_into(&view, &mut self.scratch.dist, &mut self.scratch.pred);
            self.relaxed = true;
        }
        let work = &mut self.scratch.work;
        match planner {
            Planner::Basic | Planner::Dag => {
                finish_minimax(&view, &self.scratch.dist, &self.scratch.pred, work)
            }
            Planner::Tradeoff => {
                finish_tradeoff(&view, &self.scratch.dist, &self.scratch.pred, work)
            }
            Planner::Random => finish_random(&view, &self.scratch.dist, work, rng),
        }
    }

    /// Like [`PlanCtx::plan`], but read-only over the context: the
    /// shared, already-relaxed state is consumed while Pass II and
    /// assembly run in the caller's private `work` buffer. This is what
    /// lets every worker of a batch round plan concurrently against
    /// **one** repaired relaxation. The tradeoff downgrade (if any) is
    /// reported via [`PlanWorkspace::last_downgrade`] on `work`.
    ///
    /// # Panics
    /// Panics unless the context was prepared through
    /// [`PlanCtx::prepare_delta`] / [`PlanCtx::prepare_epoch`] (which
    /// relax eagerly) or has planned at least once since `prepare`.
    pub fn plan_shared(
        &self,
        planner: Planner,
        rng: &mut impl Rng,
        work: &mut PlanWorkspace,
    ) -> Result<ReservationPlan, PlanError> {
        let sk = self
            .skeleton
            .as_ref()
            .expect("PlanCtx::plan_shared called before PlanCtx::prepare");
        assert!(
            self.relaxed,
            "PlanCtx::plan_shared needs an eager relaxation — prepare with \
             prepare_delta/prepare_epoch first"
        );
        let view = CtxView {
            sk,
            options: &self.options,
            demand_off: &self.demand_off,
            demand_buf: &self.demand_buf,
            weight: &self.weight,
            bottleneck: &self.bottleneck,
        };
        if matches!(planner, Planner::Basic | Planner::Random) {
            ensure_chain(&view)?;
        }
        match planner {
            Planner::Basic | Planner::Dag => {
                finish_minimax(&view, &self.scratch.dist, &self.scratch.pred, work)
            }
            Planner::Tradeoff => {
                finish_tradeoff(&view, &self.scratch.dist, &self.scratch.pred, work)
            }
            Planner::Random => finish_random(&view, &self.scratch.dist, work, rng),
        }
    }

    /// One-shot convenience: [`PlanCtx::prepare`] + [`PlanCtx::plan`].
    pub fn plan_session(
        &mut self,
        session: &SessionInstance,
        view: &AvailabilityView,
        options: &QrgOptions,
        planner: Planner,
        rng: &mut impl Rng,
    ) -> Result<ReservationPlan, PlanError> {
        self.prepare(session, view, options);
        self.plan(planner, rng)
    }

    /// Every translation candidate's evaluation under the last
    /// [`PlanCtx::prepare`] snapshot, in construction order. Empty before
    /// the first `prepare`. This is the observability read-out backing
    /// `CandidateEvaluated` trace events.
    pub fn candidates(&self) -> impl Iterator<Item = CandidateEval> + '_ {
        let sk = self.skeleton.as_deref();
        let n = sk.map_or(0, |sk| sk.n_candidates());
        (0..n).filter_map(move |e| self.eval_of(sk?, e))
    }

    /// The evaluation of translation cell `(c, i, j)` under the last
    /// snapshot, if that cell is populated.
    pub fn candidate(&self, c: usize, i: usize, j: usize) -> Option<CandidateEval> {
        let sk = self.skeleton.as_deref()?;
        let e = sk.pair_candidate(c, i, j)?;
        self.eval_of(sk, e as usize)
    }

    fn eval_of(&self, sk: &QrgSkeleton, e: usize) -> Option<CandidateEval> {
        let (c, i, j) = sk.candidates[e].pair?;
        let w = self.weight[e];
        let b = self.bottleneck[e];
        Some(CandidateEval {
            component: c,
            qin: i,
            qout: j,
            feasible: w.is_finite(),
            psi: if w.is_finite() {
                w
            } else {
                b.map_or(f64::INFINITY, |b| b.psi)
            },
            resource: b.map(|b| b.resource),
            alpha: b.map(|b| b.alpha),
        })
    }

    /// `(from_rank, to_rank)` when the last [`PlanCtx::plan`] run took an
    /// α-tradeoff step down (§4.3.1), `None` otherwise. Plans run
    /// through [`PlanCtx::plan_shared`] report on their own workspace
    /// instead.
    pub fn last_downgrade(&self) -> Option<(u32, u32)> {
        self.scratch.work.downgrade
    }

    /// The current Pass-I result `(dist, pred)`, when one is held (after
    /// a delta-path prepare or the first [`PlanCtx::plan`]). Exposed for
    /// the repaired-≡-full equivalence tests.
    pub fn relaxation(&self) -> Option<(&[f64], &[Option<u32>])> {
        self.relaxed
            .then(|| (&self.scratch.dist[..], &self.scratch.pred[..]))
    }

    /// The *effective* availability view the prepared buffers were
    /// computed against, when the delta cache is live. With a zero
    /// ψ-threshold this equals the last prepared view; with a positive
    /// threshold it lags by at most the quantized-away moves.
    pub fn effective_view(&self) -> Option<&AvailabilityView> {
        self.cache.valid.then_some(&self.cache.view)
    }

    /// Sets the delta-repair tuning knobs (threshold, fallback
    /// fraction). Takes effect from the next delta-path prepare.
    pub fn set_delta_config(&mut self, config: DeltaConfig) {
        self.cache.config = config;
    }

    /// The current delta-repair tuning knobs.
    pub fn delta_config(&self) -> DeltaConfig {
        self.cache.config
    }

    /// The infeasible candidate closest to fitting under the last
    /// snapshot: its most-overshooting resource and the `req/avail`
    /// overshoot ratio (> 1). `None` when every candidate fits (or none
    /// carries demand). This names the blocking resource when planning
    /// fails outright.
    pub fn nearest_miss(&self) -> Option<(ResourceId, f64)> {
        let sk = self.skeleton.as_deref()?;
        let mut best: Option<(ResourceId, f64)> = None;
        for e in 0..sk.n_candidates() {
            if self.weight[e].is_finite() {
                continue;
            }
            if let Some(b) = self.bottleneck[e] {
                if best.is_none_or(|(_, ratio)| b.psi < ratio) {
                    best = Some((b.resource, b.psi));
                }
            }
        }
        best
    }
}

/// One translation candidate's evaluation under a prepared availability
/// snapshot — the per-candidate read-out behind `CandidateEvaluated`
/// trace events. See [`PlanCtx::candidates`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CandidateEval {
    /// Component index within the service.
    pub component: u32,
    /// Input QoS level index.
    pub qin: u32,
    /// Output QoS level index.
    pub qout: u32,
    /// Whether the candidate's demand fits current availability.
    pub feasible: bool,
    /// The candidate's weight ψ when feasible; the limiting `req/avail`
    /// overshoot ratio (> 1) when not.
    pub psi: f64,
    /// The candidate's most stressed resource (absent for zero-demand
    /// candidates).
    pub resource: Option<ResourceId>,
    /// The availability-change index α of that resource.
    pub alpha: Option<f64>,
}

/// [`PlanView`] over a prepared [`PlanCtx`]: skeleton structure plus the
/// per-call weight/feasibility buffers. Candidate ids play the role of
/// edge ids; infeasible candidates answer `edge_weight() == None` and are
/// skipped by the algorithms, which preserves the legacy edge-id order
/// among the surviving edges.
struct CtxView<'a> {
    sk: &'a QrgSkeleton,
    options: &'a QrgOptions,
    demand_off: &'a [u32],
    demand_buf: &'a [(ResourceId, f64)],
    weight: &'a [f64],
    bottleneck: &'a [Option<EdgeBottleneck>],
}

impl PlanView for CtxView<'_> {
    fn service(&self) -> &ServiceSpec {
        self.sk.service()
    }

    fn disable_tie_break(&self) -> bool {
        self.options.disable_tie_break
    }

    fn n_nodes(&self) -> usize {
        self.sk.n_nodes()
    }

    fn node_ref(&self, n: usize) -> NodeRef {
        self.sk.node_refs[n]
    }

    fn source_node(&self) -> usize {
        self.sk.source_node
    }

    fn in_node(&self, c: usize, i: usize) -> usize {
        self.sk.in_offset[c] + i
    }

    fn out_node(&self, c: usize, j: usize) -> usize {
        self.sk.out_offset[c] + j
    }

    fn relax_order(&self) -> &[usize] {
        &self.sk.relax_order
    }

    fn sink_order(&self) -> &[usize] {
        &self.sk.sink_order
    }

    fn in_edges(&self, n: usize) -> &[u32] {
        self.sk.in_edges(n)
    }

    fn out_edges(&self, n: usize) -> &[u32] {
        self.sk.out_edges(n)
    }

    fn edge_endpoints(&self, e: u32) -> (usize, usize) {
        let cand = &self.sk.candidates[e as usize];
        (cand.from as usize, cand.to as usize)
    }

    fn edge_weight(&self, e: u32) -> Option<f64> {
        let w = self.weight[e as usize];
        w.is_finite().then_some(w)
    }

    fn edge_pair(&self, e: u32) -> Option<(usize, usize, usize)> {
        self.sk.candidates[e as usize]
            .pair
            .map(|(c, i, j)| (c as usize, i as usize, j as usize))
    }

    fn translation_edge(&self, c: usize, i: usize, j: usize) -> Option<u32> {
        self.sk
            .pair_candidate(c, i, j)
            .filter(|&e| self.weight[e as usize].is_finite())
    }

    fn edge_demand(&self, e: u32) -> ResourceVector {
        let seg = &self.demand_buf
            [self.demand_off[e as usize] as usize..self.demand_off[e as usize + 1] as usize];
        // The segment already satisfies the canonical invariants, so this
        // is a plain copy.
        ResourceVector::from_pairs(seg.iter().copied())
            .expect("prepared demands are validated at session construction")
    }

    fn edge_bottleneck(&self, e: u32) -> Option<EdgeBottleneck> {
        self.bottleneck[e as usize]
    }

    fn sink_node(&self, level: usize) -> usize {
        self.sk.out_offset[self.sk.service().graph().sink()] + level
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::*;
    use crate::{plan_basic, plan_dag, plan_random, plan_tradeoff, Qrg};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ctx_equals_legacy(fx_session: &SessionInstance, view: &AvailabilityView) {
        let options = QrgOptions::default();
        let mut ctx = PlanCtx::new();
        ctx.prepare(fx_session, view, &options);
        let qrg = Qrg::build(fx_session, view, &options);

        let is_chain = fx_session.service().graph().is_chain();
        let planners: &[Planner] = if is_chain {
            &[
                Planner::Basic,
                Planner::Tradeoff,
                Planner::Random,
                Planner::Dag,
            ]
        } else {
            &[Planner::Tradeoff, Planner::Dag]
        };
        for &p in planners {
            // Identical RNG state for both paths: Random must consume the
            // stream identically too.
            let mut rng_a = StdRng::seed_from_u64(42);
            let mut rng_b = StdRng::seed_from_u64(42);
            let legacy = match p {
                Planner::Basic => plan_basic(&qrg),
                Planner::Tradeoff => plan_tradeoff(&qrg),
                Planner::Random => plan_random(&qrg, &mut rng_a),
                Planner::Dag => plan_dag(&qrg),
            };
            let cached = ctx.plan(p, &mut rng_b);
            assert_eq!(legacy, cached, "planner {p:?} diverged");
            assert_eq!(rng_a, rng_b, "planner {p:?} consumed RNG differently");
        }
    }

    #[test]
    fn matches_legacy_on_paper_chain_across_availability() {
        let fx = ChainFixture::paper_like();
        for avail in [3.0, 11.0, 20.0, 40.0, 100.0, 1000.0] {
            let view = AvailabilityView::from_fn(fx.space.ids(), |_| avail);
            ctx_equals_legacy(&fx.session, &view);
        }
    }

    #[test]
    fn matches_legacy_on_dags() {
        for fx in [DagFixture::diamond(), DagFixture::non_convergent()] {
            for avail in [5.0, 9.0, 100.0] {
                let view = AvailabilityView::from_fn(fx.space.ids(), |_| avail);
                ctx_equals_legacy(&fx.session, &view);
            }
        }
    }

    #[test]
    fn matches_legacy_on_tie_break_fixture() {
        let fx = TieBreakFixture::new();
        ctx_equals_legacy(&fx.session, &fx.view());
    }

    #[test]
    fn reprepare_across_sessions_and_scales() {
        // One context serving two different sessions (different specs and
        // scales) must stay correct — buffers are fully rebuilt.
        let fx = ChainFixture::paper_like();
        let fat = ChainFixture::paper_like_scaled(10.0);
        let mut ctx = PlanCtx::new();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..3 {
            for (session, space, expect_level) in
                [(&fx.session, &fx.space, 2), (&fat.session, &fat.space, 0)]
            {
                let view = AvailabilityView::from_fn(space.ids(), |_| 100.0);
                let options = QrgOptions::default();
                let plan = ctx
                    .plan_session(session, &view, &options, Planner::Basic, &mut rng)
                    .unwrap();
                let qrg = Qrg::build(session, &view, &options);
                assert_eq!(plan, plan_basic(&qrg).unwrap());
                assert_eq!(plan.sink_level, expect_level);
            }
        }
    }

    #[test]
    fn plan_can_be_called_repeatedly_after_one_prepare() {
        let fx = ChainFixture::paper_like();
        let view = AvailabilityView::from_fn(fx.space.ids(), |_| 100.0);
        let mut ctx = PlanCtx::new();
        ctx.prepare(&fx.session, &view, &QrgOptions::default());
        let mut rng = StdRng::seed_from_u64(9);
        let a = ctx.plan(Planner::Basic, &mut rng).unwrap();
        let b = ctx.plan(Planner::Basic, &mut rng).unwrap();
        assert_eq!(a, b);
        for _ in 0..10 {
            let r = ctx.plan(Planner::Random, &mut rng).unwrap();
            assert_eq!(r.sink_level, a.sink_level);
        }
    }

    #[test]
    #[should_panic(expected = "before PlanCtx::prepare")]
    fn plan_before_prepare_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = PlanCtx::new().plan(Planner::Basic, &mut rng);
    }

    /// Asserts `ctx`'s prepared buffers and relaxation are bit-identical
    /// to a freshly fully-prepared context over the same view.
    fn assert_state_matches_full(
        ctx: &mut PlanCtx,
        session: &SessionInstance,
        view: &AvailabilityView,
    ) {
        let options = QrgOptions::default();
        let mut full = PlanCtx::new();
        full.prepare(session, view, &options);
        full.relax_now();
        ctx_relaxed(ctx);
        assert_eq!(
            ctx.weight.iter().map(|w| w.to_bits()).collect::<Vec<_>>(),
            full.weight.iter().map(|w| w.to_bits()).collect::<Vec<_>>(),
            "weights diverged from full prepare"
        );
        assert_eq!(ctx.bottleneck, full.bottleneck, "bottlenecks diverged");
        let (dist_a, pred_a) = ctx.relaxation().expect("delta path relaxes eagerly");
        let (dist_b, pred_b) = full.relaxation().unwrap();
        assert_eq!(
            dist_a.iter().map(|d| d.to_bits()).collect::<Vec<_>>(),
            dist_b.iter().map(|d| d.to_bits()).collect::<Vec<_>>(),
            "relaxation distances diverged"
        );
        assert_eq!(pred_a, pred_b, "relaxation predecessors diverged");
    }

    fn ctx_relaxed(ctx: &mut PlanCtx) {
        if !ctx.relaxed {
            ctx.relax_now();
        }
    }

    #[test]
    fn delta_repair_is_bit_identical_to_full_prepare() {
        let fx = ChainFixture::paper_like();
        let options = QrgOptions::default();
        let mut ctx = PlanCtx::new();

        let mut view = AvailabilityView::from_fn(fx.space.ids(), |_| 100.0);
        let cold = ctx.prepare_delta(&fx.session, &view, &options);
        assert_eq!(cold, RepairOutcome::Full(FullReason::ColdCache));
        assert_state_matches_full(&mut ctx, &fx.session, &view);

        // Nudge one resource: must repair, not rebuild, and still match.
        view.set(fx.space.id("bw12").unwrap(), 60.0);
        let outcome = ctx.prepare_delta(&fx.session, &view, &options);
        let stats = outcome.stats().expect("warm cache repairs");
        assert_eq!(stats.resources_changed, 1);
        assert!(stats.candidates_reevaluated >= 1);
        assert_state_matches_full(&mut ctx, &fx.session, &view);

        // Identical view again: pure reuse.
        let outcome = ctx.prepare_delta(&fx.session, &view, &options);
        assert_eq!(outcome, RepairOutcome::Repaired(RepairStats::default()));
        assert_state_matches_full(&mut ctx, &fx.session, &view);
    }

    #[test]
    fn delta_plans_match_full_plans_across_a_snapshot_sequence() {
        let fx = ChainFixture::paper_like();
        let options = QrgOptions::default();
        let mut delta_ctx = PlanCtx::new();
        let mut full_ctx = PlanCtx::new();
        let mut rng_a = StdRng::seed_from_u64(17);
        let mut rng_b = StdRng::seed_from_u64(17);
        for avail in [100.0, 99.0, 40.0, 11.0, 3.0, 1000.0] {
            let view = AvailabilityView::from_fn(fx.space.ids(), |_| avail);
            delta_ctx.prepare_delta(&fx.session, &view, &options);
            for planner in [
                Planner::Basic,
                Planner::Tradeoff,
                Planner::Random,
                Planner::Dag,
            ] {
                let a = delta_ctx.plan(planner, &mut rng_a);
                let b = full_ctx.plan_session(&fx.session, &view, &options, planner, &mut rng_b);
                assert_eq!(a, b, "avail {avail}, planner {planner:?}");
                assert_eq!(rng_a, rng_b);
            }
        }
    }

    #[test]
    fn epoch_token_short_circuits_and_generation_guards_reuse() {
        let fx = ChainFixture::paper_like();
        let options = QrgOptions::default();
        let mut ctx = PlanCtx::new();
        let view = AvailabilityView::from_fn(fx.space.ids(), |_| 100.0);
        let snap = EpochSnapshot::new(3, 0.0, view.clone());
        assert!(ctx.prepare_epoch(&fx.session, &snap, &options).is_full());
        // Same snapshot: token fast path, zero work.
        assert_eq!(
            ctx.prepare_epoch(&fx.session, &snap, &options),
            RepairOutcome::Repaired(RepairStats::default())
        );
        // A *different* snapshot with the same epoch number and a
        // changed view must not be mistaken for the cached one.
        let mut view2 = view.clone();
        view2.set(fx.space.id("bw12").unwrap(), 20.0);
        let snap2 = EpochSnapshot::new(3, 0.0, view2.clone());
        let outcome = ctx.prepare_epoch(&fx.session, &snap2, &options);
        let stats = outcome.stats().expect("repairs, not reuses");
        assert_eq!(stats.resources_changed, 1);
        assert_state_matches_full(&mut ctx, &fx.session, &view2);
    }

    #[test]
    fn session_and_options_changes_fall_back_to_full() {
        let fx = ChainFixture::paper_like();
        let fat = ChainFixture::paper_like_scaled(10.0);
        let options = QrgOptions::default();
        let mut ctx = PlanCtx::new();
        let view = AvailabilityView::from_fn(fx.space.ids(), |_| 100.0);
        ctx.prepare_delta(&fx.session, &view, &options);
        assert_eq!(
            ctx.prepare_delta(&fat.session, &view, &options),
            RepairOutcome::Full(FullReason::SessionChanged)
        );
        let other = QrgOptions {
            disable_tie_break: true,
            ..QrgOptions::default()
        };
        assert_eq!(
            ctx.prepare_delta(&fat.session, &view, &other),
            RepairOutcome::Full(FullReason::OptionsChanged)
        );
        assert_state_matches_full_with(&mut ctx, &fat.session, &view, &other);
    }

    /// Like `assert_state_matches_full` but under explicit options.
    fn assert_state_matches_full_with(
        ctx: &mut PlanCtx,
        session: &SessionInstance,
        view: &AvailabilityView,
        options: &QrgOptions,
    ) {
        let mut full = PlanCtx::new();
        full.prepare(session, view, options);
        full.relax_now();
        ctx_relaxed(ctx);
        assert_eq!(
            ctx.weight.iter().map(|w| w.to_bits()).collect::<Vec<_>>(),
            full.weight.iter().map(|w| w.to_bits()).collect::<Vec<_>>(),
        );
        let (dist_a, pred_a) = ctx.relaxation().unwrap();
        let (dist_b, pred_b) = full.relaxation().unwrap();
        assert_eq!(
            dist_a.iter().map(|d| d.to_bits()).collect::<Vec<_>>(),
            dist_b.iter().map(|d| d.to_bits()).collect::<Vec<_>>(),
        );
        assert_eq!(pred_a, pred_b);
    }

    #[test]
    fn oversized_delta_falls_back_to_full_rebuild() {
        let fx = ChainFixture::paper_like();
        let options = QrgOptions::default();
        let mut ctx = PlanCtx::new();
        ctx.set_delta_config(DeltaConfig {
            psi_threshold: 0.0,
            max_dirty_fraction: 0.0, // any dirty candidate is "too many"
        });
        let mut view = AvailabilityView::from_fn(fx.space.ids(), |_| 100.0);
        ctx.prepare_delta(&fx.session, &view, &options);
        view.set(fx.space.id("cpu0").unwrap(), 50.0);
        assert_eq!(
            ctx.prepare_delta(&fx.session, &view, &options),
            RepairOutcome::Full(FullReason::DeltaTooLarge)
        );
        assert_state_matches_full(&mut ctx, &fx.session, &view);
    }

    #[test]
    fn quantized_threshold_keeps_subthreshold_moves_invisible() {
        let fx = ChainFixture::paper_like();
        let options = QrgOptions::default();
        let mut ctx = PlanCtx::new();
        ctx.set_delta_config(DeltaConfig {
            psi_threshold: 0.1,
            max_dirty_fraction: 1.0,
        });
        let base = AvailabilityView::from_fn(fx.space.ids(), |_| 100.0);
        ctx.prepare_delta(&fx.session, &base, &options);

        // A move landing exactly on the threshold is quantized away...
        let mut nudged = base.clone();
        nudged.set(fx.space.id("cpu0").unwrap(), 110.0);
        let outcome = ctx.prepare_delta(&fx.session, &nudged, &options);
        assert_eq!(outcome, RepairOutcome::Repaired(RepairStats::default()));
        // ...so the effective view still carries the old value.
        let eff = ctx.effective_view().unwrap();
        assert_eq!(eff.avail(fx.space.id("cpu0").unwrap()), 100.0);

        // Crossing it applies the *new* value exactly.
        let mut crossed = base.clone();
        crossed.set(fx.space.id("cpu0").unwrap(), 111.0);
        let outcome = ctx.prepare_delta(&fx.session, &crossed, &options);
        assert_eq!(outcome.stats().unwrap().resources_changed, 1);
        let eff = ctx.effective_view().unwrap();
        assert_eq!(eff.avail(fx.space.id("cpu0").unwrap()), 111.0);
        // And the buffers match a full prepare over the effective view.
        assert_state_matches_full(&mut ctx, &fx.session, &crossed);
    }

    #[test]
    fn plan_shared_matches_exclusive_plans() {
        let fx = ChainFixture::paper_like();
        let options = QrgOptions::default();
        let view = AvailabilityView::from_fn(fx.space.ids(), |_| 100.0);
        let mut ctx = PlanCtx::new();
        ctx.prepare_delta(&fx.session, &view, &options);
        let mut work = PlanWorkspace::new();
        for planner in [
            Planner::Basic,
            Planner::Tradeoff,
            Planner::Random,
            Planner::Dag,
        ] {
            let mut rng_a = StdRng::seed_from_u64(23);
            let mut rng_b = StdRng::seed_from_u64(23);
            let shared = ctx.plan_shared(planner, &mut rng_a, &mut work);
            let mut fresh = PlanCtx::new();
            let exclusive = fresh.plan_session(&fx.session, &view, &options, planner, &mut rng_b);
            assert_eq!(shared, exclusive, "planner {planner:?}");
            assert_eq!(rng_a, rng_b);
        }
    }

    #[test]
    #[should_panic(expected = "plan_shared needs an eager relaxation")]
    fn plan_shared_requires_delta_prepare() {
        let fx = ChainFixture::paper_like();
        let view = AvailabilityView::from_fn(fx.space.ids(), |_| 100.0);
        let mut ctx = PlanCtx::new();
        ctx.prepare(&fx.session, &view, &QrgOptions::default());
        let mut rng = StdRng::seed_from_u64(0);
        let _ = ctx.plan_shared(Planner::Basic, &mut rng, &mut PlanWorkspace::new());
    }
}
