//! Pass II: backtracking the relaxation to assemble the reservation plan
//! (§4.1.2 for chains; §4.3.2 Pass II, including local fan-out
//! non-convergence resolution, for DAGs).
//!
//! Starting from the chosen sink node, components are visited in reverse
//! topological order. Each component's output level is dictated by the
//! input levels its successors selected; when the successors of a
//! *fan-out* component disagree (the paper's non-convergence case,
//! fig. 8), the conflict is resolved **locally**: the successors' already
//! backtracked `Q^out` levels stay fixed, and the fan-out component's
//! `Q^out` is re-selected as the level that reaches all of them with the
//! lowest maximum edge contention Ψ. The input level of each component
//! then follows the Pass-I predecessor edge of its (possibly re-selected)
//! output node.

use crate::{EdgeKind, PlanError, Qrg, Relaxation};

/// One component's selected levels and the QRG translation edge realizing
/// them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Assignment {
    pub component: usize,
    pub qin: usize,
    pub qout: usize,
    pub edge: u32,
}

/// Backtracks from sink output level `target_level`, producing one
/// assignment per component (in component-index order).
///
/// Fails with [`PlanError::BacktrackFailed`] when the fan-out resolution
/// cannot find a converging output level — the documented limitation (1)
/// of the DAG heuristic. Never fails on chain graphs whose target sink is
/// reachable.
pub(crate) fn backtrack(
    qrg: &Qrg,
    relax: &Relaxation,
    target_level: usize,
) -> Result<Vec<Assignment>, PlanError> {
    let service = qrg.session().service().clone();
    let graph = service.graph();
    let k = service.components().len();
    let sink = graph.sink();

    let mut chosen_in: Vec<Option<usize>> = vec![None; k];
    let mut chosen_out: Vec<Option<usize>> = vec![None; k];

    let fail = || PlanError::BacktrackFailed {
        sink_level: target_level,
    };

    for &c in graph.topo_order().iter().rev() {
        // 1. Determine c's output level from its successors (or the
        //    target, for the sink component).
        let out_level = if c == sink {
            target_level
        } else {
            let succs = graph.succs(c);
            let wanted: Vec<usize> = succs
                .iter()
                .map(|&s| {
                    let i = chosen_in[s].expect("successor processed before predecessor");
                    let pos = graph.preds(s).iter().position(|&p| p == c).unwrap();
                    service.link(s, i)[pos]
                })
                .collect();
            if wanted.windows(2).all(|w| w[0] == w[1]) {
                wanted[0]
            } else {
                resolve_fan_out(qrg, relax, c, &chosen_out, &mut chosen_in).ok_or_else(fail)?
            }
        };

        let out_node = qrg.out_node(c, out_level);
        if !relax.reachable(out_node) {
            return Err(fail());
        }
        // 2. Follow the Pass-I predecessor edge to fix c's input level.
        let edge_id = relax.pred[out_node].ok_or_else(fail)?;
        let EdgeKind::Translation { qin, .. } = qrg.edge(edge_id).kind else {
            unreachable!("Q^out predecessors are always translation edges");
        };
        chosen_out[c] = Some(out_level);
        chosen_in[c] = Some(qin);
    }

    // Re-derive each component's plan edge: fan-out resolution may have
    // replaced a successor's input level after its pass was done.
    let mut assignments = Vec::with_capacity(k);
    for c in 0..k {
        let (qin, qout) = (chosen_in[c].unwrap(), chosen_out[c].unwrap());
        let edge = qrg.translation_edge(c, qin, qout).ok_or_else(fail)?;
        assignments.push(Assignment {
            component: c,
            qin,
            qout,
            edge,
        });
    }
    Ok(assignments)
}

/// Resolves fan-out non-convergence at component `c` (§4.3.2): fixes the
/// successors' backtracked output levels and picks the output level of
/// `c` that reaches all of them feasibly with minimal max edge Ψ. On
/// success, rewrites the successors' chosen input levels and returns the
/// selected output level of `c`.
fn resolve_fan_out(
    qrg: &Qrg,
    relax: &Relaxation,
    c: usize,
    chosen_out: &[Option<usize>],
    chosen_in: &mut [Option<usize>],
) -> Option<usize> {
    let service = qrg.session().service().clone();
    let graph = service.graph();
    let succs = graph.succs(c);
    let n_out = service.component(c).output_levels().len();

    // Best candidate so far, plus the successor input-level rewrites it
    // implies.
    type Candidate = (f64, f64, usize, Vec<(usize, usize)>); // (cost, dist, o, picks)
    let mut best: Option<Candidate> = None;

    for o in 0..n_out {
        let out_node = qrg.out_node(c, o);
        if !relax.reachable(out_node) {
            continue;
        }
        let mut cost = 0.0f64;
        let mut picks: Vec<(usize, usize)> = Vec::with_capacity(succs.len());
        let mut feasible = true;
        for &s in succs {
            let fixed_out = chosen_out[s].expect("successor processed before predecessor");
            let pos_c = graph.preds(s).iter().position(|&p| p == c).unwrap();
            // The best feasible input level of s that is fed by o, agrees
            // with every already-decided predecessor of s, and has a
            // feasible translation edge to s's fixed output.
            let mut best_i: Option<(f64, usize)> = None;
            for i in 0..service.component(s).input_levels().len() {
                let link = service.link(s, i);
                if link[pos_c] != o {
                    continue;
                }
                let conflicts = graph
                    .preds(s)
                    .iter()
                    .enumerate()
                    .any(|(kk, &p)| p != c && chosen_out[p].is_some_and(|po| link[kk] != po));
                if conflicts || !relax.reachable(qrg.in_node(s, i)) {
                    continue;
                }
                let Some(e) = qrg.translation_edge(s, i, fixed_out) else {
                    continue;
                };
                let w = qrg.edge(e).weight;
                if best_i.is_none_or(|(bw, _)| w < bw) {
                    best_i = Some((w, i));
                }
            }
            match best_i {
                Some((w, i)) => {
                    cost = cost.max(w);
                    picks.push((s, i));
                }
                None => {
                    feasible = false;
                    break;
                }
            }
        }
        if !feasible {
            continue;
        }
        let d = relax.dist[out_node];
        let better = match best.as_ref() {
            None => true,
            Some(&(bc, bd, bo, ref _picks)) => {
                cost < bc || (cost == bc && (d < bd || (d == bd && o < bo)))
            }
        };
        if better {
            best = Some((cost, d, o, picks));
        }
    }

    let (_, _, o, picks) = best?;
    for (s, i) in picks {
        chosen_in[s] = Some(i);
    }
    Some(o)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relax::relax;
    use crate::test_fixtures::*;

    #[test]
    fn chain_backtrack_follows_predecessors() {
        let fx = ChainFixture::paper_like();
        let qrg = fx.qrg_with_avail(100.0);
        let r = relax(&qrg);
        // Target the top level p (index 2); expected plan (see fixture
        // docs): c_S -> c (qout 1), c_P c->h (qin 1, qout 3), c_C h->p.
        let asg = backtrack(&qrg, &r, 2).unwrap();
        assert_eq!(asg.len(), 3);
        assert_eq!((asg[0].qin, asg[0].qout), (0, 1));
        assert_eq!((asg[1].qin, asg[1].qout), (1, 3));
        assert_eq!((asg[2].qin, asg[2].qout), (3, 2));
    }

    #[test]
    fn dag_fan_out_resolution() {
        let fx = DagFixture::diamond();
        let qrg = fx.qrg_with_avail(100.0);
        let r = relax(&qrg);
        let asg = backtrack(&qrg, &r, 1).unwrap();
        // Non-convergence at the source is resolved to output level 1
        // (grade 2), forcing a to take input 1 even though its Pass-I
        // predecessor was input 0.
        assert_eq!((asg[0].qin, asg[0].qout), (0, 1));
        assert_eq!((asg[1].qin, asg[1].qout), (1, 1));
        assert_eq!((asg[2].qin, asg[2].qout), (1, 1));
        assert_eq!((asg[3].qin, asg[3].qout), (1, 1));
    }

    #[test]
    fn backtrack_fails_when_no_convergence_possible() {
        let fx = DagFixture::non_convergent();
        let qrg = fx.qrg_with_avail(100.0);
        let r = relax(&qrg);
        // Pass I reaches the top sink, but no single source output level
        // can feed both branches' fixed outputs.
        assert!(r.reachable(qrg.sink_node(1)));
        assert_eq!(
            backtrack(&qrg, &r, 1),
            Err(PlanError::BacktrackFailed { sink_level: 1 })
        );
    }
}
