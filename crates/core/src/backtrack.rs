//! Pass II: backtracking the relaxation to assemble the reservation plan
//! (§4.1.2 for chains; §4.3.2 Pass II, including local fan-out
//! non-convergence resolution, for DAGs).
//!
//! Starting from the chosen sink node, components are visited in reverse
//! topological order. Each component's output level is dictated by the
//! input levels its successors selected; when the successors of a
//! *fan-out* component disagree (the paper's non-convergence case,
//! fig. 8), the conflict is resolved **locally**: the successors' already
//! backtracked `Q^out` levels stay fixed, and the fan-out component's
//! `Q^out` is re-selected as the level that reaches all of them with the
//! lowest maximum edge contention Ψ. The input level of each component
//! then follows the Pass-I predecessor edge of its (possibly re-selected)
//! output node.

use crate::view::PlanView;
#[cfg(test)]
use crate::view::QrgView;
use crate::PlanError;
#[cfg(test)]
use crate::{Qrg, Relaxation};

/// One component's selected levels and the QRG translation edge realizing
/// them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Assignment {
    pub component: usize,
    pub qin: usize,
    pub qout: usize,
    pub edge: u32,
}

/// Reusable Pass-II working memory (per-component level selections and
/// fan-out resolution candidates).
#[derive(Debug, Default)]
pub(crate) struct BtScratch {
    chosen_in: Vec<Option<usize>>,
    chosen_out: Vec<Option<usize>>,
    picks: Vec<(usize, usize)>,
    best_picks: Vec<(usize, usize)>,
}

/// Backtracks from sink output level `target_level`, producing one
/// assignment per component (in component-index order).
///
/// Fails with [`PlanError::BacktrackFailed`] when the fan-out resolution
/// cannot find a converging output level — the documented limitation (1)
/// of the DAG heuristic. Never fails on chain graphs whose target sink is
/// reachable.
#[cfg(test)]
pub(crate) fn backtrack(
    qrg: &Qrg,
    relax: &Relaxation,
    target_level: usize,
) -> Result<Vec<Assignment>, PlanError> {
    let mut out = Vec::new();
    backtrack_into(
        &QrgView::new(qrg),
        &relax.dist,
        &relax.pred,
        target_level,
        &mut BtScratch::default(),
        &mut out,
    )?;
    Ok(out)
}

/// Pass II over any [`PlanView`]: backtracks from sink output level
/// `target_level` into `out` (cleared here; one assignment per component,
/// in component-index order) using the Pass-I results `dist`/`pred`.
///
/// See [`backtrack`] for semantics and failure modes.
pub(crate) fn backtrack_into<V: PlanView>(
    view: &V,
    dist: &[f64],
    pred: &[Option<u32>],
    target_level: usize,
    scratch: &mut BtScratch,
    out: &mut Vec<Assignment>,
) -> Result<(), PlanError> {
    let service = view.service();
    let graph = service.graph();
    let k = service.components().len();
    let sink = graph.sink();

    scratch.chosen_in.clear();
    scratch.chosen_in.resize(k, None);
    scratch.chosen_out.clear();
    scratch.chosen_out.resize(k, None);

    let fail = || PlanError::BacktrackFailed {
        sink_level: target_level,
    };

    for &c in graph.topo_order().iter().rev() {
        // 1. Determine c's output level from its successors (or the
        //    target, for the sink component).
        let out_level = if c == sink {
            target_level
        } else {
            let succs = graph.succs(c);
            let wanted_of = |chosen_in: &[Option<usize>], s: usize| {
                let i = chosen_in[s].expect("successor processed before predecessor");
                let pos = graph.preds(s).iter().position(|&p| p == c).unwrap();
                service.link(s, i)[pos]
            };
            let first = wanted_of(&scratch.chosen_in, succs[0]);
            if succs[1..]
                .iter()
                .all(|&s| wanted_of(&scratch.chosen_in, s) == first)
            {
                first
            } else {
                resolve_fan_out(view, dist, c, scratch).ok_or_else(fail)?
            }
        };

        let out_node = view.out_node(c, out_level);
        if !dist[out_node].is_finite() {
            return Err(fail());
        }
        // 2. Follow the Pass-I predecessor edge to fix c's input level.
        let edge_id = pred[out_node].ok_or_else(fail)?;
        let Some((_, qin, _)) = view.edge_pair(edge_id) else {
            unreachable!("Q^out predecessors are always translation edges");
        };
        scratch.chosen_out[c] = Some(out_level);
        scratch.chosen_in[c] = Some(qin);
    }

    // Re-derive each component's plan edge: fan-out resolution may have
    // replaced a successor's input level after its pass was done.
    out.clear();
    out.reserve(k);
    for c in 0..k {
        let (qin, qout) = (
            scratch.chosen_in[c].unwrap(),
            scratch.chosen_out[c].unwrap(),
        );
        let edge = view.translation_edge(c, qin, qout).ok_or_else(fail)?;
        out.push(Assignment {
            component: c,
            qin,
            qout,
            edge,
        });
    }
    Ok(())
}

/// Resolves fan-out non-convergence at component `c` (§4.3.2): fixes the
/// successors' backtracked output levels and picks the output level of
/// `c` that reaches all of them feasibly with minimal max edge Ψ. On
/// success, rewrites the successors' chosen input levels and returns the
/// selected output level of `c`.
fn resolve_fan_out<V: PlanView>(
    view: &V,
    dist: &[f64],
    c: usize,
    scratch: &mut BtScratch,
) -> Option<usize> {
    let service = view.service();
    let graph = service.graph();
    let succs = graph.succs(c);
    let n_out = service.component(c).output_levels().len();

    // Best candidate so far: (cost, dist, o); the successor input-level
    // rewrites it implies live in `scratch.best_picks`.
    let mut best: Option<(f64, f64, usize)> = None;
    scratch.best_picks.clear();

    for o in 0..n_out {
        let out_node = view.out_node(c, o);
        if !dist[out_node].is_finite() {
            continue;
        }
        let mut cost = 0.0f64;
        scratch.picks.clear();
        let mut feasible = true;
        for &s in succs {
            let fixed_out = scratch.chosen_out[s].expect("successor processed before predecessor");
            let pos_c = graph.preds(s).iter().position(|&p| p == c).unwrap();
            // The best feasible input level of s that is fed by o, agrees
            // with every already-decided predecessor of s, and has a
            // feasible translation edge to s's fixed output.
            let mut best_i: Option<(f64, usize)> = None;
            for i in 0..service.component(s).input_levels().len() {
                let link = service.link(s, i);
                if link[pos_c] != o {
                    continue;
                }
                let conflicts = graph.preds(s).iter().enumerate().any(|(kk, &p)| {
                    p != c && scratch.chosen_out[p].is_some_and(|po| link[kk] != po)
                });
                if conflicts || !dist[view.in_node(s, i)].is_finite() {
                    continue;
                }
                let Some(e) = view.translation_edge(s, i, fixed_out) else {
                    continue;
                };
                let w = view.edge_weight(e).expect("translation_edge is feasible");
                if best_i.is_none_or(|(bw, _)| w < bw) {
                    best_i = Some((w, i));
                }
            }
            match best_i {
                Some((w, i)) => {
                    cost = cost.max(w);
                    scratch.picks.push((s, i));
                }
                None => {
                    feasible = false;
                    break;
                }
            }
        }
        if !feasible {
            continue;
        }
        let d = dist[out_node];
        let better = match best {
            None => true,
            Some((bc, bd, bo)) => cost < bc || (cost == bc && (d < bd || (d == bd && o < bo))),
        };
        if better {
            best = Some((cost, d, o));
            std::mem::swap(&mut scratch.picks, &mut scratch.best_picks);
        }
    }

    let (_, _, o) = best?;
    for &(s, i) in &scratch.best_picks {
        scratch.chosen_in[s] = Some(i);
    }
    Some(o)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relax::relax;
    use crate::test_fixtures::*;

    #[test]
    fn chain_backtrack_follows_predecessors() {
        let fx = ChainFixture::paper_like();
        let qrg = fx.qrg_with_avail(100.0);
        let r = relax(&qrg);
        // Target the top level p (index 2); expected plan (see fixture
        // docs): c_S -> c (qout 1), c_P c->h (qin 1, qout 3), c_C h->p.
        let asg = backtrack(&qrg, &r, 2).unwrap();
        assert_eq!(asg.len(), 3);
        assert_eq!((asg[0].qin, asg[0].qout), (0, 1));
        assert_eq!((asg[1].qin, asg[1].qout), (1, 3));
        assert_eq!((asg[2].qin, asg[2].qout), (3, 2));
    }

    #[test]
    fn dag_fan_out_resolution() {
        let fx = DagFixture::diamond();
        let qrg = fx.qrg_with_avail(100.0);
        let r = relax(&qrg);
        let asg = backtrack(&qrg, &r, 1).unwrap();
        // Non-convergence at the source is resolved to output level 1
        // (grade 2), forcing a to take input 1 even though its Pass-I
        // predecessor was input 0.
        assert_eq!((asg[0].qin, asg[0].qout), (0, 1));
        assert_eq!((asg[1].qin, asg[1].qout), (1, 1));
        assert_eq!((asg[2].qin, asg[2].qout), (1, 1));
        assert_eq!((asg[3].qin, asg[3].qout), (1, 1));
    }

    #[test]
    fn backtrack_fails_when_no_convergence_possible() {
        let fx = DagFixture::non_convergent();
        let qrg = fx.qrg_with_avail(100.0);
        let r = relax(&qrg);
        // Pass I reaches the top sink, but no single source output level
        // can feed both branches' fixed outputs.
        assert!(r.reachable(qrg.sink_node(1)));
        assert_eq!(
            backtrack(&qrg, &r, 1),
            Err(PlanError::BacktrackFailed { sink_level: 1 })
        );
    }
}
