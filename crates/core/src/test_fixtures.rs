//! Shared fixtures for the core crate's unit tests.
//!
//! `ChainFixture::paper_like` mirrors the structure of the paper's
//! figure 10(a): a 3-component chain `c_S → c_P → c_C` over four
//! resources (server CPU, proxy CPU, server→proxy bandwidth,
//! proxy→client bandwidth) with three end-to-end levels `r < q < p`.
//!
//! With every resource at availability 100 the minimax distances are:
//!
//! * `dist(p) = 0.24` via `c_S→c`, `c→h`, `h→p` (client bandwidth 24);
//! * `dist(q) = 0.18` via `c_S→d`, `d→j`, `j→q`;
//! * `dist(r) = 0.10` via `c_S→d`, `d→k`, `k→r`.

use crate::{AvailabilityView, Qrg, QrgOptions};
use qosr_model::*;
use std::sync::Arc;

/// Chain fixture: session + resource space.
pub struct ChainFixture {
    pub session: SessionInstance,
    pub space: ResourceSpace,
}

impl ChainFixture {
    /// 3-component chain modelled after figure 10(a); scale 1.
    pub fn paper_like() -> Self {
        Self::paper_like_scaled(1.0)
    }

    /// Same service with a demand scale factor (a "fat" session).
    pub fn paper_like_scaled(scale: f64) -> Self {
        let mut space = ResourceSpace::new();
        let cpu0 = space.register("cpu0", ResourceKind::Compute);
        let cpu1 = space.register("cpu1", ResourceKind::Compute);
        let bw01 = space.register("bw01", ResourceKind::NetworkPath);
        let bw12 = space.register("bw12", ResourceKind::NetworkPath);

        let src_schema = QosSchema::new("src", ["quality"]);
        let grade_s = QosSchema::new("gs", ["grade"]);
        let grade_p = QosSchema::new("gp", ["grade"]);
        let e2e = QosSchema::new("e2e", ["level"]);
        let v = |s: &Arc<QosSchema>, x: u32| QosVector::new(s.clone(), [x]);

        // c_S: one input (the source data), outputs d(1) < c(2) < b(3).
        let c_s = ComponentSpec::new(
            "c_S",
            vec![v(&src_schema, 9)],
            vec![v(&grade_s, 1), v(&grade_s, 2), v(&grade_s, 3)],
            vec![SlotSpec::new("cpu", ResourceKind::Compute)],
            Arc::new(
                TableTranslation::builder(1, 3, 1)
                    .entry(0, 0, [4.0])
                    .entry(0, 1, [12.0])
                    .entry(0, 2, [24.0])
                    .build(),
            ),
        );

        // c_P: inputs = c_S outputs; outputs k(1) < j(2) < i(3) < h(4).
        // CPU cost rises when upscaling from a lower-grade input;
        // bandwidth cost is set by the input grade (the incoming stream).
        let c_p = ComponentSpec::new(
            "c_P",
            vec![v(&grade_s, 1), v(&grade_s, 2), v(&grade_s, 3)],
            vec![
                v(&grade_p, 1),
                v(&grade_p, 2),
                v(&grade_p, 3),
                v(&grade_p, 4),
            ],
            vec![
                SlotSpec::new("cpu", ResourceKind::Compute),
                SlotSpec::new("bw_in", ResourceKind::NetworkPath),
            ],
            Arc::new(
                TableTranslation::builder(3, 4, 2)
                    .entry(0, 0, [8.0, 8.0])
                    .entry(0, 1, [14.0, 8.0])
                    .entry(1, 0, [6.0, 16.0])
                    .entry(1, 1, [8.0, 16.0])
                    .entry(1, 2, [12.0, 16.0])
                    .entry(1, 3, [20.0, 16.0])
                    .entry(2, 2, [8.0, 24.0])
                    .entry(2, 3, [12.0, 24.0])
                    .build(),
            ),
        );

        // c_C: inputs = c_P outputs; end-to-end levels r(1) < q(2) < p(3).
        let c_c = ComponentSpec::new(
            "c_C",
            vec![
                v(&grade_p, 1),
                v(&grade_p, 2),
                v(&grade_p, 3),
                v(&grade_p, 4),
            ],
            vec![v(&e2e, 1), v(&e2e, 2), v(&e2e, 3)],
            vec![SlotSpec::new("bw_out", ResourceKind::NetworkPath)],
            Arc::new(
                TableTranslation::builder(4, 3, 1)
                    .entry(0, 0, [10.0])
                    .entry(0, 1, [22.0])
                    .entry(1, 1, [18.0])
                    .entry(1, 2, [32.0])
                    .entry(2, 1, [20.0])
                    .entry(2, 2, [28.0])
                    .entry(3, 2, [24.0])
                    .build(),
            ),
        );

        let service =
            Arc::new(ServiceSpec::chain("figure10a", vec![c_s, c_p, c_c], vec![1, 2, 3]).unwrap());
        let session = SessionInstance::new(
            service,
            vec![
                ComponentBinding::new([cpu0]),
                ComponentBinding::new([cpu1, bw01]),
                ComponentBinding::new([bw12]),
            ],
            scale,
        )
        .unwrap();
        ChainFixture { session, space }
    }

    /// A QRG with uniform availability on every resource, α = 1.
    pub fn qrg_with_avail(&self, avail: f64) -> Qrg<'_> {
        let view = AvailabilityView::from_fn(self.space.ids(), |_| avail);
        Qrg::build(&self.session, &view, &QrgOptions::default())
    }
}

/// Minimal two-component fixture engineered to exercise the paper's
/// tie-breaking rule: both inputs of component 1 arrive with value 0.3,
/// and its single output is reachable through edges of weight 0.2 (from
/// input 0) and 0.1 (from input 1).
pub struct TieBreakFixture {
    pub session: SessionInstance,
    pub space: ResourceSpace,
}

impl TieBreakFixture {
    pub fn new() -> Self {
        let mut space = ResourceSpace::new();
        let r0 = space.register("r0", ResourceKind::Compute);
        let r1 = space.register("r1", ResourceKind::Compute);

        let src = QosSchema::new("src", ["q"]);
        let mid = QosSchema::new("mid", ["q"]);
        let out = QosSchema::new("out", ["q"]);
        let v = |s: &Arc<QosSchema>, x: u32| QosVector::new(s.clone(), [x]);

        let c0 = ComponentSpec::new(
            "c0",
            vec![v(&src, 0)],
            vec![v(&mid, 1), v(&mid, 2)],
            vec![SlotSpec::new("r", ResourceKind::Compute)],
            Arc::new(
                TableTranslation::builder(1, 2, 1)
                    .entry(0, 0, [30.0])
                    .entry(0, 1, [30.0])
                    .build(),
            ),
        );
        let c1 = ComponentSpec::new(
            "c1",
            vec![v(&mid, 1), v(&mid, 2)],
            vec![v(&out, 1)],
            vec![SlotSpec::new("r", ResourceKind::Compute)],
            Arc::new(
                TableTranslation::builder(2, 1, 1)
                    .entry(0, 0, [20.0])
                    .entry(1, 0, [10.0])
                    .build(),
            ),
        );
        let service = Arc::new(ServiceSpec::chain("tie", vec![c0, c1], vec![0]).unwrap());
        let session = SessionInstance::new(
            service,
            vec![ComponentBinding::new([r0]), ComponentBinding::new([r1])],
            1.0,
        )
        .unwrap();
        TieBreakFixture { session, space }
    }

    pub fn view(&self) -> AvailabilityView {
        AvailabilityView::from_fn(self.space.ids(), |_| 100.0)
    }

    pub fn qrg(&self) -> Qrg<'_> {
        Qrg::build(&self.session, &self.view(), &QrgOptions::default())
    }
}

/// DAG fixtures (diamond: src fans out to a and b, which fan in at
/// merge).
pub struct DagFixture {
    pub session: SessionInstance,
    pub space: ResourceSpace,
}

impl DagFixture {
    /// Diamond whose Pass-II backtracking hits fan-out non-convergence
    /// and resolves it to source grade 2 (see backtrack tests).
    ///
    /// With all availabilities at 100: `dist(a out2) = 0.05` (via the
    /// cheap upscale edge from grade 1), `dist(b out2) = 0.10`, merge
    /// input (2,2) = 0.10, top sink = 0.10.
    pub fn diamond() -> Self {
        let mut space = ResourceSpace::new();
        let cpu_s = space.register("cpu_s", ResourceKind::Compute);
        let cpu_a = space.register("cpu_a", ResourceKind::Compute);
        let cpu_b = space.register("cpu_b", ResourceKind::Compute);
        let cpu_m = space.register("cpu_m", ResourceKind::Compute);

        let src = QosSchema::new("src", ["q"]);
        let g = QosSchema::new("g", ["grade"]);
        let ga = QosSchema::new("ga", ["grade"]);
        let gb = QosSchema::new("gb", ["grade"]);
        let gm = QosSchema::new("gm", ["grade"]);
        let v = |s: &Arc<QosSchema>, x: u32| QosVector::new(s.clone(), [x]);

        let c_src = ComponentSpec::new(
            "src",
            vec![v(&src, 0)],
            vec![v(&g, 1), v(&g, 2)],
            vec![SlotSpec::new("cpu", ResourceKind::Compute)],
            Arc::new(
                TableTranslation::builder(1, 2, 1)
                    .entry(0, 0, [5.0])
                    .entry(0, 1, [10.0])
                    .build(),
            ),
        );
        let c_a = ComponentSpec::new(
            "a",
            vec![v(&g, 1), v(&g, 2)],
            vec![v(&ga, 1), v(&ga, 2)],
            vec![SlotSpec::new("cpu", ResourceKind::Compute)],
            Arc::new(
                TableTranslation::builder(2, 2, 1)
                    .entry(0, 0, [4.0])
                    .entry(0, 1, [1.0]) // cheap upscale: tempts Pass I
                    .entry(1, 0, [3.0])
                    .entry(1, 1, [6.0])
                    .build(),
            ),
        );
        let c_b = ComponentSpec::new(
            "b",
            vec![v(&g, 1), v(&g, 2)],
            vec![v(&gb, 1), v(&gb, 2)],
            vec![SlotSpec::new("cpu", ResourceKind::Compute)],
            Arc::new(
                TableTranslation::builder(2, 2, 1)
                    .entry(0, 0, [5.0])
                    .entry(1, 1, [8.0])
                    .build(),
            ),
        );
        let c_m = ComponentSpec::new(
            "merge",
            vec![
                QosVector::concat([&v(&ga, 1), &v(&gb, 1)]),
                QosVector::concat([&v(&ga, 2), &v(&gb, 2)]),
            ],
            vec![v(&gm, 1), v(&gm, 2)],
            vec![SlotSpec::new("cpu", ResourceKind::Compute)],
            Arc::new(
                TableTranslation::builder(2, 2, 1)
                    .entry(0, 0, [7.0])
                    .entry(1, 0, [2.0])
                    .entry(1, 1, [9.0])
                    .build(),
            ),
        );
        let graph = DependencyGraph::new(4, vec![(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let service = Arc::new(
            ServiceSpec::new("diamond", vec![c_src, c_a, c_b, c_m], graph, vec![1, 2]).unwrap(),
        );
        let session = SessionInstance::new(
            service,
            vec![
                ComponentBinding::new([cpu_s]),
                ComponentBinding::new([cpu_a]),
                ComponentBinding::new([cpu_b]),
                ComponentBinding::new([cpu_m]),
            ],
            1.0,
        )
        .unwrap();
        DagFixture { session, space }
    }

    /// Diamond where Pass I reaches the top sink but no single source
    /// output level can feed both branches — Pass II must fail
    /// (limitation (1) of the heuristic).
    pub fn non_convergent() -> Self {
        let mut space = ResourceSpace::new();
        let cpu_s = space.register("cpu_s", ResourceKind::Compute);
        let cpu_a = space.register("cpu_a", ResourceKind::Compute);
        let cpu_b = space.register("cpu_b", ResourceKind::Compute);
        let cpu_m = space.register("cpu_m", ResourceKind::Compute);

        let src = QosSchema::new("src", ["q"]);
        let g = QosSchema::new("g", ["grade"]);
        let ga = QosSchema::new("ga", ["grade"]);
        let gb = QosSchema::new("gb", ["grade"]);
        let gm = QosSchema::new("gm", ["grade"]);
        let v = |s: &Arc<QosSchema>, x: u32| QosVector::new(s.clone(), [x]);

        let c_src = ComponentSpec::new(
            "src",
            vec![v(&src, 0)],
            vec![v(&g, 1), v(&g, 2)],
            vec![SlotSpec::new("cpu", ResourceKind::Compute)],
            Arc::new(
                TableTranslation::builder(1, 2, 1)
                    .entry(0, 0, [5.0])
                    .entry(0, 1, [10.0])
                    .build(),
            ),
        );
        // a only works from grade 1; b only from grade 2.
        let c_a = ComponentSpec::new(
            "a",
            vec![v(&g, 1), v(&g, 2)],
            vec![v(&ga, 1)],
            vec![SlotSpec::new("cpu", ResourceKind::Compute)],
            Arc::new(
                TableTranslation::builder(2, 1, 1)
                    .entry(0, 0, [4.0])
                    .build(),
            ),
        );
        let c_b = ComponentSpec::new(
            "b",
            vec![v(&g, 1), v(&g, 2)],
            vec![v(&gb, 1)],
            vec![SlotSpec::new("cpu", ResourceKind::Compute)],
            Arc::new(
                TableTranslation::builder(2, 1, 1)
                    .entry(1, 0, [5.0])
                    .build(),
            ),
        );
        let c_m = ComponentSpec::new(
            "merge",
            vec![QosVector::concat([&v(&ga, 1), &v(&gb, 1)])],
            vec![v(&gm, 1), v(&gm, 2)],
            vec![SlotSpec::new("cpu", ResourceKind::Compute)],
            Arc::new(
                TableTranslation::builder(1, 2, 1)
                    .entry(0, 0, [7.0])
                    .entry(0, 1, [9.0])
                    .build(),
            ),
        );
        let graph = DependencyGraph::new(4, vec![(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let service = Arc::new(
            ServiceSpec::new("nonconv", vec![c_src, c_a, c_b, c_m], graph, vec![1, 2]).unwrap(),
        );
        let session = SessionInstance::new(
            service,
            vec![
                ComponentBinding::new([cpu_s]),
                ComponentBinding::new([cpu_a]),
                ComponentBinding::new([cpu_b]),
                ComponentBinding::new([cpu_m]),
            ],
            1.0,
        )
        .unwrap();
        DagFixture { session, space }
    }

    /// A QRG with uniform availability on every resource, α = 1.
    pub fn qrg_with_avail(&self, avail: f64) -> Qrg<'_> {
        let view = AvailabilityView::from_fn(self.space.ids(), |_| avail);
        Qrg::build(&self.session, &view, &QrgOptions::default())
    }
}
