//! The QoS-Resource Graph (§4.1.1).
//!
//! For one service session, the QRG is a snapshot of the end-to-end
//! resource requirement and availability, plus the achievable `Q^in` /
//! `Q^out` levels of every component:
//!
//! * **Nodes** — one per `Q^in` and per `Q^out` level of each component.
//!   The single input level of the source component is the QRG *source
//!   node* (the original quality of the source data); the sink
//!   component's output levels are the *sink nodes* (the achievable
//!   end-to-end QoS levels).
//! * **Translation edges** `In(c, i) → Out(c, j)` — exist iff the scaled
//!   demand `R^req = scale · T_c(i, j)` fits within current availability;
//!   weight `Ψ = max_i ψ_i` with ψ from [`PsiDef`] (eqs. 2–3).
//! * **Equivalence edges** `Out(u, j) → In(v, i)` (weight 0) — the output
//!   of `u` feeds the input of `v` along a dependency edge. A fan-in
//!   component's input level has one such edge *per predecessor* and is
//!   only usable when **all** of them are (Pass I of §4.3.2 takes the
//!   max over them).

use crate::{AvailabilityView, PsiDef};
use qosr_model::{ResourceId, ResourceVector, SessionInstance};

/// Options controlling QRG construction and plan selection.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QrgOptions {
    /// Per-resource contention-index definition (default: the paper's
    /// `req/avail`).
    pub psi: PsiDef,
    /// Disable the paper's tie-breaking rule (choose-min-incoming-weight
    /// among equal minimax values) — for ablation only. `false` = rule
    /// active (the default, as in the paper).
    pub disable_tie_break: bool,
}

/// Identifies a QRG node: an input or output QoS level of one component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeRef {
    /// `Q^in` level `level` of component `component`.
    In {
        /// Component index.
        component: usize,
        /// Input level index.
        level: usize,
    },
    /// `Q^out` level `level` of component `component`.
    Out {
        /// Component index.
        component: usize,
        /// Output level index.
        level: usize,
    },
}

/// The bottleneck of a translation edge: the resource attaining the
/// maximum per-resource contention index, with its ψ and availability
/// trend α.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeBottleneck {
    /// The bottleneck resource.
    pub resource: ResourceId,
    /// Its contention index ψ (eq. 2).
    pub psi: f64,
    /// Its availability-change index α (eq. 5) at snapshot time.
    pub alpha: f64,
}

/// What an edge represents.
#[derive(Debug, Clone, PartialEq)]
pub enum EdgeKind {
    /// A feasible `(Q^in, Q^out)` pair of one component, carrying its
    /// scaled resource demand.
    Translation {
        /// Component index.
        component: usize,
        /// Input level index.
        qin: usize,
        /// Output level index.
        qout: usize,
        /// The scaled demand `R^req`.
        demand: ResourceVector,
        /// The highest-ψ resource of the demand (absent iff the demand is
        /// empty).
        bottleneck: Option<EdgeBottleneck>,
    },
    /// Equivalence of an upstream `Q^out` and a downstream `Q^in`
    /// (weight 0).
    Equivalence,
}

/// One QRG edge.
#[derive(Debug, Clone, PartialEq)]
pub struct QrgEdge {
    /// Source node index.
    pub from: usize,
    /// Target node index.
    pub to: usize,
    /// Edge weight Ψ (0 for equivalence edges).
    pub weight: f64,
    /// What the edge represents.
    pub kind: EdgeKind,
}

/// The QoS-Resource Graph of one service session under one availability
/// snapshot. Borrows the session it was built for — a QRG is a
/// short-lived planning artifact, not a store of the session.
#[derive(Debug, Clone)]
pub struct Qrg<'a> {
    session: &'a SessionInstance,
    options: QrgOptions,
    /// Node-index offsets: `In(c, i)` is node `in_offset[c] + i`.
    in_offset: Vec<usize>,
    /// Node-index offsets: `Out(c, j)` is node `out_offset[c] + j`.
    out_offset: Vec<usize>,
    node_refs: Vec<NodeRef>,
    edges: Vec<QrgEdge>,
    /// Incoming edge ids per node.
    in_edges: Vec<Vec<u32>>,
    /// Outgoing edge ids per node.
    out_edges: Vec<Vec<u32>>,
    /// Nodes in relaxation order (components in topological order; within
    /// a component, `Q^in` nodes before `Q^out` nodes).
    relax_order: Vec<usize>,
}

impl<'a> Qrg<'a> {
    /// Builds the QRG for `session` under the availability snapshot
    /// `view` — step (1) of the runtime algorithm (§4.1.1).
    pub fn build(
        session: &'a SessionInstance,
        view: &AvailabilityView,
        options: &QrgOptions,
    ) -> Qrg<'a> {
        let service = session.service();
        let graph = service.graph();
        let k = service.components().len();

        let mut in_offset = Vec::with_capacity(k);
        let mut out_offset = Vec::with_capacity(k);
        let mut node_refs = Vec::new();
        for (c, comp) in service.components().iter().enumerate() {
            in_offset.push(node_refs.len());
            for level in 0..comp.input_levels().len() {
                node_refs.push(NodeRef::In {
                    component: c,
                    level,
                });
            }
            out_offset.push(node_refs.len());
            for level in 0..comp.output_levels().len() {
                node_refs.push(NodeRef::Out {
                    component: c,
                    level,
                });
            }
        }
        let n_nodes = node_refs.len();

        let mut edges: Vec<QrgEdge> = Vec::new();
        let mut in_edges: Vec<Vec<u32>> = vec![Vec::new(); n_nodes];
        let mut out_edges: Vec<Vec<u32>> = vec![Vec::new(); n_nodes];
        let push_edge = |edges: &mut Vec<QrgEdge>,
                         in_edges: &mut Vec<Vec<u32>>,
                         out_edges: &mut Vec<Vec<u32>>,
                         e: QrgEdge| {
            let id = u32::try_from(edges.len()).expect("QRG too large");
            in_edges[e.to].push(id);
            out_edges[e.from].push(id);
            edges.push(e);
        };

        for (c, comp) in service.components().iter().enumerate() {
            // Translation edges: feasible (Q^in, Q^out) pairs.
            for i in 0..comp.input_levels().len() {
                for j in 0..comp.output_levels().len() {
                    let Some(demand) = session.demand(c, i, j) else {
                        continue;
                    };
                    // Edge exists iff R^req <= R^avail element-wise.
                    if !demand.iter().all(|(rid, req)| req <= view.avail(rid)) {
                        continue;
                    }
                    let mut weight = 0.0;
                    let mut bottleneck = None;
                    for (rid, req) in demand.iter() {
                        let psi = options.psi.psi(req, view.avail(rid));
                        if bottleneck.is_none() || psi > weight {
                            weight = psi;
                            bottleneck = Some(EdgeBottleneck {
                                resource: rid,
                                psi,
                                alpha: view.alpha(rid),
                            });
                        }
                    }
                    push_edge(
                        &mut edges,
                        &mut in_edges,
                        &mut out_edges,
                        QrgEdge {
                            from: in_offset[c] + i,
                            to: out_offset[c] + j,
                            weight,
                            kind: EdgeKind::Translation {
                                component: c,
                                qin: i,
                                qout: j,
                                demand,
                                bottleneck,
                            },
                        },
                    );
                }
            }
            // Equivalence edges into each of c's input levels, one per
            // predecessor (the decomposition is unique by ServiceSpec
            // validation).
            for (i, _) in comp.input_levels().iter().enumerate() {
                let preds = graph.preds(c);
                for (pos, &u) in preds.iter().enumerate() {
                    let j = service.link(c, i)[pos];
                    push_edge(
                        &mut edges,
                        &mut in_edges,
                        &mut out_edges,
                        QrgEdge {
                            from: out_offset[u] + j,
                            to: in_offset[c] + i,
                            weight: 0.0,
                            kind: EdgeKind::Equivalence,
                        },
                    );
                }
            }
        }

        let mut relax_order = Vec::with_capacity(n_nodes);
        for &c in graph.topo_order() {
            let comp = &service.components()[c];
            for i in 0..comp.input_levels().len() {
                relax_order.push(in_offset[c] + i);
            }
            for j in 0..comp.output_levels().len() {
                relax_order.push(out_offset[c] + j);
            }
        }

        Qrg {
            session,
            options: options.clone(),
            in_offset,
            out_offset,
            node_refs,
            edges,
            in_edges,
            out_edges,
            relax_order,
        }
    }

    /// The session this QRG was built for.
    pub fn session(&self) -> &'a SessionInstance {
        self.session
    }

    /// The options the QRG was built with.
    pub fn options(&self) -> &QrgOptions {
        &self.options
    }

    /// Total number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.node_refs.len()
    }

    /// What node `n` represents.
    pub fn node_ref(&self, n: usize) -> NodeRef {
        self.node_refs[n]
    }

    /// Node index of `Q^in` level `i` of component `c`.
    pub fn in_node(&self, c: usize, i: usize) -> usize {
        self.in_offset[c] + i
    }

    /// Node index of `Q^out` level `j` of component `c`.
    pub fn out_node(&self, c: usize, j: usize) -> usize {
        self.out_offset[c] + j
    }

    /// The QRG source node (the source component's single input level).
    pub fn source_node(&self) -> usize {
        self.in_node(self.session.service().graph().source(), 0)
    }

    /// The sink node representing end-to-end QoS level `level`.
    pub fn sink_node(&self, level: usize) -> usize {
        self.out_node(self.session.service().graph().sink(), level)
    }

    /// All edges.
    pub fn edges(&self) -> &[QrgEdge] {
        &self.edges
    }

    /// One edge by id.
    pub fn edge(&self, id: u32) -> &QrgEdge {
        &self.edges[id as usize]
    }

    /// Ids of edges arriving at node `n`.
    pub fn in_edges(&self, n: usize) -> &[u32] {
        &self.in_edges[n]
    }

    /// Ids of edges leaving node `n`.
    pub fn out_edges(&self, n: usize) -> &[u32] {
        &self.out_edges[n]
    }

    /// Nodes in relaxation order (topological over the QRG).
    pub fn relax_order(&self) -> &[usize] {
        &self.relax_order
    }

    /// The translation edge of component `c` from input level `i` to
    /// output level `j`, if it is feasible in this QRG.
    pub fn translation_edge(&self, c: usize, i: usize, j: usize) -> Option<u32> {
        let from = self.in_node(c, i);
        let to = self.out_node(c, j);
        self.out_edges[from]
            .iter()
            .copied()
            .find(|&e| self.edges[e as usize].to == to)
    }

    /// Number of translation (category-1) edges — a measure of how many
    /// feasible `(Q^in, Q^out)` pairs survive under current availability.
    pub fn n_translation_edges(&self) -> usize {
        self.edges
            .iter()
            .filter(|e| matches!(e.kind, EdgeKind::Translation { .. }))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::*;

    #[test]
    fn builds_nodes_and_edges_for_chain() {
        let fx = ChainFixture::paper_like();
        let qrg = fx.qrg_with_avail(1000.0);
        // Nodes: per component, inputs + outputs.
        let svc = fx.session.service();
        let expected: usize = svc
            .components()
            .iter()
            .map(|c| c.input_levels().len() + c.output_levels().len())
            .sum();
        assert_eq!(qrg.n_nodes(), expected);
        assert_eq!(
            qrg.node_ref(qrg.source_node()),
            NodeRef::In {
                component: 0,
                level: 0
            }
        );
        // With abundant availability every table entry is an edge.
        let table_entries: usize = (0..svc.components().len())
            .map(|c| {
                let comp = svc.component(c);
                (0..comp.input_levels().len())
                    .flat_map(|i| (0..comp.output_levels().len()).map(move |j| (i, j)))
                    .filter(|&(i, j)| comp.translate(i, j).is_some())
                    .count()
            })
            .sum();
        assert_eq!(qrg.n_translation_edges(), table_entries);
    }

    #[test]
    fn infeasible_demand_drops_edge() {
        let fx = ChainFixture::paper_like();
        // Tiny availability: nothing fits.
        let qrg = fx.qrg_with_avail(0.5);
        assert_eq!(qrg.n_translation_edges(), 0);
        // Equivalence edges are unaffected by availability.
        assert!(qrg.edges().iter().any(|e| e.kind == EdgeKind::Equivalence));
    }

    #[test]
    fn edge_weight_is_max_ratio() {
        let fx = ChainFixture::paper_like();
        let qrg = fx.qrg_with_avail(100.0);
        // Component 0, (0, 0) demands [cpu0=4]; weight = 4/100.
        let e = qrg.translation_edge(0, 0, 0).expect("edge must exist");
        let edge = qrg.edge(e);
        assert!((edge.weight - 0.04).abs() < 1e-12);
        match &edge.kind {
            EdgeKind::Translation {
                bottleneck: Some(b),
                ..
            } => {
                assert!((b.psi - 0.04).abs() < 1e-12);
                assert_eq!(b.alpha, 1.0);
            }
            k => panic!("unexpected kind {k:?}"),
        }
    }

    #[test]
    fn scale_inflates_demand_and_weight() {
        let fx = ChainFixture::paper_like_scaled(10.0);
        let qrg = fx.qrg_with_avail(100.0);
        let e = qrg.translation_edge(0, 0, 0).expect("edge must exist");
        assert!((qrg.edge(e).weight - 0.4).abs() < 1e-12);
        // Demands that no longer fit are dropped: component 0 entry (0,2)
        // demands 24 * 10 = 240 > 100.
        assert!(qrg.translation_edge(0, 0, 2).is_none());
    }

    #[test]
    fn relax_order_is_topological() {
        let fx = DagFixture::diamond();
        let qrg = fx.qrg_with_avail(1000.0);
        let mut seen = vec![false; qrg.n_nodes()];
        for &n in qrg.relax_order() {
            for &e in qrg.in_edges(n) {
                assert!(
                    seen[qrg.edge(e).from],
                    "node {n} relaxed before its parent {}",
                    qrg.edge(e).from
                );
            }
            seen[n] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unobserved_resource_means_unavailable() {
        let fx = ChainFixture::paper_like();
        // Empty availability view: every translation edge vanishes.
        let view = AvailabilityView::new();
        let qrg = Qrg::build(&fx.session, &view, &QrgOptions::default());
        assert_eq!(qrg.n_translation_edges(), 0);
    }
}

impl Qrg<'_> {
    /// Renders the QRG in Graphviz DOT format: one cluster per service
    /// component, solid weighted edges for feasible translation pairs,
    /// dashed edges for `Q^out` → `Q^in` equivalences — the same layout
    /// as the paper's figures 4–5.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write;
        let service = self.session.service();
        let mut out =
            String::from("digraph qrg {\n  rankdir=LR;\n  node [shape=ellipse, fontsize=10];\n");
        for (c, comp) in service.components().iter().enumerate() {
            let _ = writeln!(out, "  subgraph cluster_{c} {{");
            let _ = writeln!(out, "    label=\"{}\";", comp.name());
            let _ = writeln!(out, "    style=dashed;");
            for (i, lvl) in comp.input_levels().iter().enumerate() {
                let _ = writeln!(out, "    n{} [label=\"in {lvl}\"];", self.in_node(c, i));
            }
            for (j, lvl) in comp.output_levels().iter().enumerate() {
                let _ = writeln!(out, "    n{} [label=\"out {lvl}\"];", self.out_node(c, j));
            }
            let _ = writeln!(out, "  }}");
        }
        for edge in &self.edges {
            match &edge.kind {
                EdgeKind::Translation { .. } => {
                    let _ = writeln!(
                        out,
                        "  n{} -> n{} [label=\"{:.3}\"];",
                        edge.from, edge.to, edge.weight
                    );
                }
                EdgeKind::Equivalence => {
                    let _ = writeln!(
                        out,
                        "  n{} -> n{} [style=dashed, arrowhead=none];",
                        edge.from, edge.to
                    );
                }
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod dot_tests {
    use crate::test_fixtures::ChainFixture;

    #[test]
    fn dot_output_is_well_formed() {
        let fx = ChainFixture::paper_like();
        let qrg = fx.qrg_with_avail(100.0);
        let dot = qrg.to_dot();
        assert!(dot.starts_with("digraph qrg {"));
        assert!(dot.trim_end().ends_with('}'));
        // One cluster per component.
        assert_eq!(dot.matches("subgraph cluster_").count(), 3);
        // Every node id appears.
        for n in 0..qrg.n_nodes() {
            assert!(dot.contains(&format!("n{n} ")), "node {n} missing");
        }
        // Translation edges carry weights; equivalences are dashed.
        assert!(dot.contains("label=\"0."));
        assert!(dot.contains("style=dashed, arrowhead=none"));
        // Edge counts match.
        let solid = dot.matches("];").count();
        assert_eq!(
            solid,
            qrg.edges().len() + qrg.n_nodes() + 1, // +1: the global node style
            "every edge and node declaration terminates with ];"
        );
    }
}
