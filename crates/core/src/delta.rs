//! Delta-aware replanning: diff consecutive availability snapshots and
//! repair the previous relaxation instead of recomputing it.
//!
//! In steady state, consecutive [`crate::EpochSnapshot`]s differ in only
//! a handful of resources — sessions commit and terminate, but most of
//! the resource space sits untouched between rounds. Yet every plan used
//! to rebuild all candidate weights and resweep Pass I from scratch.
//! This module provides the two pieces that make planning incremental:
//!
//! * [`AvailabilityDelta`] — the set of resources whose availability (or
//!   availability-change index α) moved between two views, under a
//!   **ψ-quantization threshold**: a resource whose relative move is
//!   within the threshold is treated as *unchanged*, so its candidates
//!   keep their previous weight. With the default threshold of `0.0`
//!   (exact), the repaired state is bit-identical to a full rebuild.
//! * [`RelaxCache`] — the state a [`crate::PlanCtx`] retains between
//!   [`crate::PlanCtx::prepare_delta`] / [`crate::PlanCtx::prepare_epoch`]
//!   calls: the *effective* availability view the current buffers were
//!   computed against, a resource → candidate inverted index (CSR) for
//!   seeding the repair, the session/options fingerprint that guards
//!   reuse, and the epoch-generation token that turns a same-snapshot
//!   re-prepare into a no-op.
//!
//! The repair path falls back to a full rebuild when the cache is cold,
//! the session or options changed, or the delta touches more than
//! [`DeltaConfig::max_dirty_fraction`] of the candidate edges (at that
//! point the sparse repair stops being cheaper than the dense sweep).
//! Every outcome is reported as a [`RepairOutcome`] so callers can count
//! repairs vs. fallbacks.

use crate::AvailabilityView;
use qosr_model::{ResourceId, SessionInstance};

/// Tuning knobs for the delta-repair path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeltaConfig {
    /// ψ-quantization threshold: a resource counts as changed only when
    /// its availability (or α) moved by **more than** this fraction of
    /// the previous value (`|new − old| > threshold · |old|`; any move
    /// away from exactly `0` counts). `0.0` (the default) means exact —
    /// repaired buffers are bit-identical to a full rebuild. A positive
    /// threshold trades bounded staleness for fewer repairs.
    pub psi_threshold: f64,
    /// Fall back to a full rebuild when more than this fraction of the
    /// candidate edges is touched by the delta.
    pub max_dirty_fraction: f64,
}

impl Default for DeltaConfig {
    fn default() -> Self {
        DeltaConfig {
            psi_threshold: 0.0,
            max_dirty_fraction: 0.5,
        }
    }
}

/// Why a delta-path prepare fell back to a full rebuild.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FullReason {
    /// First prepare through this context (nothing to repair yet).
    ColdCache,
    /// The session (service, scale, or bindings) differs from the cached
    /// one.
    SessionChanged,
    /// The planning options differ from the cached ones.
    OptionsChanged,
    /// The delta touched more than [`DeltaConfig::max_dirty_fraction`]
    /// of the candidate edges.
    DeltaTooLarge,
}

/// How much work a successful repair actually did. All-zero means the
/// snapshot was unchanged (pure reuse).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RepairStats {
    /// Resources whose effective availability/α moved past the
    /// quantization threshold.
    pub resources_changed: usize,
    /// Candidate edges re-evaluated because they demand a changed
    /// resource.
    pub candidates_reevaluated: usize,
    /// QRG nodes whose relaxation value was recomputed.
    pub nodes_recomputed: usize,
}

/// Outcome of [`crate::PlanCtx::prepare_delta`] /
/// [`crate::PlanCtx::prepare_epoch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairOutcome {
    /// The previous state could not be repaired; a full prepare +
    /// relaxation ran instead.
    Full(FullReason),
    /// The previous state was repaired in place.
    Repaired(RepairStats),
}

impl RepairOutcome {
    /// `true` when the delta path repaired (or outright reused) the
    /// previous state.
    pub fn is_repair(&self) -> bool {
        matches!(self, RepairOutcome::Repaired(_))
    }

    /// `true` when the delta path fell back to a full rebuild.
    pub fn is_full(&self) -> bool {
        matches!(self, RepairOutcome::Full(_))
    }

    /// The repair statistics, when repaired.
    pub fn stats(&self) -> Option<RepairStats> {
        match self {
            RepairOutcome::Repaired(s) => Some(*s),
            RepairOutcome::Full(_) => None,
        }
    }
}

/// `true` when `new` counts as a change from `old` under the
/// ψ-quantization `threshold` (strictly *more than* the threshold
/// fraction of the old magnitude — a move landing exactly on the
/// threshold is quantized away).
#[inline]
pub(crate) fn quantized_change(old: f64, new: f64, threshold: f64) -> bool {
    (new - old).abs() > threshold * old.abs()
}

/// Diffs `next` against `prev` under the quantization threshold,
/// pushing `(resource, new_avail, new_alpha)` for every changed
/// resource, in ascending resource-id order. Resources absent from a
/// view compare at the accessor defaults (`avail = 0.0`, `α = 1.0`), so
/// removal is a change to zero availability — observationally identical
/// for planning, which only ever reads through those accessors.
///
/// Both views store their entries sorted by resource id, so the diff is
/// a linear two-pointer merge — no per-entry lookups.
pub(crate) fn diff_views(
    prev: &AvailabilityView,
    next: &AvailabilityView,
    threshold: f64,
    out: &mut Vec<(ResourceId, f64, f64)>,
) {
    out.clear();
    let a = prev.entries();
    let b = next.entries();
    let (mut i, mut j) = (0, 0);
    while i < a.len() || j < b.len() {
        let in_a = i < a.len();
        let in_b = j < b.len();
        if in_a && (!in_b || a[i].0 < b[j].0) {
            // Removed from `next`: compare against the defaults.
            let (rid, (avail, alpha)) = a[i];
            i += 1;
            if quantized_change(avail, 0.0, threshold) || quantized_change(alpha, 1.0, threshold) {
                out.push((rid, 0.0, 1.0));
            }
        } else if in_b && (!in_a || b[j].0 < a[i].0) {
            // New in `next`: `prev` reads as the defaults.
            let (rid, (avail, alpha)) = b[j];
            j += 1;
            if quantized_change(0.0, avail, threshold) || quantized_change(1.0, alpha, threshold) {
                out.push((rid, avail, alpha));
            }
        } else {
            let (rid, (pa, pal)) = a[i];
            let (_, (na, nal)) = b[j];
            i += 1;
            j += 1;
            if quantized_change(pa, na, threshold) || quantized_change(pal, nal, threshold) {
                out.push((rid, na, nal));
            }
        }
    }
}

/// The quantized difference between two availability views — typically
/// consecutive [`crate::EpochSnapshot`]s of one admission queue.
#[derive(Debug, Clone)]
pub struct AvailabilityDelta {
    changed: Vec<(ResourceId, f64, f64)>,
    examined: usize,
}

impl AvailabilityDelta {
    /// Computes the delta from `prev` to `next` under the ψ-quantization
    /// `threshold` (see [`DeltaConfig::psi_threshold`]).
    pub fn between(prev: &AvailabilityView, next: &AvailabilityView, threshold: f64) -> Self {
        let mut changed = Vec::new();
        diff_views(prev, next, threshold, &mut changed);
        let examined = next.len()
            + prev
                .iter()
                .filter(|&(rid, _, _)| !next.contains(rid))
                .count();
        AvailabilityDelta { changed, examined }
    }

    /// The changed resources with their new `(availability, α)` values,
    /// in unspecified order. A resource that disappeared from the newer
    /// view reports `(0.0, 1.0)` — the accessor defaults.
    pub fn entries(&self) -> impl Iterator<Item = (ResourceId, f64, f64)> + '_ {
        self.changed.iter().copied()
    }

    /// The changed resource ids, in unspecified order.
    pub fn changed(&self) -> impl Iterator<Item = ResourceId> + '_ {
        self.changed.iter().map(|&(rid, _, _)| rid)
    }

    /// Number of changed resources.
    pub fn len(&self) -> usize {
        self.changed.len()
    }

    /// `true` when nothing moved past the threshold.
    pub fn is_empty(&self) -> bool {
        self.changed.is_empty()
    }

    /// Number of resources examined (the union of both views).
    pub fn examined(&self) -> usize {
        self.examined
    }
}

/// The retained state behind [`crate::PlanCtx`]'s delta-repair path. See
/// the module docs; all bookkeeping is crate-internal, the public
/// surface is [`RepairOutcome`].
#[derive(Debug, Default)]
pub struct RelaxCache {
    /// Whether the cached state describes the context's buffers.
    pub(crate) valid: bool,
    /// Tuning knobs (survive invalidation).
    pub(crate) config: DeltaConfig,
    /// Fingerprint: service identity of the cached session.
    pub(crate) service_uid: u64,
    /// Fingerprint: session scale bits.
    pub(crate) scale_bits: u64,
    /// Fingerprint: the session's bound resources, flattened in
    /// component order (the per-component grouping is pinned by the
    /// service uid).
    pub(crate) bindings: Vec<ResourceId>,
    /// Generation token of the [`crate::EpochSnapshot`] the buffers were
    /// last prepared against (`None` for plain working views), for the
    /// same-snapshot fast path.
    pub(crate) token: Option<u64>,
    /// The *effective* availability the buffers were computed against —
    /// the last fully-installed view plus every applied (quantized)
    /// delta. With a zero threshold this tracks the actual view exactly.
    pub(crate) view: AvailabilityView,
    /// Inverted index: sorted resource ids with demanding candidates.
    pub(crate) idx_rids: Vec<ResourceId>,
    /// CSR offsets into `idx_cands`, parallel to `idx_rids`.
    pub(crate) idx_start: Vec<u32>,
    /// Candidate ids demanding each indexed resource.
    pub(crate) idx_cands: Vec<u32>,
    /// Scratch: `(resource, candidate)` pairs while rebuilding the index.
    pub(crate) idx_pairs: Vec<(ResourceId, u32)>,
    /// Scratch: the changed entries of the current delta.
    pub(crate) pending: Vec<(ResourceId, f64, f64)>,
    /// Scratch: per-candidate dedup marks while seeding the repair.
    pub(crate) cand_seen: Vec<bool>,
    /// Scratch: the deduped dirty-candidate worklist of the current
    /// repair, in discovery order.
    pub(crate) dirty_cands: Vec<u32>,
    /// Scratch: per-node seed marks (an in-edge weight changed).
    pub(crate) dirty_nodes: Vec<bool>,
    /// Scratch: per-node affected marks for [`crate::relax`]'s repair
    /// sweep (pushed to out-neighbors when a distance moves).
    pub(crate) moved_nodes: Vec<bool>,
}

impl RelaxCache {
    /// Marks the cached state as not describing the buffers anymore.
    pub(crate) fn invalidate(&mut self) {
        self.valid = false;
        self.token = None;
    }

    /// `true` when the cached fingerprint matches `session`.
    pub(crate) fn matches_session(&self, session: &SessionInstance) -> bool {
        if self.service_uid != session.service().uid()
            || self.scale_bits != session.scale().to_bits()
        {
            return false;
        }
        let mut flat = self.bindings.iter();
        session
            .bindings()
            .iter()
            .all(|b| b.resources().iter().all(|r| flat.next() == Some(r)))
            && flat.next().is_none()
    }

    /// Installs the fingerprint, effective view, and token after a full
    /// prepare.
    pub(crate) fn install(
        &mut self,
        session: &SessionInstance,
        view: &AvailabilityView,
        token: Option<u64>,
    ) {
        self.service_uid = session.service().uid();
        self.scale_bits = session.scale().to_bits();
        self.bindings.clear();
        for b in session.bindings() {
            self.bindings.extend_from_slice(b.resources());
        }
        self.view = view.clone();
        self.token = token;
        self.valid = true;
    }

    /// Rebuilds the resource → candidates inverted index from the
    /// prepared demand segments.
    pub(crate) fn rebuild_index(&mut self, demand_off: &[u32], demand_buf: &[(ResourceId, f64)]) {
        self.idx_pairs.clear();
        for e in 0..demand_off.len().saturating_sub(1) {
            for &(rid, _) in &demand_buf[demand_off[e] as usize..demand_off[e + 1] as usize] {
                self.idx_pairs.push((rid, e as u32));
            }
        }
        self.idx_pairs.sort_unstable();
        self.idx_rids.clear();
        self.idx_start.clear();
        self.idx_cands.clear();
        for &(rid, e) in &self.idx_pairs {
            if self.idx_rids.last() != Some(&rid) {
                self.idx_rids.push(rid);
                self.idx_start
                    .push(u32::try_from(self.idx_cands.len()).expect("QRG too large"));
            }
            self.idx_cands.push(e);
        }
        self.idx_start
            .push(u32::try_from(self.idx_cands.len()).expect("QRG too large"));
    }

    /// Candidate ids demanding `rid` (empty when none do). The hot path
    /// inlines this lookup to keep `cand_seen` mutable alongside it.
    #[cfg(test)]
    pub(crate) fn candidates_of(&self, rid: ResourceId) -> &[u32] {
        match self.idx_rids.binary_search(&rid) {
            Ok(i) => &self.idx_cands[self.idx_start[i] as usize..self.idx_start[i + 1] as usize],
            Err(_) => &[],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rid(n: u32) -> ResourceId {
        ResourceId(n)
    }

    #[test]
    fn exact_delta_catches_every_move_and_only_moves() {
        let mut a = AvailabilityView::new();
        a.set_with_alpha(rid(0), 100.0, 1.0);
        a.set_with_alpha(rid(1), 50.0, 0.8);
        a.set_with_alpha(rid(2), 10.0, 1.0);
        let mut b = a.clone();
        b.set_with_alpha(rid(1), 49.0, 0.8); // availability moved
        b.set_with_alpha(rid(2), 10.0, 0.9); // only α moved

        let d = AvailabilityDelta::between(&a, &b, 0.0);
        let mut changed: Vec<_> = d.changed().collect();
        changed.sort();
        assert_eq!(changed, vec![rid(1), rid(2)]);
        assert_eq!(d.examined(), 3);
        assert!(AvailabilityDelta::between(&a, &a, 0.0).is_empty());
    }

    #[test]
    fn removal_counts_as_change_to_accessor_defaults() {
        let mut a = AvailabilityView::new();
        a.set(rid(0), 100.0);
        a.set(rid(1), 25.0);
        let mut b = AvailabilityView::new();
        b.set(rid(0), 100.0);

        let d = AvailabilityDelta::between(&a, &b, 0.0);
        let entries: Vec<_> = d.entries().collect();
        assert_eq!(entries, vec![(rid(1), 0.0, 1.0)]);
    }

    #[test]
    fn threshold_is_strict_a_move_landing_exactly_on_it_is_quantized_away() {
        let t = 0.1;
        // 100 -> 110: exactly the threshold fraction — unchanged.
        assert!(!quantized_change(100.0, 110.0, t));
        assert!(!quantized_change(100.0, 90.0, t));
        // The tiniest overshoot counts.
        assert!(quantized_change(100.0, 110.0 + 1e-9, t));
        assert!(quantized_change(100.0, 90.0 - 1e-9, t));
        // Any move away from exactly zero counts.
        assert!(quantized_change(0.0, 1e-12, t));
        assert!(!quantized_change(0.0, 0.0, t));
    }

    #[test]
    fn inverted_index_maps_resources_to_their_candidates() {
        let mut cache = RelaxCache::default();
        // Three candidates: 0 demands {r0, r2}, 1 demands {r1}, 2 none.
        let demand_off = [0u32, 2, 3, 3];
        let demand_buf = [(rid(0), 1.0), (rid(2), 2.0), (rid(1), 3.0)];
        cache.rebuild_index(&demand_off, &demand_buf);
        assert_eq!(cache.candidates_of(rid(0)), &[0]);
        assert_eq!(cache.candidates_of(rid(1)), &[1]);
        assert_eq!(cache.candidates_of(rid(2)), &[0]);
        assert_eq!(cache.candidates_of(rid(9)), &[] as &[u32]);
    }
}
