//! Per-resource contention index definitions (ψ, eq. 2).
//!
//! The paper defines ψ_i = r_i^req / r_i^avail and notes (footnote 2)
//! that *"there are other definitions of ψ which also exhibit this
//! property \[higher percentage ⇒ lower success probability\]…it is
//! straightforward for our algorithm to adopt a different ψ definition"*.
//! [`PsiDef`] makes the definition pluggable so the ablation experiments
//! can compare alternatives; the edge weight Ψ remains the maximum of the
//! per-resource indices (eq. 3), and the path objective remains the
//! bottleneck (max-over-edges) in all cases.

/// Pluggable definition of the per-resource contention index ψ.
///
/// All variants are monotonically increasing in the utilization
/// `u = req/avail` over `0 ≤ u ≤ 1`, which is the property the
/// algorithm's correctness argument needs. Values are only ever computed
/// for feasible reservations (`req ≤ avail`).
///
/// ```
/// use qosr_core::PsiDef;
/// assert_eq!(PsiDef::Utilization.psi(20.0, 100.0), 0.2);   // eq. (2)
/// assert_eq!(PsiDef::Headroom.psi(20.0, 100.0), 0.25);     // 20 / 80
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PsiDef {
    /// The paper's eq. (2): ψ = req / avail. Ranges over `[0, 1]`.
    #[default]
    Utilization,
    /// Headroom ratio: ψ = req / (avail − req), i.e. demand relative to
    /// what would be *left over*. Penalizes near-exhaustion much harder
    /// than plain utilization. Clamped to [`PsiDef::CLAMP`].
    Headroom,
    /// ψ = −ln(1 − req/avail): the "surprise" of the reservation if
    /// success probability were proportional to remaining headroom.
    /// Clamped to [`PsiDef::CLAMP`].
    NegLogSurvival,
}

impl PsiDef {
    /// Upper clamp for the unbounded variants, so that a feasible edge is
    /// never confused with an unreachable (infinite-distance) node.
    pub const CLAMP: f64 = 1.0e12;

    /// Computes ψ for one resource. `avail ≤ 0` yields the clamp value
    /// (callers only invoke this for feasible edges, where `req ≤ avail`,
    /// but the definition is total for robustness).
    pub fn psi(self, req: f64, avail: f64) -> f64 {
        if avail <= 0.0 {
            return Self::CLAMP;
        }
        let u = req / avail;
        let v = match self {
            PsiDef::Utilization => u,
            PsiDef::Headroom => {
                let headroom = avail - req;
                if headroom <= 0.0 {
                    Self::CLAMP
                } else {
                    req / headroom
                }
            }
            PsiDef::NegLogSurvival => {
                if u >= 1.0 {
                    Self::CLAMP
                } else {
                    -(1.0 - u).ln()
                }
            }
        };
        v.min(Self::CLAMP)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_matches_paper() {
        assert_eq!(PsiDef::Utilization.psi(20.0, 100.0), 0.2);
        assert_eq!(PsiDef::Utilization.psi(100.0, 100.0), 1.0);
        assert_eq!(PsiDef::Utilization.psi(0.0, 100.0), 0.0);
    }

    #[test]
    fn headroom() {
        assert_eq!(PsiDef::Headroom.psi(20.0, 100.0), 0.25); // 20/80
        assert_eq!(PsiDef::Headroom.psi(100.0, 100.0), PsiDef::CLAMP);
    }

    #[test]
    fn neg_log() {
        let v = PsiDef::NegLogSurvival.psi(50.0, 100.0);
        assert!((v - std::f64::consts::LN_2).abs() < 1e-12);
        assert_eq!(PsiDef::NegLogSurvival.psi(100.0, 100.0), PsiDef::CLAMP);
    }

    #[test]
    fn zero_availability_is_clamped() {
        for def in [
            PsiDef::Utilization,
            PsiDef::Headroom,
            PsiDef::NegLogSurvival,
        ] {
            assert_eq!(def.psi(1.0, 0.0), PsiDef::CLAMP);
        }
    }

    #[test]
    fn all_monotone_in_utilization() {
        for def in [
            PsiDef::Utilization,
            PsiDef::Headroom,
            PsiDef::NegLogSurvival,
        ] {
            let mut last = -1.0;
            for req in 0..=99 {
                let v = def.psi(req as f64, 100.0);
                assert!(v > last, "{def:?} not strictly increasing at req={req}");
                last = v;
            }
        }
    }
}
