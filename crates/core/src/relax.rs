//! Pass I: minimax ("shortest path with + redefined as max") relaxation
//! over the QRG (§4.1.2, extended per §4.3.2 for fan-in components).
//!
//! The paper computes the plan by running Dijkstra's algorithm with the
//! path-length operator `+` replaced by `max`. Because the QRG is a DAG
//! (levels of components ordered by the dependency graph), a single
//! relaxation sweep in topological order computes exactly the same
//! fixpoint as Dijkstra — including the tie-breaking rule — without a
//! priority queue:
//!
//! * the **source** `Q^in` node gets value 0;
//! * a `Q^in` node's value is the **max** over the values of the
//!   upstream `Q^out` node(s) it is equivalent to — one per predecessor
//!   component; for fan-in components this is the "maximum of those
//!   associated with the Q^out nodes of the adjacent components" rule of
//!   Pass I in §4.3.2 (for single-predecessor components it degenerates
//!   to plain propagation across a 0-weight edge);
//! * a `Q^out` node's value is the **min** over its incoming translation
//!   edges `e = (q^in → q^out)` of `max(value(q^in), Ψ_e)`, with the
//!   paper's tie-break: when `max(a, b) = max(a, c) = a`, prefer the
//!   predecessor with `min(b, c)` (and, for full determinism, the lowest
//!   edge id after that).

use crate::view::{PlanView, QrgView};
use crate::{NodeRef, Qrg};

/// The result of Pass I: per-node minimax distances and, for `Q^out`
/// nodes, the chosen incoming translation edge (the Dijkstra
/// predecessor).
#[derive(Debug, Clone)]
pub struct Relaxation {
    /// Minimax distance from the QRG source node; `f64::INFINITY` when
    /// unreachable.
    pub dist: Vec<f64>,
    /// For each `Q^out` node, the incoming translation edge chosen by the
    /// relaxation; `None` for unreachable or `Q^in` nodes.
    pub pred: Vec<Option<u32>>,
}

impl Relaxation {
    /// `true` when node `n` is reachable from the source.
    pub fn reachable(&self, n: usize) -> bool {
        self.dist[n].is_finite()
    }
}

/// Runs Pass I over the QRG.
pub fn relax(qrg: &Qrg) -> Relaxation {
    let mut dist = Vec::new();
    let mut pred = Vec::new();
    relax_into(&QrgView::new(qrg), &mut dist, &mut pred);
    Relaxation { dist, pred }
}

/// Pass I over any [`PlanView`], writing into caller-provided buffers
/// (cleared and resized here) so the hot path allocates nothing in steady
/// state.
pub(crate) fn relax_into<V: PlanView>(view: &V, dist: &mut Vec<f64>, pred: &mut Vec<Option<u32>>) {
    let n = view.n_nodes();
    dist.clear();
    dist.resize(n, f64::INFINITY);
    pred.clear();
    pred.resize(n, None);
    let source = view.source_node();
    let tie_break = !view.disable_tie_break();

    for &node in view.relax_order() {
        let (d, p) = relax_node(view, node, source, tie_break, dist);
        dist[node] = d;
        pred[node] = p;
    }
}

/// One node's relaxation value `(dist, pred)` from its in-edge weights
/// and its predecessors' current distances — the per-node step shared by
/// the full sweep ([`relax_into`]) and the incremental repair
/// ([`relax_repair`]), so their fixpoints agree bit-for-bit by
/// construction.
#[inline]
fn relax_node<V: PlanView>(
    view: &V,
    node: usize,
    source: usize,
    tie_break: bool,
    dist: &[f64],
) -> (f64, Option<u32>) {
    match view.node_ref(node) {
        NodeRef::In { .. } => {
            if node == source {
                return (0.0, None);
            }
            let ins = view.in_edges(node);
            if ins.is_empty() {
                // Only the source component has no predecessors, and
                // its single input node is handled above.
                return (f64::INFINITY, None);
            }
            // AND-node: usable only when every upstream Q^out it is
            // equivalent to is reachable; value = max over them.
            // (Equivalence edges are feasible under any availability.)
            let mut value = 0.0f64;
            for &e in ins {
                value = value.max(dist[view.edge_endpoints(e).0]);
            }
            (value, None)
        }
        NodeRef::Out { .. } => {
            let mut best: Option<(f64, f64, u32)> = None;
            for &e in view.in_edges(node) {
                let Some(weight) = view.edge_weight(e) else {
                    continue; // infeasible candidate edge
                };
                let upstream = dist[view.edge_endpoints(e).0];
                if !upstream.is_finite() {
                    continue;
                }
                let value = upstream.max(weight);
                let better = match best {
                    None => true,
                    Some((bv, bw, be)) => {
                        value < bv
                            || (value == bv
                                && tie_break
                                && (weight < bw || (weight == bw && e < be)))
                    }
                };
                if better {
                    best = Some((value, weight, e));
                }
            }
            match best {
                Some((value, _, e)) => (value, Some(e)),
                None => (f64::INFINITY, None),
            }
        }
    }
}

/// Repairs an existing Pass-I result in place after a subset of
/// candidate weights changed, instead of resweeping every node.
///
/// `seed[n]` marks the nodes with at least one re-weighted in-edge. The
/// sweep walks the same precomputed topological order as [`relax_into`]
/// but recomputes a node only when it is seed-dirty or marked `affected`
/// — a push: whenever a recomputed node's distance bits move, its
/// out-neighbors are marked, so clean nodes cost two flag reads instead
/// of an in-edge scan. (`affected` is a caller-owned scratch buffer
/// resized here.) Returns the number of nodes recomputed.
///
/// Correctness: [`relax_node`] is a pure function of the node's in-edge
/// weights and its predecessors' distances. A node is recomputed exactly
/// when one of those inputs changed — re-weighted in-edges via `seed`,
/// predecessor distances via the push (a predecessor precedes the node
/// in the topological order, so the mark lands before the node is
/// visited) — so by induction every node ends at the value a full sweep
/// would assign, bitwise. Predecessor-edge changes without a distance
/// change do not propagate: downstream nodes read only `dist`. The
/// propagation test compares bits so INFINITY == INFINITY counts as
/// unmoved and no float-equality subtlety can stop (or force)
/// propagation differently from a full sweep.
pub(crate) fn relax_repair<V: PlanView>(
    view: &V,
    dist: &mut [f64],
    pred: &mut [Option<u32>],
    seed: &[bool],
    affected: &mut Vec<bool>,
) -> usize {
    let n = view.n_nodes();
    debug_assert_eq!(dist.len(), n);
    debug_assert_eq!(seed.len(), n);
    affected.clear();
    affected.resize(n, false);
    let source = view.source_node();
    let tie_break = !view.disable_tie_break();
    let mut recomputed = 0usize;

    for &node in view.relax_order() {
        if !seed[node] && !affected[node] {
            continue;
        }
        recomputed += 1;
        let (d, p) = relax_node(view, node, source, tie_break, dist);
        if d.to_bits() != dist[node].to_bits() {
            for &e in view.out_edges(node) {
                affected[view.edge_endpoints(e).1] = true;
            }
        }
        dist[node] = d;
        pred[node] = p;
    }
    recomputed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::*;
    use crate::{AvailabilityView, Qrg, QrgOptions};

    #[test]
    fn source_is_zero_and_sinks_get_bottleneck() {
        let fx = ChainFixture::paper_like();
        let qrg = fx.qrg_with_avail(100.0);
        let r = relax(&qrg);
        assert_eq!(r.dist[qrg.source_node()], 0.0);
        // Best path to the top end-to-end level p has bottleneck 0.24
        // (see fixture docs); to q it is 0.18; to r it is 0.10.
        assert!((r.dist[qrg.sink_node(2)] - 0.24).abs() < 1e-12);
        assert!((r.dist[qrg.sink_node(1)] - 0.18).abs() < 1e-12);
        assert!((r.dist[qrg.sink_node(0)] - 0.10).abs() < 1e-12);
    }

    #[test]
    fn unreachable_when_demand_does_not_fit() {
        let fx = ChainFixture::paper_like();
        // Availability 20: component 2's cheapest edge to p needs 24.
        let qrg = fx.qrg_with_avail(20.0);
        let r = relax(&qrg);
        assert!(!r.reachable(qrg.sink_node(2)));
        // But r (needs only 10 via k) is reachable.
        assert!(r.reachable(qrg.sink_node(0)));
    }

    #[test]
    fn tie_break_prefers_smaller_incoming_weight() {
        // Two inputs reach the same output with equal minimax value `a`
        // but different incoming weights: the rule picks min weight.
        let fx = TieBreakFixture::new();
        let qrg = fx.qrg();
        let r = relax(&qrg);
        let out = qrg.out_node(1, 0);
        assert_eq!(r.dist[out], 0.3);
        let e = r.pred[out].unwrap();
        // The chosen edge must be the lighter one (weight 0.1), i.e. from
        // input level 1, even though input 0 arrives first.
        assert!((qrg.edge(e).weight - 0.1).abs() < 1e-12);
        assert_eq!(qrg.edge(e).from, qrg.in_node(1, 1));
    }

    #[test]
    fn tie_break_can_be_disabled_for_ablation() {
        let fx = TieBreakFixture::new();
        let view = fx.view();
        let qrg = Qrg::build(
            &fx.session,
            &view,
            &QrgOptions {
                disable_tie_break: true,
                ..QrgOptions::default()
            },
        );
        let r = relax(&qrg);
        let out = qrg.out_node(1, 0);
        // Same distance, but the first-encountered edge wins.
        assert_eq!(r.dist[out], 0.3);
        let e = r.pred[out].unwrap();
        assert_eq!(qrg.edge(e).from, qrg.in_node(1, 0));
    }

    #[test]
    fn fan_in_takes_max_of_parents() {
        let fx = DagFixture::diamond();
        let qrg = fx.qrg_with_avail(100.0);
        let r = relax(&qrg);
        // See fixture docs: dist(a out2) = 0.05, dist(b out2) = 0.10;
        // merge input (2,2) = max = 0.10; top sink = max(0.10, 0.09) = 0.10.
        assert!((r.dist[qrg.out_node(1, 1)] - 0.05).abs() < 1e-12);
        assert!((r.dist[qrg.out_node(2, 1)] - 0.10).abs() < 1e-12);
        assert!((r.dist[qrg.in_node(3, 1)] - 0.10).abs() < 1e-12);
        assert!((r.dist[qrg.sink_node(1)] - 0.10).abs() < 1e-12);
    }

    #[test]
    fn fan_in_unreachable_if_any_parent_is() {
        let fx = DagFixture::diamond();
        // Give b's CPU too little for its out2 edge (needs 8).
        let mut view = AvailabilityView::new();
        for (name, amount) in [
            ("cpu_s", 100.0),
            ("cpu_a", 100.0),
            ("cpu_b", 7.0),
            ("cpu_m", 100.0),
        ] {
            view.set(fx.space.id(name).unwrap(), amount);
        }
        let qrg = Qrg::build(&fx.session, &view, &QrgOptions::default());
        let r = relax(&qrg);
        // b can still produce out1 (needs 5) but not out2.
        assert!(r.reachable(qrg.out_node(2, 0)));
        assert!(!r.reachable(qrg.out_node(2, 1)));
        // merge input (2,2) requires b out2 -> unreachable, and so is the
        // top sink via that input.
        assert!(!r.reachable(qrg.in_node(3, 1)));
    }
}
