//! The reservation planners (§4.1.2, §4.3, and the §5 baseline).

use crate::backtrack::backtrack_into;
use crate::relax::relax_into;
use crate::view::{PlanScratch, PlanView, PlanWorkspace, QrgView};
use crate::{PlanError, Qrg, ReservationPlan};
use rand::{Rng, RngExt};

/// Which planning algorithm to run — handy for configuration tables in
/// simulations and benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Planner {
    /// The paper's basic algorithm (§4.1): highest reachable end-to-end
    /// QoS, minimal bottleneck contention.
    #[default]
    Basic,
    /// Basic + the QoS/success-rate tradeoff policy of §4.3.1.
    Tradeoff,
    /// The contention-unaware baseline of §5: a random feasible path to
    /// the highest reachable end-to-end QoS level.
    Random,
    /// The two-pass DAG heuristic of §4.3.2 (also valid for chains).
    Dag,
}

impl Planner {
    /// Runs this planner on a QRG. `rng` is only consulted by
    /// [`Planner::Random`].
    pub fn plan(self, qrg: &Qrg, rng: &mut impl Rng) -> Result<ReservationPlan, PlanError> {
        match self {
            Planner::Basic => plan_basic(qrg),
            Planner::Tradeoff => plan_tradeoff(qrg),
            Planner::Random => plan_random(qrg, rng),
            Planner::Dag => plan_dag(qrg),
        }
    }
}

/// Highest-ranked sink level that Pass I marked reachable.
fn best_reachable_sink<V: PlanView>(view: &V, dist: &[f64]) -> Option<usize> {
    view.sink_order()
        .iter()
        .copied()
        .find(|&level| dist[view.sink_node(level)].is_finite())
}

pub(crate) fn ensure_chain<V: PlanView>(view: &V) -> Result<(), PlanError> {
    if view.service().graph().is_chain() {
        Ok(())
    } else {
        Err(PlanError::NotAChain)
    }
}

/// The **basic** algorithm (§4.1.2): selects the end-to-end reservation
/// plan that (1) achieves the highest end-to-end QoS level reachable
/// under current availability and (2) requires the lowest percentage of
/// bottleneck resource(s) among all feasible plans achieving it — the
/// minimax-shortest path in the QRG.
///
/// Requires a chain dependency graph (the paper's basic setting); use
/// [`plan_dag`] for DAGs.
pub fn plan_basic(qrg: &Qrg) -> Result<ReservationPlan, PlanError> {
    plan_basic_view(&QrgView::new(qrg), &mut PlanScratch::default())
}

/// The **two-pass DAG heuristic** (§4.3.2). Exact on chains (where it
/// coincides with [`plan_basic`]); on general DAGs it may fail to
/// assemble a plan for a Pass-I-reachable sink, or return a plan whose
/// bottleneck is not globally minimal — the paper's two documented
/// limitations.
pub fn plan_dag(qrg: &Qrg) -> Result<ReservationPlan, PlanError> {
    plan_minimax(&QrgView::new(qrg), &mut PlanScratch::default())
}

pub(crate) fn plan_basic_view<V: PlanView>(
    view: &V,
    scratch: &mut PlanScratch,
) -> Result<ReservationPlan, PlanError> {
    ensure_chain(view)?;
    plan_minimax(view, scratch)
}

pub(crate) fn plan_minimax<V: PlanView>(
    view: &V,
    scratch: &mut PlanScratch,
) -> Result<ReservationPlan, PlanError> {
    relax_into(view, &mut scratch.dist, &mut scratch.pred);
    finish_minimax(view, &scratch.dist, &scratch.pred, &mut scratch.work)
}

/// Pass II + assembly of the minimax planner over an already-relaxed
/// Pass-I result. Split out so a repaired relaxation (delta path) can be
/// consumed without resweeping, and so concurrent callers can share one
/// relaxation while backtracking into private workspaces.
pub(crate) fn finish_minimax<V: PlanView>(
    view: &V,
    dist: &[f64],
    pred: &[Option<u32>],
    work: &mut PlanWorkspace,
) -> Result<ReservationPlan, PlanError> {
    work.downgrade = None;
    let target = best_reachable_sink(view, dist).ok_or(PlanError::NoFeasiblePlan)?;
    backtrack_into(view, dist, pred, target, &mut work.bt, &mut work.asg)?;
    Ok(ReservationPlan::assemble(view, &work.asg))
}

/// The **tradeoff** policy (§4.3.1): run the basic algorithm; if the
/// availability trend α of the bottleneck resource at the best sink `s0`
/// is below 1.0 (availability going down), settle for the highest-ranked
/// sink `s` with `ψ_s ≤ α_{s0} · ψ_{s0}` instead, lowering bottleneck
/// pressure by the ratio `1 − α_{s0}`.
///
/// When no sink satisfies the bound, the plan for `s0` is returned
/// unchanged (the paper leaves this case unspecified; falling back to the
/// basic choice never performs worse than *basic*).
pub fn plan_tradeoff(qrg: &Qrg) -> Result<ReservationPlan, PlanError> {
    plan_tradeoff_view(&QrgView::new(qrg), &mut PlanScratch::default())
}

pub(crate) fn plan_tradeoff_view<V: PlanView>(
    view: &V,
    scratch: &mut PlanScratch,
) -> Result<ReservationPlan, PlanError> {
    relax_into(view, &mut scratch.dist, &mut scratch.pred);
    finish_tradeoff(view, &scratch.dist, &scratch.pred, &mut scratch.work)
}

/// Pass II + assembly of the tradeoff planner over an already-relaxed
/// Pass-I result (see [`finish_minimax`]).
pub(crate) fn finish_tradeoff<V: PlanView>(
    view: &V,
    dist: &[f64],
    pred: &[Option<u32>],
    work: &mut PlanWorkspace,
) -> Result<ReservationPlan, PlanError> {
    work.downgrade = None;
    let target = best_reachable_sink(view, dist).ok_or(PlanError::NoFeasiblePlan)?;
    backtrack_into(view, dist, pred, target, &mut work.bt, &mut work.asg)?;

    // The basic plan's bottleneck (same max-ψ rule as plan assembly),
    // read straight off the assignments so the basic plan is only
    // materialized when it is the final answer.
    let mut psi0 = 0.0f64;
    let mut alpha = None;
    for a in &work.asg {
        if let Some(b) = view.edge_bottleneck(a.edge) {
            if alpha.is_none() || b.psi > psi0 {
                psi0 = b.psi;
                alpha = Some(b.alpha);
            }
        }
    }
    let Some(alpha) = alpha else {
        // No demand at all — nothing to trade.
        return Ok(ReservationPlan::assemble(view, &work.asg));
    };
    if alpha >= 1.0 {
        return Ok(ReservationPlan::assemble(view, &work.asg));
    }
    let bound = alpha * psi0;
    for &level in view.sink_order() {
        let node = view.sink_node(level);
        if dist[node].is_finite() && dist[node] <= bound {
            // A lower-pressure level exists; re-backtrack for it (reusing
            // the Pass-I result). If the DAG heuristic fails for this
            // level, keep scanning.
            match backtrack_into(view, dist, pred, level, &mut work.bt, &mut work.asg_alt) {
                Ok(()) => {
                    if level != target {
                        let ranking = view.service().sink_ranking();
                        work.downgrade = Some((ranking[target], ranking[level]));
                    }
                    return Ok(ReservationPlan::assemble(view, &work.asg_alt));
                }
                Err(_) => continue,
            }
        }
    }
    Ok(ReservationPlan::assemble(view, &work.asg))
}

/// The **contention-unaware baseline** of the paper's evaluation (§5):
/// picks a *random* feasible path leading to the highest reachable
/// end-to-end QoS level, instead of the minimax-shortest one.
///
/// Only defined for chain dependency graphs, matching its use in the
/// paper.
pub fn plan_random(qrg: &Qrg, rng: &mut impl Rng) -> Result<ReservationPlan, PlanError> {
    plan_random_view(&QrgView::new(qrg), &mut PlanScratch::default(), rng)
}

pub(crate) fn plan_random_view<V: PlanView>(
    view: &V,
    scratch: &mut PlanScratch,
    rng: &mut impl Rng,
) -> Result<ReservationPlan, PlanError> {
    ensure_chain(view)?;
    relax_into(view, &mut scratch.dist, &mut scratch.pred);
    finish_random(view, &scratch.dist, &mut scratch.work, rng)
}

/// Path walk + assembly of the random baseline over an already-relaxed
/// Pass-I result (see [`finish_minimax`]). The caller has already
/// checked [`ensure_chain`].
pub(crate) fn finish_random<V: PlanView>(
    view: &V,
    dist: &[f64],
    work: &mut PlanWorkspace,
    rng: &mut impl Rng,
) -> Result<ReservationPlan, PlanError> {
    work.downgrade = None;
    let target = best_reachable_sink(view, dist).ok_or(PlanError::NoFeasiblePlan)?;
    let target_node = view.sink_node(target);

    // Backward reachability to the target over feasible QRG edges.
    let reach = &mut work.reach;
    reach.clear();
    reach.resize(view.n_nodes(), false);
    reach[target_node] = true;
    for &n in view.relax_order().iter().rev() {
        if n == target_node {
            continue;
        }
        reach[n] = view
            .out_edges(n)
            .iter()
            .any(|&e| view.edge_weight(e).is_some() && reach[view.edge_endpoints(e).1]);
    }

    let mut node = view.source_node();
    debug_assert!(reach[node], "target reachable implies source can reach it");
    work.asg.clear();
    loop {
        if node == target_node {
            break;
        }
        // Reused candidates buffer: one uniform pick per step, no
        // per-step allocation.
        work.candidates.clear();
        work.candidates.extend(
            view.out_edges(node)
                .iter()
                .copied()
                .filter(|&e| view.edge_weight(e).is_some() && reach[view.edge_endpoints(e).1]),
        );
        debug_assert!(
            !work.candidates.is_empty(),
            "walk cannot dead-end inside reach set"
        );
        let e = work.candidates[rng.random_range(0..work.candidates.len())];
        if let Some((component, qin, qout)) = view.edge_pair(e) {
            work.asg.push(crate::backtrack::Assignment {
                component,
                qin,
                qout,
                edge: e,
            });
        }
        node = view.edge_endpoints(e).1;
    }
    Ok(ReservationPlan::assemble(view, &work.asg))
}

/// Dispatch helper mirroring [`Planner::plan`], for call sites that have
/// a [`Planner`] value and an RNG.
pub fn plan_with(
    planner: Planner,
    qrg: &Qrg,
    rng: &mut impl Rng,
) -> Result<ReservationPlan, PlanError> {
    planner.plan(qrg, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::*;
    use crate::{AvailabilityView, Qrg, QrgOptions};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn basic_picks_min_bottleneck_path_to_best_level() {
        let fx = ChainFixture::paper_like();
        let qrg = fx.qrg_with_avail(100.0);
        let plan = plan_basic(&qrg).unwrap();
        assert_eq!(plan.sink_level, 2); // highest level "p"
        assert!((plan.psi - 0.24).abs() < 1e-12);
        // The minimax path routes through c_S level "c", not "b".
        assert_eq!(plan.signature(), vec![(0, 0, 1), (1, 1, 3), (2, 3, 2)]);
    }

    #[test]
    fn basic_degrades_to_lower_levels_as_availability_shrinks() {
        let fx = ChainFixture::paper_like();
        // 20 units: p needs >= 24 on the client link -> q is best.
        let plan = plan_basic(&fx.qrg_with_avail(20.0)).unwrap();
        assert_eq!(plan.sink_level, 1);
        // 11 units: q needs >= 18 -> only r (needs 10) remains.
        let plan = plan_basic(&fx.qrg_with_avail(11.0)).unwrap();
        assert_eq!(plan.sink_level, 0);
        // 3 units: nothing fits.
        assert_eq!(
            plan_basic(&fx.qrg_with_avail(3.0)),
            Err(PlanError::NoFeasiblePlan)
        );
    }

    #[test]
    fn basic_rejects_dags_but_dag_planner_handles_them() {
        let fx = DagFixture::diamond();
        let qrg = fx.qrg_with_avail(100.0);
        assert_eq!(plan_basic(&qrg), Err(PlanError::NotAChain));
        let plan = plan_dag(&qrg).unwrap();
        assert_eq!(plan.sink_level, 1);
        assert!((plan.psi - 0.10).abs() < 1e-12);
    }

    #[test]
    fn dag_planner_matches_basic_on_chains() {
        let fx = ChainFixture::paper_like();
        for avail in [10.0, 20.0, 40.0, 100.0, 1000.0] {
            let qrg = fx.qrg_with_avail(avail);
            match (plan_basic(&qrg), plan_dag(&qrg)) {
                (Ok(a), Ok(b)) => assert_eq!(a, b, "avail {avail}"),
                (Err(a), Err(b)) => assert_eq!(a, b),
                (a, b) => panic!("mismatch at {avail}: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn tradeoff_steps_down_when_trend_is_down() {
        let fx = ChainFixture::paper_like();
        // Neutral trend: identical to basic.
        let qrg = fx.qrg_with_avail(100.0);
        assert_eq!(plan_tradeoff(&qrg).unwrap(), plan_basic(&qrg).unwrap());

        // Bottleneck (bw12) trending down: alpha 0.5.
        // basic: level p with psi .24; bound = .5*.24 = .12;
        // psi(q)=.18 > .12, psi(r)=.10 <= .12 -> tradeoff picks r.
        let mut view = AvailabilityView::new();
        for name in ["cpu0", "cpu1", "bw01"] {
            view.set(fx.space.id(name).unwrap(), 100.0);
        }
        view.set_with_alpha(fx.space.id("bw12").unwrap(), 100.0, 0.5);
        let qrg = Qrg::build(&fx.session, &view, &QrgOptions::default());
        let plan = plan_tradeoff(&qrg).unwrap();
        assert_eq!(plan.sink_level, 0);
        assert!((plan.psi - 0.10).abs() < 1e-12);
    }

    #[test]
    fn tradeoff_falls_back_to_basic_when_no_level_satisfies_bound() {
        let fx = ChainFixture::paper_like();
        let mut view = AvailabilityView::new();
        for name in ["cpu0", "cpu1", "bw01"] {
            view.set(fx.space.id(name).unwrap(), 100.0);
        }
        // alpha so low that even the cheapest level violates the bound:
        // bound = 0.05 * 0.24 = 0.012 < psi(r) = 0.10.
        view.set_with_alpha(fx.space.id("bw12").unwrap(), 100.0, 0.05);
        let qrg = Qrg::build(&fx.session, &view, &QrgOptions::default());
        let plan = plan_tradeoff(&qrg).unwrap();
        assert_eq!(plan.sink_level, 2); // the basic choice
    }

    #[test]
    fn random_reaches_best_level_but_varies_paths() {
        let fx = ChainFixture::paper_like();
        let qrg = fx.qrg_with_avail(100.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut signatures = std::collections::HashSet::new();
        for _ in 0..200 {
            let plan = plan_random(&qrg, &mut rng).unwrap();
            // Always the highest reachable level...
            assert_eq!(plan.sink_level, 2);
            // ...and always a feasible plan with psi within bounds.
            assert!(plan.psi >= 0.24 - 1e-12 && plan.psi <= 1.0);
            signatures.insert(plan.signature());
        }
        // The QRG has several paths to p; random must explore more than one.
        assert!(signatures.len() > 1, "random planner never varied its path");
    }

    #[test]
    fn random_is_never_better_than_basic() {
        let fx = ChainFixture::paper_like();
        let mut rng = StdRng::seed_from_u64(11);
        for avail in [15.0, 25.0, 60.0, 100.0] {
            let qrg = fx.qrg_with_avail(avail);
            if let Ok(basic) = plan_basic(&qrg) {
                for _ in 0..50 {
                    let r = plan_random(&qrg, &mut rng).unwrap();
                    assert_eq!(r.sink_level, basic.sink_level);
                    assert!(r.psi >= basic.psi - 1e-12);
                }
            }
        }
    }

    #[test]
    fn planner_enum_dispatches() {
        let fx = ChainFixture::paper_like();
        let qrg = fx.qrg_with_avail(100.0);
        let mut rng = StdRng::seed_from_u64(3);
        for p in [
            Planner::Basic,
            Planner::Tradeoff,
            Planner::Random,
            Planner::Dag,
        ] {
            let plan = p.plan(&qrg, &mut rng).unwrap();
            assert_eq!(plan.sink_level, 2);
        }
        assert_eq!(
            plan_with(Planner::Basic, &qrg, &mut rng).unwrap().psi,
            plan_basic(&qrg).unwrap().psi
        );
    }
}

#[cfg(test)]
mod edge_case_tests {
    use super::*;
    use crate::{AvailabilityView, Qrg, QrgOptions};
    use qosr_model::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn single_component_session(
        demands: &[(usize, f64)], // (qout, amount); one input level
        n_out: usize,
    ) -> (SessionInstance, ResourceSpace) {
        let schema = QosSchema::new("q", ["x"]);
        let v = |x: u32| QosVector::new(schema.clone(), [x]);
        let mut b = TableTranslation::builder(1, n_out, 1);
        for &(o, d) in demands {
            b = b.entry(0, o, [d]);
        }
        let comp = ComponentSpec::new(
            "only",
            vec![v(0)],
            (1..=n_out as u32).map(v).collect(),
            vec![SlotSpec::new("s", ResourceKind::Compute)],
            Arc::new(b.build()),
        );
        let service =
            Arc::new(ServiceSpec::chain("svc", vec![comp], (1..=n_out as u32).collect()).unwrap());
        let mut space = ResourceSpace::new();
        let rid = space.register("r", ResourceKind::Compute);
        let session =
            SessionInstance::new(service, vec![ComponentBinding::new([rid])], 1.0).unwrap();
        (session, space)
    }

    #[test]
    fn single_component_service_plans() {
        let (session, space) = single_component_session(&[(0, 10.0), (1, 90.0)], 2);
        let view = AvailabilityView::from_fn(space.ids(), |_| 100.0);
        let qrg = Qrg::build(&session, &view, &QrgOptions::default());
        let mut rng = StdRng::seed_from_u64(1);
        for planner in [
            Planner::Basic,
            Planner::Tradeoff,
            Planner::Random,
            Planner::Dag,
        ] {
            let plan = planner.plan(&qrg, &mut rng).unwrap();
            assert_eq!(plan.sink_level, 1);
            assert_eq!(plan.assignments.len(), 1);
            assert!((plan.psi - 0.9).abs() < 1e-12);
        }
    }

    #[test]
    fn zero_demand_translation_yields_weightless_edge() {
        // A translation entry whose demands are all zero: the pair is
        // feasible, the edge weight is 0, and the plan has no bottleneck.
        let (session, space) = single_component_session(&[(0, 0.0)], 1);
        let view = AvailabilityView::from_fn(space.ids(), |_| 100.0);
        let qrg = Qrg::build(&session, &view, &QrgOptions::default());
        assert_eq!(qrg.n_translation_edges(), 1);
        let plan = plan_basic(&qrg).unwrap();
        assert_eq!(plan.psi, 0.0);
        assert!(plan.bottleneck.is_none());
        assert!(plan.total_demand().is_empty());
        // Tradeoff has nothing to trade without a bottleneck.
        assert_eq!(plan_tradeoff(&qrg).unwrap(), plan);
    }

    #[test]
    fn demand_equal_to_availability_is_feasible_at_psi_one() {
        let (session, space) = single_component_session(&[(0, 100.0)], 1);
        let view = AvailabilityView::from_fn(space.ids(), |_| 100.0);
        let qrg = Qrg::build(&session, &view, &QrgOptions::default());
        let plan = plan_basic(&qrg).unwrap();
        assert_eq!(plan.psi, 1.0);
        // One unit less and it is infeasible.
        let view = AvailabilityView::from_fn(space.ids(), |_| 99.999);
        let qrg = Qrg::build(&session, &view, &QrgOptions::default());
        assert_eq!(plan_basic(&qrg), Err(PlanError::NoFeasiblePlan));
    }

    #[test]
    fn best_ranked_sink_wins_even_at_higher_psi() {
        // Level 2 requires far more pressure than level 1; the algorithm
        // is greedy on QoS first (paper: highest possible level, then
        // min bottleneck).
        let (session, space) = single_component_session(&[(0, 1.0), (1, 99.0)], 2);
        let view = AvailabilityView::from_fn(space.ids(), |_| 100.0);
        let qrg = Qrg::build(&session, &view, &QrgOptions::default());
        let plan = plan_basic(&qrg).unwrap();
        assert_eq!(plan.sink_level, 1);
        assert!((plan.psi - 0.99).abs() < 1e-12);
    }

    #[test]
    fn ranking_permutation_changes_the_chosen_sink() {
        // Same table, inverted ranking: the planner must follow the
        // user's linear order, not the level index.
        let schema = QosSchema::new("q", ["x"]);
        let v = |x: u32| QosVector::new(schema.clone(), [x]);
        let comp = ComponentSpec::new(
            "only",
            vec![v(0)],
            vec![v(1), v(2)],
            vec![SlotSpec::new("s", ResourceKind::Compute)],
            Arc::new(
                TableTranslation::builder(1, 2, 1)
                    .entry(0, 0, [10.0])
                    .entry(0, 1, [20.0])
                    .build(),
            ),
        );
        // Rank level 0 best.
        let service = Arc::new(ServiceSpec::chain("svc", vec![comp], vec![2, 1]).unwrap());
        let mut space = ResourceSpace::new();
        let rid = space.register("r", ResourceKind::Compute);
        let session =
            SessionInstance::new(service, vec![ComponentBinding::new([rid])], 1.0).unwrap();
        let view = AvailabilityView::from_fn(space.ids(), |_| 100.0);
        let qrg = Qrg::build(&session, &view, &QrgOptions::default());
        let plan = plan_basic(&qrg).unwrap();
        assert_eq!(plan.sink_level, 0);
        assert_eq!(plan.rank, 2);
    }
}
