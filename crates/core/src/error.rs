//! Planner errors.

use std::fmt;

/// Errors returned by the reservation planners.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// No end-to-end QoS level is reachable under the current resource
    /// availability — there is no feasible reservation plan at all.
    NoFeasiblePlan,
    /// The planner only supports chain-shaped dependency graphs (use
    /// [`crate::plan_dag`] for DAGs).
    NotAChain,
    /// Pass II of the DAG heuristic failed to assemble an embedded graph
    /// for the sink level that Pass I marked reachable — the paper's
    /// documented limitation (1) of the heuristic (§4.3.2).
    BacktrackFailed {
        /// The sink output-level index the backtracking started from.
        sink_level: usize,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::NoFeasiblePlan => {
                write!(
                    f,
                    "no end-to-end QoS level is reachable under current availability"
                )
            }
            PlanError::NotAChain => {
                write!(
                    f,
                    "this planner requires a chain dependency graph; use plan_dag"
                )
            }
            PlanError::BacktrackFailed { sink_level } => write!(
                f,
                "DAG heuristic could not assemble an embedded graph for sink level {sink_level}"
            ),
        }
    }
}

impl std::error::Error for PlanError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(PlanError::NoFeasiblePlan
            .to_string()
            .contains("no end-to-end"));
        assert!(PlanError::BacktrackFailed { sink_level: 2 }
            .to_string()
            .contains("level 2"));
        let _: &dyn std::error::Error = &PlanError::NotAChain;
    }
}
