//! # qosr-core — end-to-end multi-resource reservation planning
//!
//! This crate implements section 4 of *"QoS and Contention-Aware
//! Multi-Resource Reservation"* (Xu, Nahrstedt, Wichadakul; HPDC 2000) —
//! the paper's main contribution:
//!
//! 1. **QoS-Resource Graph (QRG) construction** (§4.1.1): given a
//!    [`qosr_model::SessionInstance`] and a snapshot of resource
//!    availability ([`AvailabilityView`]), build the graph whose nodes are
//!    the `Q^in`/`Q^out` levels of every service component. A
//!    *translation edge* `Q^in → Q^out` exists iff the component's
//!    resource requirement `R^req = T_c(Q^in, Q^out)` fits within the
//!    current availability; its weight is the paper's contention index of
//!    the edge, `Ψ = max_i (r_i^req / r_i^avail)` (eqs. 2–3).
//!    *Equivalence edges* (weight 0) connect each `Q^out` to the
//!    downstream `Q^in` it feeds.
//! 2. **Plan selection** (§4.1.2): every source→sink path is a feasible
//!    end-to-end reservation plan; the algorithm picks, among the paths
//!    reaching the highest-ranked reachable end-to-end QoS level, the one
//!    minimizing the *bottleneck* contention `Ψ_P = max_e Ψ_e` — a
//!    shortest path with `+` redefined as `max`, computed by
//!    [`relax`] with the paper's tie-breaking rule.
//! 3. **Planners**: [`plan_basic`] (the basic algorithm), [`plan_tradeoff`]
//!    (§4.3.1 — trades end-to-end QoS for overall success rate using the
//!    availability-change index α), [`plan_random`] (the
//!    contention-*unaware* baseline of §5), and [`plan_dag`] (§4.3.2 —
//!    the two-pass heuristic for DAG-shaped dependency graphs).
//!
//! ```
//! use std::sync::Arc;
//! use qosr_model::*;
//! use qosr_core::*;
//!
//! // One component, two achievable output levels, one CPU slot.
//! let schema = QosSchema::new("q", ["level"]);
//! let lv = |v: u32| QosVector::new(schema.clone(), [v]);
//! let comp = ComponentSpec::new(
//!     "encoder",
//!     vec![lv(0)],
//!     vec![lv(1), lv(2)],
//!     vec![SlotSpec::new("cpu", ResourceKind::Compute)],
//!     Arc::new(TableTranslation::builder(1, 2, 1)
//!         .entry(0, 0, [10.0])
//!         .entry(0, 1, [80.0])
//!         .build()),
//! );
//! let service = Arc::new(ServiceSpec::chain("svc", vec![comp], vec![1, 2]).unwrap());
//!
//! let mut space = ResourceSpace::new();
//! let cpu = space.register("H1.cpu", ResourceKind::Compute);
//! let session = SessionInstance::new(
//!     service, vec![ComponentBinding::new([cpu])], 1.0).unwrap();
//!
//! let mut view = AvailabilityView::new();
//! view.set(cpu, 100.0);
//! let qrg = Qrg::build(&session, &view, &QrgOptions::default());
//! let plan = plan_basic(&qrg).unwrap();
//! assert_eq!(plan.sink_level, 1);            // highest level reachable
//! assert!((plan.psi - 0.8).abs() < 1e-12);   // 80 / 100
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod availability;
mod backtrack;
mod ctx;
mod delta;
mod error;
mod plan;
mod planner;
mod pool;
mod psi;
mod qrg;
mod relax;
mod skeleton;
mod snapshot;
#[cfg(test)]
pub(crate) mod test_fixtures;
mod view;

pub use availability::AvailabilityView;
pub use ctx::{CandidateEval, PlanCtx};
pub use delta::{
    AvailabilityDelta, DeltaConfig, FullReason, RelaxCache, RepairOutcome, RepairStats,
};
pub use error::PlanError;
pub use plan::{Bottleneck, PlanAssignment, ReservationPlan};
pub use planner::{plan_basic, plan_dag, plan_random, plan_tradeoff, plan_with, Planner};
pub use pool::{PlanCtxPool, PooledCtx};
pub use psi::PsiDef;
pub use qrg::{EdgeKind, NodeRef, Qrg, QrgEdge, QrgOptions};
pub use relax::{relax, Relaxation};
pub use skeleton::QrgSkeleton;
pub use snapshot::EpochSnapshot;
pub use view::PlanWorkspace;
