//! Availability-independent QRG structure, cached per [`ServiceSpec`].
//!
//! Everything about a QRG except edge weights and feasibility is a pure
//! function of the service spec: the node layout, which `(Q^in, Q^out)`
//! cells of each translation table are populated (*candidate* translation
//! edges), the equivalence edges, the adjacency lists, the relaxation
//! order, and the sink ranking. Re-deriving all of that on every planning
//! call — which [`crate::Qrg::build`] does — dominates the planner's
//! runtime in steady state, where the same handful of service specs is
//! planned over and over against fresh availability snapshots.
//!
//! A `QrgSkeleton` hoists that work out of the hot path. It is computed
//! once per spec (memoized behind an [`Arc`], keyed on
//! [`ServiceSpec::uid`]) and holds:
//!
//! * the node layout (`in_offset`/`out_offset`/`node_refs`),
//! * all candidate edges in exactly the construction order of
//!   [`crate::Qrg::build`] — so the feasible subset under any
//!   availability is order-isomorphic to the legacy edge ids,
//! * flat CSR adjacency (`in_start`+`in_ids`, `out_start`+`out_ids`)
//!   instead of per-node `Vec<Vec<u32>>`,
//! * each candidate's *unscaled* `(slot, amount)` demand pairs, so a
//!   [`crate::PlanCtx`] can bind and scale them per session without
//!   consulting the translation tables again,
//! * an O(1) `(component, qin, qout) → candidate` lookup table,
//! * the cached relaxation order and best-first sink ranking.

use crate::NodeRef;
use qosr_model::ServiceSpec;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock, Weak};

/// One candidate edge: a populated translation cell or an equivalence
/// link. Whether a translation candidate is *feasible* depends on the
/// availability snapshot and lives in [`crate::PlanCtx`], not here.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Candidate {
    /// Source node index.
    pub from: u32,
    /// Target node index.
    pub to: u32,
    /// `(component, qin, qout)` for translation candidates; `None` for
    /// equivalence edges.
    pub pair: Option<(u32, u32, u32)>,
}

/// The availability-independent part of a QRG. See the module docs.
#[derive(Debug)]
pub struct QrgSkeleton {
    service: Arc<ServiceSpec>,
    /// Node-index offsets: `In(c, i)` is node `in_offset[c] + i`.
    pub(crate) in_offset: Vec<usize>,
    /// Node-index offsets: `Out(c, j)` is node `out_offset[c] + j`.
    pub(crate) out_offset: Vec<usize>,
    pub(crate) node_refs: Vec<NodeRef>,
    pub(crate) source_node: usize,
    /// Candidate edges, in [`crate::Qrg::build`]'s construction order.
    pub(crate) candidates: Vec<Candidate>,
    /// Unscaled demand segment of candidate `e`:
    /// `slot_demands[d_off[e] .. d_off[e + 1]]` (empty for equivalence
    /// edges), each entry a `(slot, amount)` pair of the translation
    /// table.
    pub(crate) d_off: Vec<u32>,
    pub(crate) slot_demands: Vec<(u32, f64)>,
    /// CSR incoming adjacency: candidates into node `n` are
    /// `in_ids[in_start[n] .. in_start[n + 1]]`.
    pub(crate) in_start: Vec<u32>,
    pub(crate) in_ids: Vec<u32>,
    /// CSR outgoing adjacency, same layout.
    pub(crate) out_start: Vec<u32>,
    pub(crate) out_ids: Vec<u32>,
    /// Nodes in relaxation (topological) order.
    pub(crate) relax_order: Vec<usize>,
    /// Sink output levels ordered best-first (cached
    /// [`ServiceSpec::sink_rank_order`]).
    pub(crate) sink_order: Vec<usize>,
    /// `(c, i, j) → candidate` lookup:
    /// `pair_edge[pair_base[c] + i * n_out[c] + j]`, `u32::MAX` when the
    /// table cell is unpopulated.
    pub(crate) pair_base: Vec<u32>,
    pub(crate) pair_edge: Vec<u32>,
    /// Output-level count per component (the `pair_edge` row stride).
    pub(crate) n_out: Vec<u32>,
}

/// Process-wide skeleton memo. Holds weak references so dropping every
/// session of a spec also drops its skeleton.
fn cache() -> &'static Mutex<HashMap<u64, Weak<QrgSkeleton>>> {
    static CACHE: OnceLock<Mutex<HashMap<u64, Weak<QrgSkeleton>>>> = OnceLock::new();
    CACHE.get_or_init(Default::default)
}

impl QrgSkeleton {
    /// The memoized skeleton of `service`: computed on first call,
    /// shared on every later call with the same spec (keyed on
    /// [`ServiceSpec::uid`]).
    pub fn shared(service: &Arc<ServiceSpec>) -> Arc<QrgSkeleton> {
        let mut cache = cache().lock().expect("skeleton cache poisoned");
        if let Some(sk) = cache.get(&service.uid()).and_then(Weak::upgrade) {
            qosr_obs::Counters::global().record_skeleton_hit();
            return sk;
        }
        qosr_obs::Counters::global().record_skeleton_miss();
        let sk = Arc::new(QrgSkeleton::build(service.clone()));
        cache.retain(|_, w| w.strong_count() > 0);
        cache.insert(service.uid(), Arc::downgrade(&sk));
        sk
    }

    /// Computes the skeleton of `service` (unmemoized; prefer
    /// [`QrgSkeleton::shared`]).
    pub fn build(service: Arc<ServiceSpec>) -> QrgSkeleton {
        let graph = service.graph();
        let k = service.components().len();

        let mut in_offset = Vec::with_capacity(k);
        let mut out_offset = Vec::with_capacity(k);
        let mut node_refs = Vec::new();
        for (c, comp) in service.components().iter().enumerate() {
            in_offset.push(node_refs.len());
            for level in 0..comp.input_levels().len() {
                node_refs.push(NodeRef::In {
                    component: c,
                    level,
                });
            }
            out_offset.push(node_refs.len());
            for level in 0..comp.output_levels().len() {
                node_refs.push(NodeRef::Out {
                    component: c,
                    level,
                });
            }
        }
        let n_nodes = node_refs.len();

        let mut candidates: Vec<Candidate> = Vec::new();
        let mut d_off: Vec<u32> = vec![0];
        let mut slot_demands: Vec<(u32, f64)> = Vec::new();
        let mut in_lists: Vec<Vec<u32>> = vec![Vec::new(); n_nodes];
        let mut out_lists: Vec<Vec<u32>> = vec![Vec::new(); n_nodes];
        let mut pair_base: Vec<u32> = Vec::with_capacity(k);
        let mut pair_edge: Vec<u32> = Vec::new();
        let mut n_out: Vec<u32> = Vec::with_capacity(k);

        for (c, comp) in service.components().iter().enumerate() {
            let n_in_c = comp.input_levels().len();
            let n_out_c = comp.output_levels().len();
            pair_base.push(u32::try_from(pair_edge.len()).expect("QRG too large"));
            n_out.push(n_out_c as u32);
            pair_edge.resize(pair_edge.len() + n_in_c * n_out_c, u32::MAX);
            let base = *pair_base.last().unwrap() as usize;

            // Candidate translation edges: every populated table cell, in
            // the same (i, j) order Qrg::build scans.
            for i in 0..n_in_c {
                for j in 0..n_out_c {
                    let Some(slots) = comp.translate(i, j) else {
                        continue;
                    };
                    let id = u32::try_from(candidates.len()).expect("QRG too large");
                    let from = (in_offset[c] + i) as u32;
                    let to = (out_offset[c] + j) as u32;
                    in_lists[to as usize].push(id);
                    out_lists[from as usize].push(id);
                    pair_edge[base + i * n_out_c + j] = id;
                    slot_demands.extend(slots.iter().map(|(slot, amount)| (slot as u32, amount)));
                    d_off.push(u32::try_from(slot_demands.len()).expect("QRG too large"));
                    candidates.push(Candidate {
                        from,
                        to,
                        pair: Some((c as u32, i as u32, j as u32)),
                    });
                }
            }
            // Equivalence edges into each of c's input levels, one per
            // predecessor.
            for i in 0..n_in_c {
                let preds = graph.preds(c);
                for (pos, &u) in preds.iter().enumerate() {
                    let j = service.link(c, i)[pos];
                    let id = u32::try_from(candidates.len()).expect("QRG too large");
                    let from = (out_offset[u] + j) as u32;
                    let to = (in_offset[c] + i) as u32;
                    in_lists[to as usize].push(id);
                    out_lists[from as usize].push(id);
                    d_off.push(*d_off.last().unwrap());
                    candidates.push(Candidate {
                        from,
                        to,
                        pair: None,
                    });
                }
            }
        }

        // Flatten the adjacency lists into CSR form, preserving per-node
        // push order (= candidate-id order, as in Qrg::build).
        let flatten = |lists: &[Vec<u32>]| {
            let mut start = Vec::with_capacity(lists.len() + 1);
            let mut ids = Vec::with_capacity(candidates.len());
            start.push(0u32);
            for list in lists {
                ids.extend_from_slice(list);
                start.push(u32::try_from(ids.len()).expect("QRG too large"));
            }
            (start, ids)
        };
        let (in_start, in_ids) = flatten(&in_lists);
        let (out_start, out_ids) = flatten(&out_lists);

        let mut relax_order = Vec::with_capacity(n_nodes);
        for &c in graph.topo_order() {
            let comp = &service.components()[c];
            for i in 0..comp.input_levels().len() {
                relax_order.push(in_offset[c] + i);
            }
            for j in 0..comp.output_levels().len() {
                relax_order.push(out_offset[c] + j);
            }
        }

        let source_node = in_offset[graph.source()];
        let sink_order = service.sink_rank_order();

        QrgSkeleton {
            service,
            in_offset,
            out_offset,
            node_refs,
            source_node,
            candidates,
            d_off,
            slot_demands,
            in_start,
            in_ids,
            out_start,
            out_ids,
            relax_order,
            sink_order,
            pair_base,
            pair_edge,
            n_out,
        }
    }

    /// The service this skeleton describes.
    pub fn service(&self) -> &Arc<ServiceSpec> {
        &self.service
    }

    /// Total number of QRG nodes.
    pub fn n_nodes(&self) -> usize {
        self.node_refs.len()
    }

    /// Total number of candidate edges (populated translation cells plus
    /// equivalence edges).
    pub fn n_candidates(&self) -> usize {
        self.candidates.len()
    }

    /// The candidate id of translation cell `(c, i, j)`, populated or
    /// not.
    pub(crate) fn pair_candidate(&self, c: usize, i: usize, j: usize) -> Option<u32> {
        let idx = self.pair_base[c] as usize + i * self.n_out[c] as usize + j;
        let id = self.pair_edge[idx];
        (id != u32::MAX).then_some(id)
    }

    /// The unscaled `(slot, amount)` demand pairs of candidate `e`.
    pub(crate) fn slot_demand(&self, e: u32) -> &[(u32, f64)] {
        &self.slot_demands[self.d_off[e as usize] as usize..self.d_off[e as usize + 1] as usize]
    }

    /// Candidates into node `n`.
    pub(crate) fn in_edges(&self, n: usize) -> &[u32] {
        &self.in_ids[self.in_start[n] as usize..self.in_start[n + 1] as usize]
    }

    /// Candidates out of node `n`.
    pub(crate) fn out_edges(&self, n: usize) -> &[u32] {
        &self.out_ids[self.out_start[n] as usize..self.out_start[n + 1] as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::*;
    use crate::{EdgeKind, Qrg};

    /// The skeleton's candidate list must enumerate, per component,
    /// exactly the populated translation cells then the equivalence
    /// edges — the same order Qrg::build creates edges in, so feasible
    /// subsets are order-isomorphic.
    #[test]
    fn candidate_order_matches_qrg_build_under_full_availability() {
        for (session, space) in [
            {
                let fx = ChainFixture::paper_like();
                (fx.session, fx.space)
            },
            {
                let fx = DagFixture::diamond();
                (fx.session, fx.space)
            },
        ] {
            let view = crate::AvailabilityView::from_fn(space.ids(), |_| 1e9);
            let qrg = Qrg::build(&session, &view, &crate::QrgOptions::default());
            let sk = QrgSkeleton::build(session.service().clone());
            // With abundant availability every candidate is feasible, so
            // the two edge lists must match 1:1.
            assert_eq!(sk.n_candidates(), qrg.edges().len());
            for (id, cand) in sk.candidates.iter().enumerate() {
                let edge = qrg.edge(id as u32);
                assert_eq!(cand.from as usize, edge.from);
                assert_eq!(cand.to as usize, edge.to);
                match (&edge.kind, cand.pair) {
                    (
                        EdgeKind::Translation {
                            component,
                            qin,
                            qout,
                            ..
                        },
                        Some((c, i, j)),
                    ) => {
                        assert_eq!(
                            (*component, *qin, *qout),
                            (c as usize, i as usize, j as usize)
                        );
                    }
                    (EdgeKind::Equivalence, None) => {}
                    (k, p) => panic!("kind mismatch at {id}: {k:?} vs {p:?}"),
                }
            }
            assert_eq!(sk.relax_order, qrg.relax_order());
            for n in 0..sk.n_nodes() {
                assert_eq!(sk.in_edges(n), qrg.in_edges(n), "in_edges of node {n}");
                assert_eq!(sk.out_edges(n), qrg.out_edges(n), "out_edges of node {n}");
            }
        }
    }

    #[test]
    fn shared_memoizes_per_spec() {
        let fx = ChainFixture::paper_like();
        let a = QrgSkeleton::shared(fx.session.service());
        let b = QrgSkeleton::shared(fx.session.service());
        assert!(Arc::ptr_eq(&a, &b));
        // A structurally identical but distinct spec gets its own entry.
        let fx2 = ChainFixture::paper_like();
        let c = QrgSkeleton::shared(fx2.session.service());
        assert!(!Arc::ptr_eq(&a, &c));
    }
}
