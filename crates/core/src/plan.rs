//! End-to-end multi-resource reservation plans.

use crate::backtrack::Assignment;
use crate::view::PlanView;
use qosr_model::{QosVector, ResourceId, ResourceVector};

/// The bottleneck of a reservation plan: the resource with the highest
/// contention index ψ across all the plan's reservations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bottleneck {
    /// The bottleneck resource.
    pub resource: ResourceId,
    /// Its contention index ψ.
    pub psi: f64,
    /// Its availability-change index α (§4.3.1) at snapshot time.
    pub alpha: f64,
}

/// One component's part of a reservation plan: the selected
/// `(Q^in, Q^out)` pair and the resources to reserve for it.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanAssignment {
    /// Component index within the service.
    pub component: usize,
    /// Selected input QoS level index.
    pub qin: usize,
    /// Selected output QoS level index.
    pub qout: usize,
    /// The scaled resource demand to reserve.
    pub demand: ResourceVector,
}

/// A complete end-to-end multi-resource reservation plan for one service
/// session: per-component level selections and reservations, the achieved
/// end-to-end QoS level, and the plan's bottleneck contention Ψ.
#[derive(Debug, Clone, PartialEq)]
pub struct ReservationPlan {
    /// Per-component assignments, in component-index order.
    pub assignments: Vec<PlanAssignment>,
    /// The sink output-level index achieved (the end-to-end QoS level).
    pub sink_level: usize,
    /// The rank of that level in the service's linear QoS order (higher =
    /// better).
    pub rank: u32,
    /// The end-to-end QoS vector achieved.
    pub end_to_end: QosVector,
    /// The plan's bottleneck contention `Ψ_P` / `Ψ_G` (max edge Ψ over
    /// the plan).
    pub psi: f64,
    /// The bottleneck resource attaining `psi` (absent only when every
    /// demand in the plan is empty).
    pub bottleneck: Option<Bottleneck>,
}

impl ReservationPlan {
    /// Assembles a plan from backtracked assignments.
    pub(crate) fn assemble<V: PlanView>(view: &V, assignments: &[Assignment]) -> ReservationPlan {
        let service = view.service();
        let mut out = Vec::with_capacity(assignments.len());
        let mut psi = 0.0f64;
        let mut bottleneck: Option<Bottleneck> = None;
        let mut sink_level = 0;
        let sink = service.graph().sink();
        for a in assignments {
            if a.component == sink {
                sink_level = a.qout;
            }
            if let Some(b) = view.edge_bottleneck(a.edge) {
                if bottleneck.is_none() || b.psi > psi {
                    psi = b.psi;
                    bottleneck = Some(Bottleneck {
                        resource: b.resource,
                        psi: b.psi,
                        alpha: b.alpha,
                    });
                }
            }
            out.push(PlanAssignment {
                component: a.component,
                qin: a.qin,
                qout: a.qout,
                demand: view.edge_demand(a.edge),
            });
        }
        ReservationPlan {
            assignments: out,
            sink_level,
            rank: service.sink_ranking()[sink_level],
            end_to_end: service.end_to_end_levels()[sink_level].clone(),
            psi,
            bottleneck,
        }
    }

    /// The total demand of the plan across all components (what the
    /// QoSProxies will ask the brokers to reserve).
    pub fn total_demand(&self) -> ResourceVector {
        self.assignments
            .iter()
            .fold(ResourceVector::empty(), |acc, a| acc.add(&a.demand))
    }

    /// Compact `(component, qin, qout)` triple list — the "selected
    /// reservation path" identity used by the paper's Tables 1–2.
    pub fn signature(&self) -> Vec<(usize, usize, usize)> {
        self.assignments
            .iter()
            .map(|a| (a.component, a.qin, a.qout))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use crate::test_fixtures::*;
    use crate::{plan_basic, relax::relax};

    #[test]
    fn assemble_computes_bottleneck_and_totals() {
        let fx = ChainFixture::paper_like();
        let qrg = fx.qrg_with_avail(100.0);
        let plan = plan_basic(&qrg).unwrap();
        assert_eq!(plan.sink_level, 2);
        assert_eq!(plan.rank, 3);
        assert!((plan.psi - 0.24).abs() < 1e-12);
        let b = plan.bottleneck.unwrap();
        // Bottleneck is the proxy->client bandwidth (demand 24 of 100).
        assert_eq!(b.resource, fx.space.id("bw12").unwrap());
        assert!((b.psi - 0.24).abs() < 1e-12);
        // Totals: cpu0=12, cpu1=20, bw01=16, bw12=24.
        let total = plan.total_demand();
        assert_eq!(total.get(fx.space.id("cpu0").unwrap()), 12.0);
        assert_eq!(total.get(fx.space.id("cpu1").unwrap()), 20.0);
        assert_eq!(total.get(fx.space.id("bw01").unwrap()), 16.0);
        assert_eq!(total.get(fx.space.id("bw12").unwrap()), 24.0);
        assert_eq!(plan.signature(), vec![(0, 0, 1), (1, 1, 3), (2, 3, 2)]);
        assert_eq!(plan.end_to_end.values(), &[3]);
    }

    #[test]
    fn relaxation_distance_matches_plan_psi_on_chains() {
        let fx = ChainFixture::paper_like();
        for avail in [30.0, 50.0, 100.0, 400.0] {
            let qrg = fx.qrg_with_avail(avail);
            let r = relax(&qrg);
            if let Ok(plan) = plan_basic(&qrg) {
                let d = r.dist[qrg.sink_node(plan.sink_level)];
                assert!(
                    (plan.psi - d).abs() < 1e-12,
                    "avail {avail}: plan psi {} != dist {d}",
                    plan.psi
                );
            }
        }
    }
}
