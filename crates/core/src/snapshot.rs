//! Epoch-stamped availability snapshots for batched admission.

use crate::availability::AvailabilityView;
use crate::delta::AvailabilityDelta;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-global snapshot generation counter. Epoch numbers restart at
/// zero per queue (and may wrap), so the delta-repair cache keys its
/// same-snapshot fast path on this token instead: two distinct
/// snapshots never share a generation, even across queues or after an
/// epoch wrap. Starts at 1 so 0 can never collide with a real token.
static GENERATION: AtomicU64 = AtomicU64::new(1);

/// One epoch-stamped availability snapshot, shared by every request in a
/// batched admission round.
///
/// The batched pipeline collects availability from all brokers **once**
/// per round instead of once per request, stamps the result with a
/// monotonically increasing epoch, and lets every worker thread plan
/// against the same immutable view. The epoch identifies the round in
/// trace events and makes the staleness of any plan explicit: a plan
/// carries the epoch it was computed against, and the sequential commit
/// phase revalidates it against a *working copy* of the same snapshot
/// that is debited as earlier arrivals commit.
#[derive(Debug, Clone)]
pub struct EpochSnapshot {
    epoch: u64,
    generation: u64,
    taken_at: f64,
    view: AvailabilityView,
}

impl EpochSnapshot {
    /// Wraps a collected availability view with its epoch stamp and
    /// collection time. A process-unique generation token is minted
    /// here (see [`EpochSnapshot::generation`]).
    pub fn new(epoch: u64, taken_at: f64, view: AvailabilityView) -> Self {
        EpochSnapshot {
            epoch,
            generation: GENERATION.fetch_add(1, Ordering::Relaxed),
            taken_at,
            view,
        }
    }

    /// The admission round this snapshot was taken for.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// A process-unique token identifying this exact snapshot. Unlike
    /// [`EpochSnapshot::epoch`] it never repeats (not across queues,
    /// not after an epoch wrap), which is what lets
    /// [`crate::PlanCtx::prepare_epoch`] treat a matching token as
    /// "same snapshot, nothing changed" without comparing views.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The quantized [`AvailabilityDelta`] from `prev`'s view to this
    /// snapshot's view (see [`crate::DeltaConfig::psi_threshold`]).
    pub fn delta_from(&self, prev: &EpochSnapshot, threshold: f64) -> AvailabilityDelta {
        AvailabilityDelta::between(&prev.view, &self.view, threshold)
    }

    /// Simulation/wall time the snapshot was collected at.
    pub fn taken_at(&self) -> f64 {
        self.taken_at
    }

    /// The immutable availability view all requests in the round plan
    /// against.
    pub fn view(&self) -> &AvailabilityView {
        &self.view
    }

    /// A mutable *working copy* of the view for the commit phase to
    /// debit as plans from this round commit.
    pub fn working(&self) -> AvailabilityView {
        self.view.clone()
    }

    /// Consumes the snapshot, yielding the underlying view.
    pub fn into_view(self) -> AvailabilityView {
        self.view
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qosr_model::ResourceId;

    #[test]
    fn snapshot_wraps_view_and_working_copy_is_independent() {
        let mut view = AvailabilityView::new();
        view.set(ResourceId(0), 100.0);
        let snap = EpochSnapshot::new(7, 3.5, view);
        assert_eq!(snap.epoch(), 7);
        assert_eq!(snap.taken_at(), 3.5);
        let mut working = snap.working();
        working.debit(ResourceId(0), 40.0);
        assert_eq!(working.avail(ResourceId(0)), 60.0);
        assert_eq!(
            snap.view().avail(ResourceId(0)),
            100.0,
            "the snapshot itself is immutable"
        );
    }

    #[test]
    fn generations_are_unique_even_when_epochs_repeat() {
        let view = AvailabilityView::new();
        let a = EpochSnapshot::new(u64::MAX, 0.0, view.clone());
        let b = EpochSnapshot::new(0, 0.0, view.clone()); // wrapped epoch
        let c = EpochSnapshot::new(0, 0.0, view); // repeated epoch
        assert_ne!(a.generation(), b.generation());
        assert_ne!(b.generation(), c.generation());
        assert_ne!(a.generation(), c.generation());
    }
}
