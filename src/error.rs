//! The unified workspace error type.
//!
//! Library code keeps its layer-local errors ([`qosr_core::PlanError`],
//! [`qosr_broker::ReserveError`], [`qosr_broker::FaultError`],
//! [`qosr_broker::EstablishError`]), but applications sitting on the
//! facade — the CLI, the simulator binaries, downstream users — want one
//! type to match on. [`QosrError`] is that type: every layer error
//! converts into it via `From`, so `?` works across layer boundaries,
//! and it is `#[non_exhaustive]` so new failure classes can be added
//! without a breaking release.

use qosr_broker::{EstablishError, FaultError, ReserveError};
use qosr_core::PlanError;
use std::fmt;

/// Any failure the `qosr` workspace can report, unified for facade
/// users. Convert layer errors with `From`/`?`; match non-exhaustively.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum QosrError {
    /// Planning found no feasible end-to-end reservation plan (or the
    /// DAG heuristic failed). See [`qosr_core::PlanError`].
    Plan(PlanError),
    /// A broker rejected a reservation. See
    /// [`qosr_broker::ReserveError`].
    Reserve(ReserveError),
    /// An injected fault (crash, lost message, failed commit)
    /// interrupted a protocol run. See [`qosr_broker::FaultError`].
    Fault(FaultError),
    /// The best feasible plan fell below the request's
    /// [`qos_min`](qosr_broker::SessionRequest::qos_min) floor.
    QosBelowMin {
        /// The best rank planning could achieve.
        achieved: u32,
        /// The floor the request demanded.
        min: u32,
    },
    /// The request's [`deadline`](qosr_broker::SessionRequest::deadline)
    /// had already passed when admission was attempted.
    DeadlineExpired {
        /// The deadline the request carried, in time units.
        deadline: f64,
        /// The time admission was attempted at.
        now: f64,
    },
}

impl fmt::Display for QosrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QosrError::Plan(e) => write!(f, "planning failed: {e}"),
            QosrError::Reserve(e) => write!(f, "reservation failed: {e}"),
            QosrError::Fault(e) => write!(f, "establishment faulted: {e}"),
            QosrError::QosBelowMin { achieved, min } => {
                write!(f, "best plan rank {achieved} below requested minimum {min}")
            }
            QosrError::DeadlineExpired { deadline, now } => {
                write!(f, "deadline {deadline} already passed at {now}")
            }
        }
    }
}

impl std::error::Error for QosrError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QosrError::Plan(e) => Some(e),
            QosrError::Reserve(e) => Some(e),
            QosrError::Fault(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PlanError> for QosrError {
    fn from(e: PlanError) -> Self {
        QosrError::Plan(e)
    }
}

impl From<ReserveError> for QosrError {
    fn from(e: ReserveError) -> Self {
        QosrError::Reserve(e)
    }
}

impl From<FaultError> for QosrError {
    fn from(e: FaultError) -> Self {
        QosrError::Fault(e)
    }
}

impl From<EstablishError> for QosrError {
    fn from(e: EstablishError) -> Self {
        match e {
            EstablishError::Plan(e) => QosrError::Plan(e),
            EstablishError::Reserve(e) => QosrError::Reserve(e),
            EstablishError::Fault(e) => QosrError::Fault(e),
            EstablishError::QosBelowMin { achieved, min } => {
                QosrError::QosBelowMin { achieved, min }
            }
            EstablishError::DeadlineExpired { deadline, now } => {
                QosrError::DeadlineExpired { deadline, now }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qosr_model::ResourceId;

    #[test]
    fn every_layer_error_converts_and_displays() {
        let e: QosrError = PlanError::NoFeasiblePlan.into();
        assert!(matches!(e, QosrError::Plan(_)));
        assert!(std::error::Error::source(&e).is_some());

        let e: QosrError = ReserveError::Insufficient {
            resource: ResourceId(1),
            requested: 9.0,
            available: 3.0,
        }
        .into();
        assert!(e.to_string().contains("reservation failed"));

        let e: QosrError = FaultError::HostDown { host: "H".into() }.into();
        assert!(e.to_string().contains("host H is down"));

        let e: QosrError = EstablishError::QosBelowMin {
            achieved: 1,
            min: 3,
        }
        .into();
        assert!(matches!(
            e,
            QosrError::QosBelowMin {
                achieved: 1,
                min: 3
            }
        ));
        assert!(std::error::Error::source(&e).is_none());

        let e: QosrError = EstablishError::DeadlineExpired {
            deadline: 4.0,
            now: 6.0,
        }
        .into();
        assert!(e.to_string().contains("already passed"));
    }
}
