//! # qosr — QoS and contention-aware multi-resource reservation
//!
//! Facade crate re-exporting the full public API of the `qosr` workspace,
//! a reproduction of *"QoS and Contention-Aware Multi-Resource
//! Reservation"* (Xu, Nahrstedt, Wichadakul; HPDC 2000).
//!
//! * [`model`] — the component-based QoS-Resource Model (§2).
//! * [`core`] — the QoS-Resource Graph and the reservation-plan
//!   algorithms: *basic*, *tradeoff*, *random*, and the two-pass DAG
//!   heuristic (§4).
//! * [`broker`] — resource brokers, availability histories, QoSProxies
//!   and the coordinated session-establishment protocol (§3), including
//!   deterministic fault injection and two-phase commit recovery.
//! * [`net`] — network topologies, routing, and two-level end-to-end
//!   bandwidth brokering (§3).
//! * [`sim`] — the discrete-event simulation used for the paper's
//!   performance study (§5).
//! * [`obs`] — zero-cost-when-disabled observability: session-lifecycle
//!   trace events, sinks (`NullSink`, `JsonlSink`), counters, trace
//!   replay/summaries, and the live telemetry layer — phase-timing
//!   spans, HDR-style latency/Ψ histograms, utilization gauges, and a
//!   Prometheus-text metrics exposition (`MetricsRegistry`).
//!
//! See `examples/quickstart.rs` for a guided tour.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;

pub use error::QosrError;

pub use qosr_broker as broker;
pub use qosr_core as core;
pub use qosr_model as model;
pub use qosr_net as net;
pub use qosr_obs as obs;
pub use qosr_sim as sim;

/// Commonly used items, for `use qosr::prelude::*`.
///
/// ```
/// use qosr::prelude::*;
/// use std::sync::Arc;
///
/// // One-component service planned against a snapshot via the facade.
/// let schema = QosSchema::new("q", ["level"]);
/// let comp = ComponentSpec::new(
///     "c",
///     vec![QosVector::new(schema.clone(), [0])],
///     vec![QosVector::new(schema.clone(), [1])],
///     vec![SlotSpec::new("cpu", ResourceKind::Compute)],
///     Arc::new(TableTranslation::builder(1, 1, 1).entry(0, 0, [10.0]).build()),
/// );
/// let service = Arc::new(ServiceSpec::chain("svc", vec![comp], vec![1]).unwrap());
/// let mut space = ResourceSpace::new();
/// let cpu = space.register("cpu", ResourceKind::Compute);
/// let session = SessionInstance::new(
///     service, vec![ComponentBinding::new([cpu])], 1.0).unwrap();
/// let mut view = AvailabilityView::new();
/// view.set(cpu, 40.0);
/// let plan = plan_basic(&Qrg::build(&session, &view, &Default::default())).unwrap();
/// assert_eq!(plan.psi, 0.25);
/// ```
pub mod prelude {
    pub use crate::QosrError;
    pub use qosr_broker::{
        AdmissionConfig, AdmissionQueue, AdvanceRegistry, AlphaPolicy, Broker, BrokerRegistry,
        Coordinator, EstablishOptions, EstablishOutcome, FaultInjector, HostMessageStats,
        LocalBroker, NearestMiss, QosProxy, RetryPolicy, SessionId, SessionRequest, SimTime,
        TimelineBroker,
    };
    pub use qosr_core::{
        plan_basic, plan_dag, plan_random, plan_tradeoff, AvailabilityView, EpochSnapshot,
        PlanCtxPool, Planner, Qrg, QrgOptions, ReservationPlan,
    };
    pub use qosr_model::{
        ComponentBinding, ComponentSpec, DependencyGraph, QosSchema, QosVector, ResourceId,
        ResourceKind, ResourceSpace, ResourceVector, ServiceSpec, SessionInstance, SlotSpec,
        SlotVector, TableTranslation, Translation,
    };
    pub use qosr_net::{LinkBroker, NetNode, NetworkBroker, NetworkFabric, Topology};
    pub use qosr_obs::{
        Counters, EventKind, Histogram, JsonlSink, MemorySink, MetricsRegistry, NullSink, Phase,
        PhaseTimers, PsiHistogram, TraceEvent, TraceSink, TraceSummary,
    };
}
