//! Chaos/property harness for the fault-injection & recovery subsystem.
//!
//! Three layers of evidence that the two-phase establish protocol and the
//! crash/recovery machinery are safe:
//!
//! 1. **Conservation** — arbitrary interleavings of establishes,
//!    terminations, host crashes and recoveries leave every broker back
//!    at its initial availability once all sessions end and all hosts
//!    recover, and at no point does a *live* session hold a reservation
//!    on a down host.
//! 2. **Transparency** — an empty [`FaultPlan`] (any injector seed)
//!    leaves a scenario run byte-for-byte identical to the default
//!    configuration: fault support costs nothing when unused.
//! 3. **Determinism** — the same `(scenario seed, fault plan)` pair
//!    replays byte-identically, however chaotic the schedule.
//!
//! Case count honours `PROPTEST_CASES` (the CI chaos step runs 256); the
//! local default keeps `cargo test` fast.

use proptest::prelude::*;
use qosr::broker::LocalBrokerConfig;
use qosr::prelude::*;
use qosr::sim::services::ServiceOptions;
use qosr::sim::{run_scenario, FaultPlan, HostCrash, PaperEnvironment, ScenarioConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Arbitrary fault schedules: up to three crash/recover pairs inside a
/// 240 TU horizon, modest message-loss and commit-failure probabilities,
/// and a bounded retry budget.
fn fault_plan() -> impl Strategy<Value = FaultPlan> {
    (
        any::<u64>(),
        prop::collection::vec((0usize..4, 20.0f64..180.0, 10.0f64..120.0), 0..3),
        0.0f64..0.10,
        0.0f64..0.10,
        0u32..=3,
        any::<bool>(),
    )
        .prop_map(
            |(
                seed,
                crashes,
                drop_probability,
                commit_failure_probability,
                max_retries,
                fallback,
            )| {
                FaultPlan {
                    seed,
                    crashes: crashes
                        .into_iter()
                        .map(|(host, at, outage)| HostCrash {
                            host,
                            at,
                            recover_at: Some(at + outage),
                        })
                        .collect(),
                    drop_probability,
                    commit_failure_probability,
                    max_retries,
                    backoff_base: 0.25,
                    tradeoff_fallback: fallback,
                }
            },
        )
}

fn chaos_config(seed: u64, faults: FaultPlan) -> ScenarioConfig {
    ScenarioConfig {
        seed,
        rate_per_60tu: 90.0,
        horizon: 240.0,
        faults,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases_from_env(24))]

    /// Whatever the fault schedule does, the scenario's books balance:
    /// every arrival is accounted for exactly once, class totals add up,
    /// fault counters stay within their budgets — and replaying the same
    /// `(seed, plan)` pair reproduces the run byte for byte.
    #[test]
    fn chaos_accounting_balances_and_replays_byte_identically(
        seed in 0u64..1_000_000,
        plan in fault_plan(),
    ) {
        let config = chaos_config(seed, plan);
        let first = run_scenario(&config);
        let m = &first.metrics;

        // Every arrival ends in exactly one bucket.
        prop_assert_eq!(
            m.overall.attempts,
            m.overall.successes + m.plan_failures + m.reserve_failures + m.fault_failures
        );
        let class_attempts: u64 = m.per_class.iter().map(|c| c.attempts).sum();
        let class_successes: u64 = m.per_class.iter().map(|c| c.successes).sum();
        prop_assert_eq!(class_attempts, m.overall.attempts);
        prop_assert_eq!(class_successes, m.overall.successes);

        // Fault bookkeeping stays within its budgets.
        prop_assert!(m.sessions_lost <= m.overall.successes);
        prop_assert!(m.degraded_establishes <= m.overall.successes);
        prop_assert!(
            m.retries <= m.overall.attempts * u64::from(config.faults.max_retries),
            "retries {} exceed budget of {} per attempt",
            m.retries,
            config.faults.max_retries
        );
        if config.faults.is_empty() {
            prop_assert_eq!(m.faults_injected, 0);
            prop_assert_eq!(m.fault_failures, 0);
            prop_assert_eq!(m.sessions_lost, 0);
        }

        // Determinism regression: byte-identical metrics and message
        // stats on replay.
        let second = run_scenario(&config);
        prop_assert_eq!(
            serde_json::to_string(&first.metrics).unwrap(),
            serde_json::to_string(&second.metrics).unwrap()
        );
        prop_assert_eq!(
            serde_json::to_string(&first.messages).unwrap(),
            serde_json::to_string(&second.messages).unwrap()
        );
    }

    /// Fault support is invisible until armed: a plan with no fault
    /// sources — whatever its injector seed and backoff settings — yields
    /// runs byte-identical to the default configuration.
    #[test]
    fn empty_fault_plan_is_byte_identical_to_no_faults(
        seed in 0u64..1_000_000,
        injector_seed in any::<u64>(),
    ) {
        let baseline = chaos_config(seed, FaultPlan::default());
        let armed_but_empty = chaos_config(
            seed,
            FaultPlan {
                seed: injector_seed,
                ..FaultPlan::default()
            },
        );
        let a = run_scenario(&baseline);
        let b = run_scenario(&armed_but_empty);
        prop_assert_eq!(
            serde_json::to_string(&a.metrics).unwrap(),
            serde_json::to_string(&b.metrics).unwrap()
        );
        prop_assert_eq!(
            serde_json::to_string(&a.messages).unwrap(),
            serde_json::to_string(&b.messages).unwrap()
        );
        prop_assert_eq!(a.metrics.faults_injected, 0);
        prop_assert_eq!(a.metrics.sessions_lost, 0);
    }

    /// The tentpole invariant, driven directly against the figure-9
    /// environment: arbitrary interleavings of establish / terminate /
    /// crash / recover conserve capacity. After every crash the lost
    /// sessions are aborted, and from then on **no live session holds a
    /// reservation on a down host**; once all hosts recover and all
    /// sessions end, every broker is back at its initial availability.
    #[test]
    fn crash_recovery_schedules_conserve_capacity(
        seed in 0u64..1_000_000,
        injector_seed in any::<u64>(),
        drop_probability in 0.0f64..0.15,
        commit_failure_probability in 0.0f64..0.25,
        max_retries in 0u32..=3,
        steps in prop::collection::vec((0u32..10, any::<u64>()), 20..60),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let env = PaperEnvironment::build(
            &mut rng,
            &ServiceOptions::default(),
            (1000.0, 4000.0),
            LocalBrokerConfig::default(),
        );
        env.coordinator
            .faults()
            .configure(injector_seed, drop_probability, commit_failure_probability);
        let options = EstablishOptions {
            retry: RetryPolicy {
                max_retries,
                backoff_base: 0.25,
                tradeoff_fallback: true,
            },
            ..Default::default()
        };

        // Snapshot the untouched world (brokers in proxy order).
        let brokers: Vec<_> = env
            .coordinator
            .proxies()
            .iter()
            .flat_map(|p| p.brokers().iter().cloned())
            .collect();
        let initial: Vec<f64> = brokers.iter().map(|b| b.available()).collect();

        let mut live: Vec<qosr::broker::EstablishedSession> = Vec::new();
        let mut down: Vec<usize> = Vec::new();
        let mut t = 0.0;

        for (action, pick) in steps {
            t += 1.0;
            let now = SimTime::new(t);
            match action {
                // Establish (may legitimately fail: down hosts, faults).
                0..=5 => {
                    let domain = (pick % 8) as usize;
                    // Skip the domain's excluded service (its own proxy
                    // host) per the paper's rule.
                    let mut service = (pick / 8 % 4) as usize;
                    if service == domain / 2 {
                        service = (service + 1) % 4;
                    }
                    let session = env
                        .session(service, domain, 1.0)
                        .expect("valid pair is instantiable");
                    if let Ok(est) =
                        env.coordinator.establish(&session, &options, now, &mut rng)
                    {
                        live.push(est);
                    }
                }
                // Terminate one live session.
                6 | 7 => {
                    if !live.is_empty() {
                        let est = live.remove(pick as usize % live.len());
                        env.coordinator.terminate(&est, now);
                    }
                }
                // Crash a host; abort the sessions it was carrying.
                8 => {
                    let h = (pick % 4) as usize;
                    if !down.contains(&h) {
                        env.coordinator.crash_host(&format!("H{}", h + 1), now);
                        down.push(h);
                        let host_brokers = env.coordinator.proxies()[h].brokers();
                        let mut i = 0;
                        while i < live.len() {
                            if host_brokers.iter().any(|b| b.reserved_for(live[i].id) > 0.0) {
                                let est = live.remove(i);
                                env.coordinator.abort(&est, now);
                            } else {
                                i += 1;
                            }
                        }
                    }
                }
                // Recover the most recently crashed host.
                9 => {
                    if let Some(h) = down.pop() {
                        env.coordinator.recover_host(&format!("H{}", h + 1), now);
                    }
                }
                _ => unreachable!("action is drawn from 0..10"),
            }

            // Invariant: live sessions never hold capacity on down hosts.
            for &h in &down {
                for broker in env.coordinator.proxies()[h].brokers().iter() {
                    for est in &live {
                        let held = broker.reserved_for(est.id);
                        prop_assert!(
                            held == 0.0,
                            "live session {} holds {held} on down host H{}",
                            est.id.0,
                            h + 1
                        );
                    }
                }
            }
        }

        // Drain: everyone recovers, every session ends.
        t += 1.0;
        for h in down {
            env.coordinator.recover_host(&format!("H{}", h + 1), SimTime::new(t));
        }
        for est in live {
            env.coordinator.terminate(&est, SimTime::new(t));
        }
        for (broker, &before) in brokers.iter().zip(&initial) {
            let after = broker.available();
            prop_assert!(
                (after - before).abs() < 1e-6,
                "broker for resource {:?} ended at {after}, started at {before}",
                broker.resource()
            );
        }
    }
}

/// A fixed chaotic scenario actually exercises the machinery end to end:
/// hosts crash and recover mid-run, sessions are lost, commits fail and
/// are retried. (Guards against the chaos properties passing vacuously.)
#[test]
fn chaotic_scenario_exercises_every_fault_path() {
    let config = chaos_config(
        7,
        FaultPlan {
            seed: 11,
            crashes: vec![
                HostCrash {
                    host: 1,
                    at: 60.0,
                    recover_at: Some(120.0),
                },
                HostCrash {
                    host: 3,
                    at: 150.0,
                    recover_at: Some(200.0),
                },
            ],
            drop_probability: 0.05,
            commit_failure_probability: 0.15,
            max_retries: 2,
            backoff_base: 0.25,
            tradeoff_fallback: true,
        },
    );
    let result = run_scenario(&config);
    let m = &result.metrics;
    assert!(m.overall.attempts > 100, "run must see real load");
    assert!(
        m.overall.successes > 0,
        "faults must not kill every session"
    );
    assert!(m.faults_injected > 0, "crashes and commit failures count");
    assert!(m.sessions_lost > 0, "crashed hosts lose their sessions");
    assert!(m.rollbacks > 0, "failed commits roll prepared hops back");
    assert!(m.retries > 0, "the retry budget absorbs transient faults");
    assert_eq!(
        m.overall.attempts,
        m.overall.successes + m.plan_failures + m.reserve_failures + m.fault_failures
    );
}
