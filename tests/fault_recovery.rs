//! Chaos/property harness for the fault-injection & recovery subsystem.
//!
//! Three layers of evidence that the two-phase establish protocol and the
//! crash/recovery machinery are safe:
//!
//! 1. **Conservation** — arbitrary interleavings of establishes,
//!    terminations, host crashes and recoveries leave every broker back
//!    at its initial availability once all sessions end and all hosts
//!    recover, and at no point does a *live* session hold a reservation
//!    on a down host.
//! 2. **Transparency** — an empty [`FaultPlan`] (any injector seed)
//!    leaves a scenario run byte-for-byte identical to the default
//!    configuration: fault support costs nothing when unused.
//! 3. **Determinism** — the same `(scenario seed, fault plan)` pair
//!    replays byte-identically, however chaotic the schedule.
//!
//! Case count honours `PROPTEST_CASES` (the CI chaos step runs 256); the
//! local default keeps `cargo test` fast.

use proptest::prelude::*;
use qosr::broker::LocalBrokerConfig;
use qosr::prelude::*;
use qosr::sim::services::ServiceOptions;
use qosr::sim::{run_scenario, FaultPlan, HostCrash, PaperEnvironment, ScenarioConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Arbitrary fault schedules: up to three crash/recover pairs inside a
/// 240 TU horizon, modest message-loss and commit-failure probabilities,
/// and a bounded retry budget.
fn fault_plan() -> impl Strategy<Value = FaultPlan> {
    (
        any::<u64>(),
        prop::collection::vec((0usize..4, 20.0f64..180.0, 10.0f64..120.0), 0..3),
        0.0f64..0.10,
        0.0f64..0.10,
        0u32..=3,
        any::<bool>(),
    )
        .prop_map(
            |(
                seed,
                crashes,
                drop_probability,
                commit_failure_probability,
                max_retries,
                fallback,
            )| {
                FaultPlan {
                    seed,
                    crashes: crashes
                        .into_iter()
                        .map(|(host, at, outage)| HostCrash {
                            host,
                            at,
                            recover_at: Some(at + outage),
                        })
                        .collect(),
                    drop_probability,
                    commit_failure_probability,
                    max_retries,
                    backoff_base: 0.25,
                    tradeoff_fallback: fallback,
                }
            },
        )
}

fn chaos_config(seed: u64, faults: FaultPlan) -> ScenarioConfig {
    ScenarioConfig {
        seed,
        rate_per_60tu: 90.0,
        horizon: 240.0,
        faults,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases_from_env(24))]

    /// Whatever the fault schedule does, the scenario's books balance:
    /// every arrival is accounted for exactly once, class totals add up,
    /// fault counters stay within their budgets — and replaying the same
    /// `(seed, plan)` pair reproduces the run byte for byte.
    #[test]
    fn chaos_accounting_balances_and_replays_byte_identically(
        seed in 0u64..1_000_000,
        plan in fault_plan(),
    ) {
        let config = chaos_config(seed, plan);
        let first = run_scenario(&config);
        let m = &first.metrics;

        // Every arrival ends in exactly one bucket.
        prop_assert_eq!(
            m.overall.attempts,
            m.overall.successes + m.plan_failures + m.reserve_failures + m.fault_failures
        );
        let class_attempts: u64 = m.per_class.iter().map(|c| c.attempts).sum();
        let class_successes: u64 = m.per_class.iter().map(|c| c.successes).sum();
        prop_assert_eq!(class_attempts, m.overall.attempts);
        prop_assert_eq!(class_successes, m.overall.successes);

        // Fault bookkeeping stays within its budgets.
        prop_assert!(m.sessions_lost <= m.overall.successes);
        prop_assert!(m.degraded_establishes <= m.overall.successes);
        prop_assert!(
            m.retries <= m.overall.attempts * u64::from(config.faults.max_retries),
            "retries {} exceed budget of {} per attempt",
            m.retries,
            config.faults.max_retries
        );
        if config.faults.is_empty() {
            prop_assert_eq!(m.faults_injected, 0);
            prop_assert_eq!(m.fault_failures, 0);
            prop_assert_eq!(m.sessions_lost, 0);
        }

        // Determinism regression: byte-identical metrics and message
        // stats on replay.
        let second = run_scenario(&config);
        prop_assert_eq!(
            serde_json::to_string(&first.metrics).unwrap(),
            serde_json::to_string(&second.metrics).unwrap()
        );
        prop_assert_eq!(
            serde_json::to_string(&first.messages).unwrap(),
            serde_json::to_string(&second.messages).unwrap()
        );
    }

    /// Fault support is invisible until armed: a plan with no fault
    /// sources — whatever its injector seed and backoff settings — yields
    /// runs byte-identical to the default configuration.
    #[test]
    fn empty_fault_plan_is_byte_identical_to_no_faults(
        seed in 0u64..1_000_000,
        injector_seed in any::<u64>(),
    ) {
        let baseline = chaos_config(seed, FaultPlan::default());
        let armed_but_empty = chaos_config(
            seed,
            FaultPlan {
                seed: injector_seed,
                ..FaultPlan::default()
            },
        );
        let a = run_scenario(&baseline);
        let b = run_scenario(&armed_but_empty);
        prop_assert_eq!(
            serde_json::to_string(&a.metrics).unwrap(),
            serde_json::to_string(&b.metrics).unwrap()
        );
        prop_assert_eq!(
            serde_json::to_string(&a.messages).unwrap(),
            serde_json::to_string(&b.messages).unwrap()
        );
        prop_assert_eq!(a.metrics.faults_injected, 0);
        prop_assert_eq!(a.metrics.sessions_lost, 0);
    }

    /// The tentpole invariant, driven directly against the figure-9
    /// environment: arbitrary interleavings of establish / terminate /
    /// crash / recover conserve capacity. After every crash the lost
    /// sessions are aborted, and from then on **no live session holds a
    /// reservation on a down host**; once all hosts recover and all
    /// sessions end, every broker is back at its initial availability.
    #[test]
    fn crash_recovery_schedules_conserve_capacity(
        seed in 0u64..1_000_000,
        injector_seed in any::<u64>(),
        drop_probability in 0.0f64..0.15,
        commit_failure_probability in 0.0f64..0.25,
        max_retries in 0u32..=3,
        steps in prop::collection::vec((0u32..10, any::<u64>()), 20..60),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let env = PaperEnvironment::build(
            &mut rng,
            &ServiceOptions::default(),
            (1000.0, 4000.0),
            LocalBrokerConfig::default(),
        );
        env.coordinator
            .faults()
            .configure(injector_seed, drop_probability, commit_failure_probability);
        let options = EstablishOptions {
            retry: RetryPolicy {
                max_retries,
                backoff_base: 0.25,
                tradeoff_fallback: true,
            },
            ..Default::default()
        };

        // Snapshot the untouched world (brokers in proxy order).
        let brokers: Vec<_> = env
            .coordinator
            .proxies()
            .iter()
            .flat_map(|p| p.brokers().iter().cloned())
            .collect();
        let initial: Vec<f64> = brokers.iter().map(|b| b.available()).collect();

        let mut live: Vec<qosr::broker::EstablishedSession> = Vec::new();
        let mut down: Vec<usize> = Vec::new();
        let mut t = 0.0;

        for (action, pick) in steps {
            t += 1.0;
            let now = SimTime::new(t);
            match action {
                // Establish (may legitimately fail: down hosts, faults).
                0..=5 => {
                    let domain = (pick % 8) as usize;
                    // Skip the domain's excluded service (its own proxy
                    // host) per the paper's rule.
                    let mut service = (pick / 8 % 4) as usize;
                    if service == domain / 2 {
                        service = (service + 1) % 4;
                    }
                    let session = env
                        .session(service, domain, 1.0)
                        .expect("valid pair is instantiable");
                    let request = SessionRequest::new(session).options(options.clone());
                    if let Ok(est) = env
                        .coordinator
                        .establish_request(&request, now, &mut rng)
                        .into_result()
                    {
                        live.push(est);
                    }
                }
                // Terminate one live session.
                6 | 7 => {
                    if !live.is_empty() {
                        let est = live.remove(pick as usize % live.len());
                        env.coordinator.terminate(&est, now);
                    }
                }
                // Crash a host; abort the sessions it was carrying.
                8 => {
                    let h = (pick % 4) as usize;
                    if !down.contains(&h) {
                        env.coordinator.crash_host(&format!("H{}", h + 1), now);
                        down.push(h);
                        let host_brokers = env.coordinator.proxies()[h].brokers();
                        let mut i = 0;
                        while i < live.len() {
                            if host_brokers.iter().any(|b| b.reserved_for(live[i].id) > 0.0) {
                                let est = live.remove(i);
                                env.coordinator.abort(&est, now);
                            } else {
                                i += 1;
                            }
                        }
                    }
                }
                // Recover the most recently crashed host.
                9 => {
                    if let Some(h) = down.pop() {
                        env.coordinator.recover_host(&format!("H{}", h + 1), now);
                    }
                }
                _ => unreachable!("action is drawn from 0..10"),
            }

            // Invariant: live sessions never hold capacity on down hosts.
            for &h in &down {
                for broker in env.coordinator.proxies()[h].brokers().iter() {
                    for est in &live {
                        let held = broker.reserved_for(est.id);
                        prop_assert!(
                            held == 0.0,
                            "live session {} holds {held} on down host H{}",
                            est.id.0,
                            h + 1
                        );
                    }
                }
            }
        }

        // Drain: everyone recovers, every session ends.
        t += 1.0;
        for h in down {
            env.coordinator.recover_host(&format!("H{}", h + 1), SimTime::new(t));
        }
        for est in live {
            env.coordinator.terminate(&est, SimTime::new(t));
        }
        for (broker, &before) in brokers.iter().zip(&initial) {
            let after = broker.available();
            prop_assert!(
                (after - before).abs() < 1e-6,
                "broker for resource {:?} ended at {after}, started at {before}",
                broker.resource()
            );
        }
    }
}

/// Maps a raw draw to a valid `(service, domain)` pair, skipping the
/// domain's excluded service (its own proxy host) per the paper's rule.
fn pick_pair(pick: u64) -> (usize, usize) {
    let domain = (pick % 8) as usize;
    let mut service = (pick / 8 % 4) as usize;
    if service == domain / 2 {
        service = (service + 1) % 4;
    }
    (service, domain)
}

fn fresh_env(seed: u64, capacity_range: (f64, f64)) -> PaperEnvironment {
    let mut rng = StdRng::seed_from_u64(seed);
    PaperEnvironment::build(
        &mut rng,
        &ServiceOptions::default(),
        capacity_range,
        LocalBrokerConfig::default(),
    )
}

/// Four hosts with one CPU each; sessions are one-component chains
/// bound to a single host CPU, demanding 20 (rank 1) or 60 (rank 2)
/// times their scale. With exactly one binding and one translation row
/// per rank, a plan's committed demand is a pure function of its rank.
struct DisjointWorld {
    coordinator: qosr::broker::Coordinator,
    service: std::sync::Arc<ServiceSpec>,
    cpus: Vec<ResourceId>,
}

impl DisjointWorld {
    fn session(&self, host: usize, scale: f64) -> SessionInstance {
        SessionInstance::new(
            self.service.clone(),
            vec![ComponentBinding::new([self.cpus[host]])],
            scale,
        )
        .expect("single-binding session is instantiable")
    }

    fn brokers(&self) -> Vec<std::sync::Arc<dyn qosr::broker::Broker>> {
        self.coordinator
            .proxies()
            .iter()
            .flat_map(|p| p.brokers().iter().cloned())
            .collect()
    }
}

fn disjoint_world(capacity: f64) -> DisjointWorld {
    use std::sync::Arc;
    let mut space = ResourceSpace::new();
    let mut proxies = Vec::new();
    let mut cpus = Vec::new();
    for h in 0..4 {
        let cpu = space.register(format!("H{h}.cpu"), ResourceKind::Compute);
        let mut reg = qosr::broker::BrokerRegistry::new();
        reg.register(Arc::new(qosr::broker::LocalBroker::new(
            cpu,
            capacity,
            SimTime::ZERO,
            LocalBrokerConfig::default(),
        )));
        proxies.push(Arc::new(qosr::broker::QosProxy::new(format!("H{h}"), reg)));
        cpus.push(cpu);
    }
    let schema = QosSchema::new("q", ["x"]);
    let v = |x: u32| QosVector::new(schema.clone(), [x]);
    let comp = ComponentSpec::new(
        "c",
        vec![v(0)],
        vec![v(1), v(2)],
        vec![SlotSpec::new("cpu", ResourceKind::Compute)],
        Arc::new(
            TableTranslation::builder(1, 2, 1)
                .entry(0, 0, [20.0])
                .entry(0, 1, [60.0])
                .build(),
        ),
    );
    let service = Arc::new(ServiceSpec::chain("svc", vec![comp], vec![1, 2]).unwrap());
    DisjointWorld {
        coordinator: qosr::broker::Coordinator::new(proxies),
        service,
        cpus,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases_from_env(24))]

    /// With no same-round conflicts, a concurrently planned batch
    /// commits exactly what sequential admission in arrival order
    /// commits: the same requests admitted at the same ranks, leaving
    /// every broker at the same availability. The world's sessions are
    /// single-component with one binding each, so plans have no
    /// Ψ-driven path freedom — any divergence is a pipeline bug, not
    /// the planner re-ranking hops against drifted availability.
    #[test]
    fn conflict_free_batches_match_sequential_admission(
        queue_seed in any::<u64>(),
        workers in 1usize..=6,
        picks in prop::collection::vec((0usize..4, 1.0f64..4.0), 1..12),
    ) {
        let batch_world = disjoint_world(100_000.0);
        let seq_world = disjoint_world(100_000.0);
        let now = SimTime::new(1.0);

        let requests = |w: &DisjointWorld| -> Vec<SessionRequest> {
            picks
                .iter()
                .map(|&(host, scale)| SessionRequest::new(w.session(host, scale)))
                .collect()
        };
        let queue = AdmissionQueue::new(
            &batch_world.coordinator,
            AdmissionConfig {
                workers,
                seed: queue_seed,
                ..AdmissionConfig::default()
            },
        );
        let batch_outcomes = queue.admit(&requests(&batch_world), now);

        let mut rng = StdRng::seed_from_u64(queue_seed);
        let seq_outcomes: Vec<EstablishOutcome> = requests(&seq_world)
            .iter()
            .map(|request| seq_world.coordinator.establish_request(request, now, &mut rng))
            .collect();

        // Ample capacity means the batch never conflicted, so both
        // paths must agree request by request.
        let snap = batch_world.coordinator.counters().snapshot();
        prop_assert_eq!(snap.commit_conflicts, 0);
        prop_assert_eq!(snap.replans, 0);
        for (i, (b, s)) in batch_outcomes.iter().zip(&seq_outcomes).enumerate() {
            prop_assert_eq!(b.is_admitted(), s.is_admitted(), "request {} diverged", i);
            if let (Some(be), Some(se)) = (b.session(), s.session()) {
                prop_assert_eq!(be.plan.rank, se.plan.rank, "request {} rank diverged", i);
            }
        }

        // Identical committed capacity totals, broker by broker.
        for (b, s) in batch_world.brokers().iter().zip(&seq_world.brokers()) {
            prop_assert!(
                (b.available() - s.available()).abs() < 1e-6,
                "resource {:?}: batch left {}, sequential left {}",
                b.resource(),
                b.available(),
                s.available()
            );
        }
    }

    /// Under scarcity — fat sessions against tight capacity — batched
    /// admission conflicts and replans, but never over-commits a
    /// broker, whatever the worker count or replan budget; outcomes are
    /// identical across worker counts, and terminating everything that
    /// was admitted restores the untouched world.
    #[test]
    fn contended_batches_never_over_commit(
        env_seed in 0u64..1_000_000,
        queue_seed in any::<u64>(),
        workers in 1usize..=8,
        max_replans in 0u32..=3,
        picks in prop::collection::vec((any::<u64>(), 1.0f64..10.0), 4..16),
    ) {
        let env = fresh_env(env_seed, (150.0, 600.0));
        let twin = fresh_env(env_seed, (150.0, 600.0));
        let now = SimTime::new(1.0);

        let build = |e: &PaperEnvironment| -> Vec<SessionRequest> {
            picks
                .iter()
                .map(|&(p, scale)| {
                    let (service, domain) = pick_pair(p);
                    SessionRequest::new(e.session(service, domain, scale).unwrap())
                })
                .collect()
        };
        let brokers: Vec<_> = env
            .coordinator
            .proxies()
            .iter()
            .flat_map(|p| p.brokers().iter().cloned())
            .collect();
        let initial: Vec<f64> = brokers.iter().map(|b| b.available()).collect();

        let queue = AdmissionQueue::new(
            &env.coordinator,
            AdmissionConfig {
                workers,
                max_replans,
                seed: queue_seed,
                ..AdmissionConfig::default()
            },
        );
        let outcomes = queue.admit(&build(&env), now);

        // Worker count is a performance knob, not a semantic one.
        let twin_queue = AdmissionQueue::new(
            &twin.coordinator,
            AdmissionConfig {
                workers: workers % 8 + 1,
                max_replans,
                seed: queue_seed,
                ..AdmissionConfig::default()
            },
        );
        let twin_outcomes = twin_queue.admit(&build(&twin), now);
        prop_assert_eq!(outcomes.len(), twin_outcomes.len());
        for (a, b) in outcomes.iter().zip(&twin_outcomes) {
            prop_assert_eq!(a.is_admitted(), b.is_admitted());
            if let (Some(ae), Some(be)) = (a.session(), b.session()) {
                prop_assert_eq!(ae.plan.rank, be.plan.rank);
            }
        }

        // No broker over-commits: availability never goes negative (a
        // reservation beyond capacity) and never exceeds capacity (a
        // double release). Path brokers report the min over their
        // shared links, so the bound — not a per-session sum — is the
        // invariant that holds for every broker kind.
        let admitted: Vec<_> = outcomes.into_iter().filter_map(|o| o.into_session()).collect();
        for broker in &brokers {
            let after = broker.available();
            prop_assert!(
                after >= -1e-9 && after <= broker.capacity() + 1e-9,
                "resource {:?} over-committed: available {} of capacity {}",
                broker.resource(),
                after,
                broker.capacity()
            );
        }

        // Terminating every admitted session restores the world.
        for est in &admitted {
            env.coordinator.terminate(est, SimTime::new(2.0));
        }
        for (broker, &before) in brokers.iter().zip(&initial) {
            prop_assert!(
                (broker.available() - before).abs() < 1e-6,
                "resource {:?} ended at {}, started at {}",
                broker.resource(),
                broker.available(),
                before
            );
        }
    }
}

/// A fixed chaotic scenario actually exercises the machinery end to end:
/// hosts crash and recover mid-run, sessions are lost, commits fail and
/// are retried. (Guards against the chaos properties passing vacuously.)
#[test]
fn chaotic_scenario_exercises_every_fault_path() {
    let config = chaos_config(
        7,
        FaultPlan {
            seed: 11,
            crashes: vec![
                HostCrash {
                    host: 1,
                    at: 60.0,
                    recover_at: Some(120.0),
                },
                HostCrash {
                    host: 3,
                    at: 150.0,
                    recover_at: Some(200.0),
                },
            ],
            drop_probability: 0.05,
            commit_failure_probability: 0.15,
            max_retries: 2,
            backoff_base: 0.25,
            tradeoff_fallback: true,
        },
    );
    let result = run_scenario(&config);
    let m = &result.metrics;
    assert!(m.overall.attempts > 100, "run must see real load");
    assert!(
        m.overall.successes > 0,
        "faults must not kill every session"
    );
    assert!(m.faults_injected > 0, "crashes and commit failures count");
    assert!(m.sessions_lost > 0, "crashed hosts lose their sessions");
    assert!(m.rollbacks > 0, "failed commits roll prepared hops back");
    assert!(m.retries > 0, "the retry budget absorbs transient faults");
    assert_eq!(
        m.overall.attempts,
        m.overall.successes + m.plan_failures + m.reserve_failures + m.fault_failures
    );
}
