//! Conservation and bookkeeping invariants of the simulated
//! environment, driven directly through the public `PaperEnvironment` /
//! `Coordinator` API (bypassing `run_scenario` so every reservation is
//! visible to the test).

use qosr::broker::{
    Broker, EstablishOptions, EstablishedSession, LocalBrokerConfig, SessionRequest, SimTime,
};
use qosr::sim::{services::ServiceOptions, PaperEnvironment, TopologyVariant, WorkloadGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Sum of held amounts over the *physical* resources (host CPUs and
/// individual links). Path brokers are views over links — two paths
/// over one link alias each other — so they must not be counted
/// directly.
fn total_reserved(env: &PaperEnvironment) -> f64 {
    let cpus: f64 = (0..4)
        .map(|h| {
            let rid = env.host_cpu(h);
            let b = env
                .coordinator
                .owner_of(rid)
                .unwrap()
                .brokers()
                .get(rid)
                .unwrap();
            b.capacity() - b.available()
        })
        .sum();
    let links: f64 = env
        .fabric
        .link_brokers()
        .iter()
        .map(|l| l.capacity() - l.available())
        .sum();
    cpus + links
}

/// A plan's total demand expanded onto physical resources: path demands
/// count once per link of the route.
fn physical_demand(env: &PaperEnvironment, est: &EstablishedSession) -> f64 {
    let route_len: std::collections::HashMap<_, _> = env
        .fabric
        .path_brokers()
        .map(|p| (Broker::resource(p.as_ref()), p.route().len()))
        .collect();
    est.plan
        .total_demand()
        .iter()
        .map(|(rid, amount)| amount * route_len.get(&rid).copied().unwrap_or(1) as f64)
        .sum()
}

/// After establishing a burst of sessions and terminating every one of
/// them, every broker (including the per-link brokers inside the path
/// brokers) must be exactly back to full capacity.
#[test]
fn drain_restores_every_resource() {
    for variant in [TopologyVariant::FullMesh, TopologyVariant::Ring] {
        let mut rng = StdRng::seed_from_u64(99);
        let env = PaperEnvironment::build_with_topology(
            &mut rng,
            &ServiceOptions {
                requirement_scale: 0.5,
                diversity_ratio: None,
            },
            (1000.0, 4000.0),
            LocalBrokerConfig::default(),
            variant,
        );
        let workload = WorkloadGenerator::new(120.0);
        let opts = EstablishOptions::default();
        let mut held: Vec<EstablishedSession> = Vec::new();
        let mut now = SimTime::ZERO;
        for _ in 0..500 {
            now += 0.5;
            let req = workload.sample(&mut rng);
            let session = env.session(req.service, req.domain, req.scale).unwrap();
            let request = SessionRequest::new(session).options(opts.clone());
            if let Ok(est) = env
                .coordinator
                .establish_request(&request, now, &mut rng)
                .into_result()
            {
                held.push(est);
            }
        }
        assert!(!held.is_empty());
        assert!(total_reserved(&env) > 0.0);

        // Everything the physical brokers hold must equal the sum of the
        // plans' demands (path demands expanded over their routes).
        let planned: f64 = held.iter().map(|e| physical_demand(&env, e)).sum();
        assert!(
            (total_reserved(&env) - planned).abs() < 1e-6,
            "{variant:?}: reserved {} vs planned {}",
            total_reserved(&env),
            planned
        );

        for est in &held {
            now += 0.1;
            env.coordinator.terminate(est, now);
        }
        // Proxy-level brokers are clean…
        assert!(
            total_reserved(&env) < 1e-9,
            "{variant:?} leaked reservations"
        );
        // …and so are the underlying links.
        for l in env.fabric.link_brokers() {
            assert_eq!(
                l.available(),
                l.capacity(),
                "{variant:?} leaked on {:?}",
                l.link()
            );
        }
    }
}

/// Every established plan's per-resource demand must have fit the
/// availability at establishment time — i.e. a committed reservation
/// never exceeds a broker's capacity, and brokers never go negative even
/// under churn.
#[test]
fn availability_never_negative_under_churn() {
    let mut rng = StdRng::seed_from_u64(4242);
    let env = PaperEnvironment::build(
        &mut rng,
        &ServiceOptions {
            requirement_scale: 1.0, // heavy demand to force rejections
            diversity_ratio: None,
        },
        (1000.0, 4000.0),
        LocalBrokerConfig::default(),
    );
    let workload = WorkloadGenerator::new(240.0);
    let opts = EstablishOptions::default();
    let mut held: Vec<EstablishedSession> = Vec::new();
    let mut now = SimTime::ZERO;
    for step in 0..2000 {
        now += 0.25;
        let req = workload.sample(&mut rng);
        let session = env.session(req.service, req.domain, req.scale).unwrap();
        let request = SessionRequest::new(session).options(opts.clone());
        if let Ok(est) = env
            .coordinator
            .establish_request(&request, now, &mut rng)
            .into_result()
        {
            held.push(est);
        }
        // Random churn: terminate an old session every few steps.
        if step % 3 == 0 && !held.is_empty() {
            let est = held.swap_remove(step % held.len());
            env.coordinator.terminate(&est, now);
        }
        if step % 200 == 0 {
            for p in env.coordinator.proxies() {
                for b in p.brokers().iter() {
                    assert!(b.available() >= -1e-9, "negative availability");
                    assert!(b.available() <= b.capacity() + 1e-9, "over-capacity");
                }
            }
        }
    }
    let stats = env.coordinator.stats();
    assert_eq!(stats.attempts, 2000);
    assert!(
        stats.established > 0 && stats.established < 2000,
        "expected a mix of admits and rejections, got {}",
        stats.established
    );
}

/// The establishment protocol's message accounting matches its
/// structure: one collection round trip per proxy per attempt.
#[test]
fn message_accounting_matches_protocol() {
    let mut rng = StdRng::seed_from_u64(5);
    let env = PaperEnvironment::build(
        &mut rng,
        &ServiceOptions::default(),
        (1000.0, 4000.0),
        LocalBrokerConfig::default(),
    );
    let opts = EstablishOptions::default();
    let mut now = SimTime::ZERO;
    let workload = WorkloadGenerator::new(60.0);
    for _ in 0..50 {
        now += 1.0;
        let req = workload.sample(&mut rng);
        let session = env.session(req.service, req.domain, req.scale).unwrap();
        let request = SessionRequest::new(session).options(opts.clone());
        let _ = env.coordinator.establish_request(&request, now, &mut rng);
    }
    let stats = env.coordinator.stats();
    assert_eq!(stats.attempts, 50);
    assert_eq!(
        stats.collect_roundtrips,
        50 * 4,
        "one RT per proxy per attempt"
    );
    // Each established session dispatches to exactly 2 proxies (server
    // CPU; proxy CPU + both network paths are owned by the proxy host).
    assert_eq!(stats.dispatches, stats.established * 2);
}
