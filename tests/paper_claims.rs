//! Statistical reproduction of the paper's qualitative claims (§5), at
//! reduced horizon so the suite stays fast. Margins are generous: these
//! guard the *shape* of the results, not exact numbers (those live in
//! EXPERIMENTS.md / the `experiments` harness).

use qosr::sim::{run_many, run_scenario, PlannerKind, RunMetrics, ScenarioConfig, SessionClass};

fn merged(planner: PlannerKind, rate: f64, staleness: f64, diversity: Option<f64>) -> RunMetrics {
    let configs: Vec<ScenarioConfig> = (1..=3u64)
        .map(|seed| ScenarioConfig {
            seed,
            rate_per_60tu: rate,
            horizon: 2400.0,
            planner,
            staleness,
            diversity_ratio: diversity,
            ..ScenarioConfig::default()
        })
        .collect();
    let results = run_many(&configs);
    let mut m = RunMetrics::default();
    for r in &results {
        m.merge(&r.metrics);
    }
    m
}

/// §5.2.1, figure 11(a): *tradeoff* beats *basic* beats *random* in
/// overall reservation success rate under load.
#[test]
fn success_rate_ordering_under_load() {
    let basic = merged(PlannerKind::Basic, 180.0, 0.0, None);
    let tradeoff = merged(PlannerKind::Tradeoff, 180.0, 0.0, None);
    let random = merged(PlannerKind::Random, 180.0, 0.0, None);
    let (b, t, r) = (
        basic.overall.success_rate(),
        tradeoff.overall.success_rate(),
        random.overall.success_rate(),
    );
    assert!(t > b, "tradeoff {t} should beat basic {b}");
    assert!(b > r + 0.02, "basic {b} should clearly beat random {r}");
}

/// §5.2.1, figure 11(b): *basic* and *random* deliver near-top QoS
/// (greedy per session); *tradeoff* sacrifices QoS.
#[test]
fn qos_levels_match_greediness() {
    let basic = merged(PlannerKind::Basic, 120.0, 0.0, None);
    let tradeoff = merged(PlannerKind::Tradeoff, 120.0, 0.0, None);
    let random = merged(PlannerKind::Random, 120.0, 0.0, None);
    assert!(basic.overall.avg_qos_level() > 2.85);
    assert!(random.overall.avg_qos_level() > 2.85);
    assert!(
        tradeoff.overall.avg_qos_level() < basic.overall.avg_qos_level() - 0.1,
        "tradeoff must pay QoS for success rate"
    );
}

/// §5.2.3 (Tables 3–4): fat sessions fare clearly worse than normal
/// ones; duration matters much less than demand size.
#[test]
fn heterogeneity_impact() {
    let m = merged(PlannerKind::Basic, 180.0, 0.0, None);
    let norm_short = m.per_class[SessionClass::NormalShort.index()].success_rate();
    let norm_long = m.per_class[SessionClass::NormalLong.index()].success_rate();
    let fat_short = m.per_class[SessionClass::FatShort.index()].success_rate();
    let fat_long = m.per_class[SessionClass::FatLong.index()].success_rate();
    assert!(norm_short > fat_short + 0.1, "{norm_short} vs {fat_short}");
    assert!(norm_long > fat_long + 0.1);
    // Duration has far less impact than fatness (the paper: "no
    // significant difference" within a fatness class).
    assert!((norm_short - norm_long).abs() < 0.06);
    assert!((fat_short - fat_long).abs() < 0.08);
}

/// §5.2.4 (figure 12): stale observations degrade success mildly, but
/// both algorithms stay above *random with accurate observations*; only
/// stale runs have dispatch-time failures.
#[test]
fn staleness_degrades_but_stays_above_random() {
    let accurate = merged(PlannerKind::Basic, 150.0, 0.0, None);
    let stale = merged(PlannerKind::Basic, 150.0, 8.0, None);
    let random = merged(PlannerKind::Random, 150.0, 0.0, None);
    assert_eq!(accurate.reserve_failures, 0);
    assert!(stale.reserve_failures > 0);
    let (a, s, r) = (
        accurate.overall.success_rate(),
        stale.overall.success_rate(),
        random.overall.success_rate(),
    );
    assert!(s <= a + 0.01, "staleness should not help ({s} vs {a})");
    assert!(s > r, "stale basic {s} must still beat accurate random {r}");
}

/// §5.2.5 (figure 13): compressing requirement diversity to 3:1 lowers
/// absolute success rates, but the algorithm ordering persists.
#[test]
fn low_diversity_lowers_success_but_keeps_ordering() {
    let full = merged(PlannerKind::Basic, 150.0, 0.0, None);
    let compressed = merged(PlannerKind::Basic, 150.0, 0.0, Some(3.0));
    assert!(
        compressed.overall.success_rate() < full.overall.success_rate(),
        "fewer tradeoff options must hurt: {} vs {}",
        compressed.overall.success_rate(),
        full.overall.success_rate()
    );
    let random_compressed = merged(PlannerKind::Random, 150.0, 0.0, Some(3.0));
    assert!(
        compressed.overall.success_rate() > random_compressed.overall.success_rate(),
        "basic must still beat random under low diversity"
    );
}

/// §5.2.2: the bottleneck resource is not fixed — many different
/// resources become the bottleneck across a run, and both paths tables
/// see a spread of selected paths.
#[test]
fn bottlenecks_and_paths_are_diverse() {
    let m = merged(PlannerKind::Basic, 80.0, 0.0, None);
    assert!(
        m.bottlenecks.len() >= 12,
        "only {} distinct bottleneck resources",
        m.bottlenecks.len()
    );
    assert!(m.paths_a.distinct() >= 5, "type-A paths too concentrated");
    assert!(m.paths_b.distinct() >= 5, "type-B paths too concentrated");
}

/// Reservation success under *accurate* observations implies plan-time
/// admission control only — and the success rate at trivial load is
/// essentially 1.
#[test]
fn light_load_admits_everything() {
    let cfg = ScenarioConfig {
        seed: 9,
        rate_per_60tu: 10.0,
        horizon: 2400.0,
        planner: PlannerKind::Basic,
        ..ScenarioConfig::default()
    };
    let r = run_scenario(&cfg);
    assert!(r.metrics.overall.success_rate() > 0.995);
    assert!(r.metrics.overall.avg_qos_level() > 2.97);
}
