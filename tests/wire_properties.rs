//! Property-based tests of the `qosr serve` wire codec
//! ([`qosr_cli::wire`]): every frame the protocol can express must
//! survive an encode/decode round trip bit-for-bit, and no byte stream
//! — truncated, oversized, or outright garbage — may ever panic, hang,
//! or come back as anything but a clean protocol error. The codec is
//! the server's trust boundary; these properties are what let the
//! per-connection readers treat any decode error as "close and move
//! on". Case count honours `PROPTEST_CASES` (CI runs the default).

use proptest::prelude::*;
use proptest::ProptestConfig;
use qosr_cli::wire::{
    read_frame, read_request_frame, read_response_frame, write_frame, write_request_frame,
    write_response_frame, EstablishDef, FlightFrame, OutcomeFrame, RequestFrame, ResponseFrame,
    SloFrame, StatsFrame, WireError, MAX_FRAME_LEN,
};
use qosr_obs::{RequestTrace, SloReport, SpanKind, SpanRecord};
use std::io::Cursor;

/// Finite, JSON-round-trippable floats (the vendored serializer prints
/// shortest-round-trip forms, so any finite `f64` survives; NaN and the
/// infinities serialize to `null` by design and are excluded).
fn finite_f64() -> impl Strategy<Value = f64> {
    prop_oneof![
        Just(0.0),
        Just(-0.0),
        Just(1.5e308),
        Just(-4.9e-324),
        -1.0e12..1.0e12f64,
        0.0..1.0f64,
    ]
}

/// Strings exercising JSON escaping: quotes, backslashes, control
/// characters, multi-byte UTF-8.
fn wire_string() -> impl Strategy<Value = String> {
    const ALPHABET: &[&str] = &[
        "a", "Z", "0", " ", "\"", "\\", "\n", "\t", "\u{1}", "é", "λ", "🦀", "{", "}", ":", ",",
    ];
    proptest::collection::vec(0usize..ALPHABET.len(), 0..24)
        .prop_map(|picks| picks.into_iter().map(|i| ALPHABET[i]).collect())
}

fn option_of<S: Strategy + 'static>(inner: S) -> BoxedStrategy<Option<S::Value>>
where
    S::Value: std::fmt::Debug + Clone,
{
    prop_oneof![Just(None), inner.prop_map(Some)].boxed()
}

fn establish_def() -> impl Strategy<Value = EstablishDef> {
    (
        (any::<u64>(), 0usize..16, 0usize..16, finite_f64()),
        (
            option_of(any::<u32>().boxed()),
            option_of(finite_f64().boxed()),
            option_of(
                prop_oneof![
                    Just("basic".to_string()),
                    Just("tradeoff".to_string()),
                    Just("random".to_string()),
                    Just("dag".to_string()),
                    wire_string().boxed(),
                ]
                .boxed(),
            ),
            option_of(any::<u64>().boxed()),
        ),
    )
        .prop_map(
            |((id, service, domain, scale), (qos_min, deadline, planner, trace))| {
                let mut def = EstablishDef::new(id);
                def.service = service;
                def.domain = domain;
                def.scale = scale;
                def.qos_min = qos_min;
                def.deadline = deadline;
                def.planner = planner;
                def.trace = trace;
                def
            },
        )
}

fn outcome_label() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("committed".to_string()),
        Just("degraded".to_string()),
        Just("rejected".to_string()),
    ]
}

fn span_kind() -> impl Strategy<Value = SpanKind> {
    prop_oneof![
        Just(SpanKind::Queue),
        Just(SpanKind::Collect),
        Just(SpanKind::Plan),
        Just(SpanKind::Replan),
        Just(SpanKind::Commit),
    ]
}

fn span_leaf() -> impl Strategy<Value = SpanRecord> {
    (
        (span_kind(), any::<u64>(), any::<u64>()),
        (
            option_of(finite_f64().boxed()),
            option_of(wire_string().boxed()),
            option_of(any::<u64>().boxed()),
            option_of(any::<u32>().boxed()),
            option_of(wire_string().boxed()),
        ),
    )
        .prop_map(
            |((kind, start_ns, duration_ns), (psi, planner, resource, attempt, detail))| {
                SpanRecord {
                    kind,
                    start_ns,
                    duration_ns,
                    psi,
                    planner,
                    resource,
                    attempt,
                    detail,
                    children: Vec::new(),
                }
            },
        )
}

/// A span with up to one level of children — enough to exercise the
/// recursive `children` encoding without unbounded trees.
fn span_record() -> impl Strategy<Value = SpanRecord> {
    (span_leaf(), proptest::collection::vec(span_leaf(), 0..3)).prop_map(|(mut span, children)| {
        span.children = children;
        span
    })
}

fn request_trace() -> impl Strategy<Value = RequestTrace> {
    (
        (
            any::<u64>(),
            option_of(wire_string().boxed()),
            outcome_label(),
            option_of(any::<u64>().boxed()),
        ),
        (
            option_of(any::<u32>().boxed()),
            option_of(finite_f64().boxed()),
            any::<u32>(),
            any::<u32>(),
            any::<u64>(),
        ),
        proptest::collection::vec(span_record(), 0..4),
    )
        .prop_map(
            |(
                (trace, service, outcome, session),
                (rank, psi, conflicts, retries, total_ns),
                spans,
            )| RequestTrace {
                trace,
                service,
                outcome,
                session,
                rank,
                psi,
                conflicts,
                retries,
                total_ns,
                spans,
            },
        )
}

fn slo_report() -> impl Strategy<Value = SloReport> {
    (
        (any::<u64>(), finite_f64(), finite_f64()),
        (
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
        ),
        (finite_f64(), finite_f64()),
        (any::<u64>(), any::<u64>(), finite_f64(), finite_f64()),
        (
            (finite_f64(), finite_f64(), finite_f64()),
            (finite_f64(), finite_f64(), finite_f64()),
        ),
        (any::<bool>(), any::<u64>()),
    )
        .prop_map(
            |(
                (target_p99_ns, target_rejection_rate, target_degraded_rate),
                (total, committed, degraded, rejected, p99_ns),
                (rejection_rate, degraded_rate),
                (short_total, short_p99_ns, short_rejection_rate, short_degraded_rate),
                (
                    (rejection_burn, degraded_burn, latency_burn),
                    (short_rejection_burn, short_degraded_burn, short_latency_burn),
                ),
                (breached, breaches),
            )| SloReport {
                target_p99_ns,
                target_rejection_rate,
                target_degraded_rate,
                total,
                committed,
                degraded,
                rejected,
                p99_ns,
                rejection_rate,
                degraded_rate,
                short_total,
                short_p99_ns,
                short_rejection_rate,
                short_degraded_rate,
                rejection_burn,
                degraded_burn,
                latency_burn,
                short_rejection_burn,
                short_degraded_burn,
                short_latency_burn,
                breached,
                breaches,
            },
        )
}

fn request_frame() -> impl Strategy<Value = RequestFrame> {
    prop_oneof![
        establish_def().prop_map(RequestFrame::Establish).boxed(),
        (
            option_of(finite_f64().boxed()),
            proptest::collection::vec(establish_def(), 0..8),
        )
            .prop_map(|(now, requests)| RequestFrame::Batch { now, requests })
            .boxed(),
        (any::<u64>(), any::<u64>())
            .prop_map(|(id, session)| RequestFrame::Terminate { id, session })
            .boxed(),
        (any::<u64>(), any::<u64>())
            .prop_map(|(id, session)| RequestFrame::Renegotiate { id, session })
            .boxed(),
        any::<u64>()
            .prop_map(|id| RequestFrame::Stats { id })
            .boxed(),
        any::<u64>()
            .prop_map(|id| RequestFrame::Flight { id })
            .boxed(),
        any::<u64>().prop_map(|id| RequestFrame::Slo { id }).boxed(),
        any::<u64>()
            .prop_map(|id| RequestFrame::Ping { id })
            .boxed(),
        Just(RequestFrame::Shutdown).boxed(),
    ]
}

fn outcome_frame() -> impl Strategy<Value = OutcomeFrame> {
    (
        any::<u64>(),
        outcome_label(),
        option_of(any::<u64>().boxed()),
        (
            option_of(any::<u32>().boxed()),
            option_of(finite_f64().boxed()),
            option_of(any::<u32>().boxed()),
            option_of(any::<u32>().boxed()),
        ),
        (
            option_of(wire_string().boxed()),
            option_of(any::<u64>().boxed()),
            option_of(finite_f64().boxed()),
        ),
        (
            (
                option_of(any::<u64>().boxed()),
                option_of(any::<u64>().boxed()),
                option_of(any::<u64>().boxed()),
                option_of(any::<u64>().boxed()),
            ),
            (
                option_of(any::<u64>().boxed()),
                option_of(any::<u64>().boxed()),
                option_of(any::<u64>().boxed()),
            ),
        ),
    )
        .prop_map(
            |(
                id,
                status,
                session,
                (rank, psi, from, to),
                (error, miss_resource, miss_ratio),
                ((trace, queue_ns, collect_ns, plan_ns), (replan_ns, commit_ns, total_ns)),
            )| {
                OutcomeFrame {
                    id,
                    status,
                    session,
                    rank,
                    psi,
                    from,
                    to,
                    error,
                    miss_resource,
                    miss_ratio,
                    trace,
                    queue_ns,
                    collect_ns,
                    plan_ns,
                    replan_ns,
                    commit_ns,
                    total_ns,
                }
            },
        )
}

fn stats_frame() -> impl Strategy<Value = StatsFrame> {
    (
        any::<u64>(),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        (any::<u64>(), any::<u64>()),
        (finite_f64(), finite_f64(), any::<bool>()),
    )
        .prop_map(
            |(
                id,
                (rounds, requests, establishments, releases),
                (live_sessions, connections),
                (total_available, total_capacity, over_committed),
            )| StatsFrame {
                id,
                rounds,
                requests,
                establishments,
                releases,
                live_sessions,
                connections,
                total_available,
                total_capacity,
                over_committed,
            },
        )
}

fn response_frame() -> impl Strategy<Value = ResponseFrame> {
    prop_oneof![
        outcome_frame().prop_map(ResponseFrame::Outcome).boxed(),
        (any::<u64>(), any::<u64>(), finite_f64())
            .prop_map(|(id, session, released)| ResponseFrame::Terminated {
                id,
                session,
                released,
            })
            .boxed(),
        (
            any::<u64>(),
            any::<u64>(),
            any::<u32>(),
            finite_f64(),
            any::<bool>()
        )
            .prop_map(
                |(id, session, rank, psi, upgraded)| ResponseFrame::Renegotiated {
                    id,
                    session,
                    rank,
                    psi,
                    upgraded,
                }
            )
            .boxed(),
        stats_frame().prop_map(ResponseFrame::Stats).boxed(),
        (
            any::<u64>(),
            proptest::collection::vec(request_trace(), 0..3),
        )
            .prop_map(|(id, traces)| ResponseFrame::Flight(FlightFrame { id, traces }))
            .boxed(),
        (any::<u64>(), slo_report())
            .prop_map(|(id, report)| ResponseFrame::Slo(SloFrame { id, report }))
            .boxed(),
        any::<u64>()
            .prop_map(|id| ResponseFrame::Pong { id })
            .boxed(),
        (option_of(any::<u64>().boxed()), wire_string())
            .prop_map(|(id, message)| ResponseFrame::Error { id, message })
            .boxed(),
        any::<u64>()
            .prop_map(|drained| ResponseFrame::Bye { drained })
            .boxed(),
    ]
}

/// Encodes `frame`, decodes it back, and checks the round trip plus the
/// clean-EOF contract (one frame in the buffer, nothing after it).
fn roundtrip<T>(frame: &T)
where
    T: PartialEq + std::fmt::Debug + serde::Serialize + serde::Deserialize,
{
    let mut buf = Vec::new();
    write_frame(&mut buf, frame).expect("encode");
    let mut cursor = Cursor::new(buf);
    let back: T = read_frame(&mut cursor).expect("decode").expect("one frame");
    assert_eq!(&back, frame);
    let eof: Option<T> = read_frame(&mut cursor).expect("clean EOF");
    assert!(eof.is_none(), "nothing may follow the frame");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases_from_env(64))]

    /// Every request verb round-trips bit-for-bit, including maximal
    /// ids, empty batches, escaped strings, and denormal floats.
    #[test]
    fn request_frames_roundtrip(frame in request_frame()) {
        roundtrip(&frame);
    }

    /// Every response verb round-trips bit-for-bit.
    #[test]
    fn response_frames_roundtrip(frame in response_frame()) {
        roundtrip(&frame);
    }

    /// Chopping an encoded frame anywhere — inside the length prefix or
    /// inside the payload — yields a clean error (or clean EOF at the
    /// exact boundary 0), never a panic, a hang, or a bogus frame.
    #[test]
    fn truncation_anywhere_is_clean(frame in request_frame(), cut in 0usize..4096) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &frame).expect("encode");
        let cut = cut % buf.len(); // 0 <= cut < len: always strictly truncated
        buf.truncate(cut);
        let mut cursor = Cursor::new(buf);
        match read_frame::<_, RequestFrame>(&mut cursor) {
            Ok(None) => prop_assert_eq!(cut, 0, "clean EOF only at the frame boundary"),
            Ok(Some(_)) => prop_assert!(false, "decoded a frame from a truncated stream"),
            Err(WireError::Truncated { .. }) | Err(WireError::Io(_)) | Err(WireError::Json(_)) => {}
            Err(e) => prop_assert!(false, "unexpected error class: {e}"),
        }
    }

    /// Arbitrary garbage bytes never panic the decoder: any outcome is
    /// a clean EOF, a clean error, or (if the bytes happen to spell a
    /// valid frame) something that re-encodes losslessly.
    #[test]
    fn garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut cursor = Cursor::new(bytes);
        // An accidental valid frame must still be lawful; any other
        // outcome (clean EOF or clean error) is fine.
        if let Ok(Some(frame)) = read_frame::<_, RequestFrame>(&mut cursor) {
            roundtrip(&frame);
        }
    }

    /// A length prefix beyond `MAX_FRAME_LEN` is rejected as oversized
    /// before any payload is read or allocated, whatever follows it.
    #[test]
    fn oversized_prefixes_are_rejected(extra in 1u32..1024, tail in proptest::collection::vec(any::<u8>(), 0..16)) {
        let len = MAX_FRAME_LEN as u32 + extra;
        let mut buf = len.to_be_bytes().to_vec();
        buf.extend_from_slice(&tail);
        let mut cursor = Cursor::new(buf);
        match read_frame::<_, RequestFrame>(&mut cursor) {
            Err(WireError::Oversized { len: l }) => prop_assert_eq!(l, len as usize),
            other => prop_assert!(false, "expected Oversized, got {:?}", other.map(|_| ())),
        }
    }

    /// An empty payload (`len == 0`) is not valid JSON, so it errors
    /// cleanly rather than producing a frame.
    #[test]
    fn empty_payload_is_a_clean_error(tail in proptest::collection::vec(any::<u8>(), 0..8)) {
        let mut buf = 0u32.to_be_bytes().to_vec();
        buf.extend_from_slice(&tail);
        let mut cursor = Cursor::new(buf);
        prop_assert!(matches!(
            read_frame::<_, RequestFrame>(&mut cursor),
            Err(WireError::Json(_))
        ));
    }

    /// The hot-path request encoder is byte-identical to the generic
    /// one for every frame — the fast path is an optimization, never a
    /// dialect. (Frames outside the fast shape fall through to the
    /// generic encoder inside `write_request_frame`, so the equality
    /// holds unconditionally.)
    #[test]
    fn fast_request_encoder_is_byte_identical(frame in request_frame()) {
        let mut generic = Vec::new();
        write_frame(&mut generic, &frame).expect("generic encode");
        let mut fast = Vec::new();
        write_request_frame(&mut fast, &frame).expect("fast encode");
        prop_assert_eq!(fast, generic);
    }

    /// The hot-path response encoder is byte-identical to the generic
    /// one for every frame.
    #[test]
    fn fast_response_encoder_is_byte_identical(frame in response_frame()) {
        let mut generic = Vec::new();
        write_frame(&mut generic, &frame).expect("generic encode");
        let mut fast = Vec::new();
        write_response_frame(&mut fast, &frame).expect("fast encode");
        prop_assert_eq!(fast, generic);
    }

    /// The hot-path request reader decodes every generically-encoded
    /// frame to the same value the generic reader does (the fast
    /// scanner either matches exactly or falls back — it never decodes
    /// to something different).
    #[test]
    fn fast_request_reader_agrees_with_generic(frame in request_frame()) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &frame).expect("encode");
        let back = read_request_frame(&mut Cursor::new(buf))
            .expect("fast decode")
            .expect("one frame");
        prop_assert_eq!(back, frame);
    }

    /// The hot-path response reader decodes every generically-encoded
    /// frame to the same value the generic reader does.
    #[test]
    fn fast_response_reader_agrees_with_generic(frame in response_frame()) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &frame).expect("encode");
        let back = read_response_frame(&mut Cursor::new(buf))
            .expect("fast decode")
            .expect("one frame");
        prop_assert_eq!(back, frame);
    }

    /// Garbage bytes never panic the fast readers either, and anything
    /// they do accept must agree with the generic decoder (the strict
    /// scanner can only ever accept a subset of what serde accepts).
    #[test]
    fn garbage_never_panics_the_fast_readers(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        if let Ok(Some(frame)) = read_request_frame(&mut Cursor::new(bytes.clone())) {
            let generic = read_frame::<_, RequestFrame>(&mut Cursor::new(bytes.clone()))
                .expect("generic decode")
                .expect("one frame");
            prop_assert_eq!(frame, generic);
        }
        if let Ok(Some(frame)) = read_response_frame(&mut Cursor::new(bytes.clone())) {
            let generic = read_frame::<_, ResponseFrame>(&mut Cursor::new(bytes))
                .expect("generic decode")
                .expect("one frame");
            prop_assert_eq!(frame, generic);
        }
    }
}
