//! Observability integration tests: exact event sequences for known
//! session lifecycles, JSONL round-trips, and — the acceptance bar —
//! `TraceSummary` reproducing the simulator's `RunMetrics` exactly.

use qosr::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// One host, one CPU of capacity 100, one component offering two output
/// levels with CPU demands `low` / `high` (ranks 1 and 2).
fn one_hop_world(low: f64, high: f64) -> (Coordinator, SessionInstance, Arc<MemorySink>) {
    let mut space = ResourceSpace::new();
    let cpu = space.register("h0.cpu", ResourceKind::Compute);

    let mut brokers = BrokerRegistry::new();
    brokers.register(Arc::new(LocalBroker::new(
        cpu,
        100.0,
        SimTime::ZERO,
        Default::default(),
    )));

    let sink = Arc::new(MemorySink::default());
    let coordinator =
        Coordinator::with_trace(vec![Arc::new(QosProxy::new("h0", brokers))], sink.clone());

    let schema = QosSchema::new("q", ["x"]);
    let v = |x: u32| QosVector::new(schema.clone(), [x]);
    let comp = ComponentSpec::new(
        "c0",
        vec![v(9)],
        vec![v(1), v(2)],
        vec![SlotSpec::new("cpu", ResourceKind::Compute)],
        Arc::new(
            TableTranslation::builder(1, 2, 1)
                .entry(0, 0, [low])
                .entry(0, 1, [high])
                .build(),
        ),
    );
    let service = Arc::new(ServiceSpec::chain("svc", vec![comp], vec![1, 2]).unwrap());
    let session = SessionInstance::new(service, vec![ComponentBinding::new([cpu])], 1.0).unwrap();
    (coordinator, session, sink)
}

fn kinds(events: &[TraceEvent]) -> Vec<EventKind> {
    events.iter().map(|e| e.kind).collect()
}

#[test]
fn commit_then_release_emits_exact_sequence() {
    let (coordinator, session, sink) = one_hop_world(20.0, 60.0);
    let mut rng = StdRng::seed_from_u64(1);

    let est = coordinator
        .establish_request(
            &SessionRequest::new(session.clone()),
            SimTime::ZERO + 1.0,
            &mut rng,
        )
        .into_result()
        .expect("feasible world must establish");
    coordinator.terminate(&est, SimTime::ZERO + 5.0);

    let events = sink.events();
    assert_eq!(
        kinds(&events),
        vec![
            EventKind::PlanStarted,
            EventKind::CandidateEvaluated,
            EventKind::CandidateEvaluated,
            EventKind::PlanCompleted,
            EventKind::HopSelected,
            EventKind::ReservationCommitted,
            EventKind::SessionReleased,
        ]
    );

    // Both candidates were feasible, with ψ = demand / 100.
    let candidates: Vec<&TraceEvent> = events
        .iter()
        .filter(|e| e.kind == EventKind::CandidateEvaluated)
        .collect();
    assert!(candidates.iter().all(|e| e.feasible == Some(true)));
    let psis: Vec<f64> = candidates.iter().filter_map(|e| e.psi).collect();
    assert!(psis.contains(&0.2) && psis.contains(&0.6));

    // The commit carries the achieved rank (2: the better level fits),
    // its Ψ, and the bottleneck resource.
    let commit = events
        .iter()
        .find(|e| e.kind == EventKind::ReservationCommitted)
        .unwrap();
    assert_eq!(commit.session, Some(est.id.0));
    assert_eq!(commit.service.as_deref(), Some("svc"));
    assert_eq!(commit.level, Some(2));
    assert_eq!(commit.psi, Some(0.6));
    assert_eq!(commit.resource, Some(0));
    assert_eq!(commit.time, 1.0);

    let release = events.last().unwrap();
    assert_eq!(release.session, Some(est.id.0));
    assert_eq!(release.time, 5.0);
    assert_eq!(release.detail.as_deref(), Some("released 60"));
}

#[test]
fn infeasible_plan_emits_rejection_naming_the_resource() {
    // Demands 120/150 against capacity 100: every candidate overshoots.
    let (coordinator, session, sink) = one_hop_world(120.0, 150.0);
    let mut rng = StdRng::seed_from_u64(1);

    coordinator
        .establish_request(
            &SessionRequest::new(session.clone()),
            SimTime::ZERO + 2.0,
            &mut rng,
        )
        .into_result()
        .expect_err("overcommitted world must reject");

    let events = sink.events();
    assert_eq!(
        kinds(&events),
        vec![
            EventKind::PlanStarted,
            EventKind::CandidateEvaluated,
            EventKind::CandidateEvaluated,
            EventKind::PlanRejected,
        ]
    );

    // Infeasible candidates report their overshoot ratio (> 1) and the
    // limiting resource.
    for e in &events[1..3] {
        assert_eq!(e.feasible, Some(false));
        assert!(e.psi.unwrap() > 1.0, "overshoot ratio must exceed 1");
        assert_eq!(e.resource, Some(0));
    }

    // The rejection names the nearest-miss resource: rank 1 at demand
    // 120 (ratio 1.2) misses by less than rank 2 at 150.
    let rejection = events.last().unwrap();
    assert_eq!(rejection.resource, Some(0));
    assert_eq!(rejection.psi, Some(1.2));
    assert!(rejection.detail.is_some());
}

#[test]
fn jsonl_sink_round_trips_the_event_stream() {
    let dir = std::env::temp_dir().join("qosr-obs-roundtrip");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("trace.jsonl");

    let (coordinator, session, memory) = one_hop_world(20.0, 60.0);
    let jsonl = Arc::new(JsonlSink::create(&path).unwrap());
    // Mirror the run into a JSONL file by re-emitting the memory trace.
    let mut rng = StdRng::seed_from_u64(1);
    let est = coordinator
        .establish_request(
            &SessionRequest::new(session.clone()),
            SimTime::ZERO + 1.0,
            &mut rng,
        )
        .into_result()
        .unwrap();
    coordinator.terminate(&est, SimTime::ZERO + 5.0);
    for event in memory.events() {
        jsonl.emit(&event);
    }
    jsonl.flush().unwrap();

    let back = qosr::obs::read_jsonl(&path).unwrap();
    assert_eq!(back, memory.events());
    std::fs::remove_file(&path).ok();
}

/// The acceptance criterion: reducing a recorded trace must reproduce
/// the run's `RunMetrics` exactly — success rate, mean QoS level, and
/// the per-resource bottleneck table.
#[test]
fn trace_summary_matches_run_metrics_exactly() {
    let config = qosr::sim::ScenarioConfig {
        seed: 3,
        rate_per_60tu: 120.0,
        horizon: 600.0,
        ..Default::default()
    };
    let sink = Arc::new(MemorySink::default());
    let result = qosr::sim::run_scenario_traced(&config, sink.clone());
    let summary = TraceSummary::from_events(&sink.events());

    let overall = &result.metrics.overall;
    assert!(overall.attempts > 0, "run must attempt sessions");
    assert_eq!(summary.plans_started, overall.attempts);
    assert_eq!(summary.committed, overall.successes);
    assert_eq!(summary.qos_level_sum, overall.qos_level_sum);
    assert_eq!(summary.success_rate(), Some(overall.success_rate()));
    assert_eq!(summary.mean_qos_level(), Some(overall.avg_qos_level()));
    assert_eq!(summary.plans_rejected, result.metrics.plan_failures);
    assert_eq!(
        summary.rejected_at_dispatch,
        result.metrics.reserve_failures
    );
    assert_eq!(summary.bottlenecks, result.metrics.bottlenecks);

    // And the trace is bitwise-deterministic: the traced run's metrics
    // equal the untraced run's.
    let untraced = qosr::sim::run_scenario(&config);
    assert_eq!(untraced.metrics, result.metrics);
}

/// Replay equivalence under fire: a faulted run's trace must reduce to
/// the exact fault counters the simulator reports — crashes, recoveries,
/// retries, rollbacks, degraded commits, lost sessions and
/// retry-exhausted failures — while the classic fields keep matching.
#[test]
fn faulted_trace_summary_matches_run_metrics_exactly() {
    let config = qosr::sim::ScenarioConfig {
        seed: 7,
        rate_per_60tu: 120.0,
        horizon: 300.0,
        faults: qosr::sim::FaultPlan {
            seed: 11,
            crashes: vec![
                qosr::sim::HostCrash {
                    host: 1,
                    at: 60.0,
                    recover_at: Some(150.0),
                },
                qosr::sim::HostCrash {
                    host: 2,
                    at: 200.0,
                    recover_at: Some(260.0),
                },
            ],
            drop_probability: 0.05,
            commit_failure_probability: 0.15,
            max_retries: 2,
            backoff_base: 0.25,
            tradeoff_fallback: true,
        },
        ..Default::default()
    };
    let sink = Arc::new(MemorySink::default());
    let result = qosr::sim::run_scenario_traced(&config, sink.clone());
    let summary = TraceSummary::from_events(&sink.events());
    let metrics = &result.metrics;

    // The run must actually exercise the fault paths, or this test
    // passes vacuously.
    assert!(metrics.faults_injected > 0, "faults must fire");
    assert!(metrics.sessions_lost > 0, "crashes must lose sessions");
    assert!(metrics.retries > 0, "retries must trigger");
    assert!(metrics.rollbacks > 0, "rollbacks must trigger");

    // Classic fields still line up under fire.
    assert_eq!(summary.plans_started, metrics.overall.attempts);
    assert_eq!(summary.committed, metrics.overall.successes);
    assert_eq!(summary.plans_rejected, metrics.plan_failures);
    assert_eq!(summary.rejected_at_dispatch, metrics.reserve_failures);
    assert_eq!(summary.bottlenecks, metrics.bottlenecks);

    // And so does every fault counter, event-for-counter.
    assert_eq!(summary.faults_injected, metrics.faults_injected);
    assert_eq!(summary.retries, metrics.retries);
    assert_eq!(summary.rollbacks, metrics.rollbacks);
    assert_eq!(summary.degraded, metrics.degraded_establishes);
    assert_eq!(summary.sessions_lost, metrics.sessions_lost);
    assert_eq!(summary.fault_failures, metrics.fault_failures);
    // Both scheduled recoveries fall inside the horizon.
    assert_eq!(summary.host_recoveries, 2);

    // Tracing never perturbs a faulted run: the untraced metrics are
    // identical.
    let untraced = qosr::sim::run_scenario(&config);
    assert_eq!(untraced.metrics, result.metrics);
}

#[test]
fn trace_summary_counts_upgrades_like_run_metrics() {
    let config = qosr::sim::ScenarioConfig {
        seed: 21,
        rate_per_60tu: 150.0,
        horizon: 1800.0,
        upgrade_period: Some(30.0),
        ..Default::default()
    };
    let sink = Arc::new(MemorySink::default());
    let result = qosr::sim::run_scenario_traced(&config, sink.clone());
    let summary = TraceSummary::from_events(&sink.events());

    assert!(result.metrics.upgrades > 0, "seed must exercise upgrades");
    assert_eq!(summary.upgrades, result.metrics.upgrades);
    assert_eq!(summary.plans_started, result.metrics.overall.attempts);
    assert_eq!(summary.committed, result.metrics.overall.successes);
}

#[test]
fn live_registry_and_trace_replay_agree_on_phase_timings() {
    let config = qosr::sim::ScenarioConfig {
        seed: 9,
        rate_per_60tu: 150.0,
        horizon: 600.0,
        sample_period: Some(30.0),
        ..Default::default()
    };
    let sink = Arc::new(MemorySink::default());
    let registry = MetricsRegistry::new();
    qosr::sim::run_scenario_instrumented(&config, sink.clone(), Some(&registry));

    let summary = TraceSummary::from_events(&sink.events());
    let timers = registry.timers().expect("timers attached");

    // Every phase the live timers measured appears in the replayed
    // trace with the exact same event count — one PhaseTiming event was
    // emitted per measured span, nothing more, nothing less.
    let mut measured = 0u64;
    for phase in Phase::ALL {
        let live = timers.histogram(phase).count();
        let replayed = summary
            .phase_timings
            .get(phase.name())
            .map_or(0, |h| h.count());
        assert_eq!(live, replayed, "phase {}", phase.name());
        measured += live;
    }
    assert!(measured > 0, "the run must measure at least one span");
    for phase in [Phase::Collect, Phase::Plan, Phase::Commit] {
        assert!(
            timers.histogram(phase).count() > 0,
            "{} must fire in a committed run",
            phase.name()
        );
    }

    // The replayed distributions carry real durations (nonzero sums)
    // and the exposition renders the same counts.
    let plan = summary.phase_timings.get("plan").expect("plan timings");
    assert!(plan.sum() > 0);
    let rendered = registry.render();
    assert!(rendered.contains(&format!(
        "qosr_phase_duration_seconds_count{{phase=\"plan\"}} {}",
        timers.histogram(Phase::Plan).count()
    )));

    // Utilization samples flow into the replay too.
    assert!(!summary.utilization.is_empty(), "utilization block");
    for stat in summary.utilization.values() {
        assert!(stat.samples > 0);
        assert!(stat.peak >= 0.0);
    }

    // Telemetry never perturbs the run: metrics match the plain run.
    let untraced = qosr::sim::run_scenario(&config);
    let instrumented = {
        let registry = MetricsRegistry::new();
        qosr::sim::run_scenario_instrumented(&config, Arc::new(NullSink), Some(&registry))
    };
    assert_eq!(untraced.metrics, instrumented.metrics);
}

/// The tentpole acceptance bar for request tracing: per-request latency
/// attribution recomputed offline from the JSONL event trace must agree
/// field-for-field with the live tracer's aggregates — span-kind
/// histogram snapshots, end-to-end latency snapshot, outcome counts,
/// and the traced-request total — and every recorded span tree must
/// account for its request exactly (root spans sum to `total_ns`).
#[test]
fn request_attribution_replays_exactly() {
    let config = qosr::sim::ScenarioConfig {
        seed: 13,
        rate_per_60tu: 150.0,
        horizon: 600.0,
        trace_requests: true,
        ..Default::default()
    };
    let sink = Arc::new(MemorySink::default());
    let tracer = Arc::new(qosr::obs::Tracer::new(64));
    let traced =
        qosr::sim::run_scenario_observed(&config, sink.clone(), None, Some(tracer.clone()));
    assert!(tracer.recorded() > 0, "the run must trace requests");
    assert!(
        traced.metrics.overall.successes > 0,
        "the run must commit sessions"
    );

    // Offline replay of the event stream reproduces the live
    // aggregates exactly — the single source of truth for "the JSONL
    // trace carries the whole attribution story".
    let summary = TraceSummary::from_events(&sink.events());
    summary
        .request_attribution_matches(&tracer)
        .expect("replayed attribution must match the live tracer");

    // Exact per-request accounting: for every span tree in the flight
    // ring, the root spans sum to the end-to-end latency — attribution
    // has no unexplained residual.
    let dump = tracer.flight().dump();
    assert!(!dump.is_empty(), "flight ring must retain traces");
    for trace in &dump {
        let attributed: u64 = qosr::obs::SpanKind::ALL
            .into_iter()
            .map(|kind| trace.span_ns(kind))
            .sum();
        assert_eq!(
            attributed, trace.total_ns,
            "trace {:016x}: span tree must attribute every nanosecond",
            trace.trace
        );
        // And each line survives the canonical JSONL codec bit-for-bit.
        let line = trace.to_jsonl();
        let back = qosr::obs::RequestTrace::from_jsonl(&line).unwrap();
        assert_eq!(&back, &**trace);
        assert_eq!(back.to_jsonl(), line);
    }
}

/// Request tracing is observability, not behaviour: a traced run and an
/// untraced run of the same scenario produce bit-identical metrics.
#[test]
fn request_tracing_never_perturbs_the_run() {
    let base = qosr::sim::ScenarioConfig {
        seed: 17,
        rate_per_60tu: 180.0,
        horizon: 600.0,
        ..Default::default()
    };
    let untraced = qosr::sim::run_scenario(&base);

    let traced_config = qosr::sim::ScenarioConfig {
        trace_requests: true,
        ..base.clone()
    };
    let sink = Arc::new(MemorySink::default());
    let tracer = Arc::new(qosr::obs::Tracer::new(32));
    let traced =
        qosr::sim::run_scenario_observed(&traced_config, sink.clone(), None, Some(tracer.clone()));

    assert!(tracer.recorded() > 0, "the traced run must record");
    assert_eq!(
        untraced.metrics, traced.metrics,
        "tracing must not change a single counter"
    );
}

#[test]
fn batched_admission_phase_timings_replay_exactly() {
    let config = qosr::sim::ScenarioConfig {
        seed: 5,
        rate_per_60tu: 180.0,
        horizon: 600.0,
        sample_period: Some(30.0),
        batch_arrivals: Some(qosr::sim::BatchArrivals {
            size: 8,
            workers: 4,
            max_replans: 2,
        }),
        ..Default::default()
    };
    let sink = Arc::new(MemorySink::default());
    let registry = MetricsRegistry::new();
    let result = qosr::sim::run_scenario_instrumented(&config, sink.clone(), Some(&registry));
    assert!(result.metrics.overall.successes > 0);

    let summary = TraceSummary::from_events(&sink.events());
    let timers = registry.timers().expect("timers attached");
    for phase in Phase::ALL {
        let live = timers.histogram(phase).count();
        let replayed = summary
            .phase_timings
            .get(phase.name())
            .map_or(0, |h| h.count());
        assert_eq!(live, replayed, "phase {}", phase.name());
    }
    // Worker-parallel planning must still time every planned request.
    assert!(timers.histogram(Phase::Plan).count() > 0);

    // The queue-depth gauges were sampled during the run.
    assert!(registry.gauge("admission_in_flight", None).is_some());
    assert!(registry.gauge("admission_last_batch", None).is_some());
}
