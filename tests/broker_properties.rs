//! Property-based tests of the broker layer: arbitrary operation
//! sequences are replayed against a trivial reference model, checking
//! conservation, ledger consistency, and the time-travel change log.

use proptest::prelude::*;
use qosr::broker::{Broker, BrokerRegistry, LocalBroker, LocalBrokerConfig, SessionId, SimTime};
use qosr::model::{ResourceId, ResourceVector};
use qosr::net::{LinkBroker, NetworkBroker};
use std::collections::HashMap;
use std::sync::Arc;

#[derive(Debug, Clone)]
enum Op {
    Reserve { session: u8, amount: f64 },
    Release { session: u8 },
    ReleaseAmount { session: u8, amount: f64 },
    Report,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..6, 0.1f64..40.0).prop_map(|(session, amount)| Op::Reserve { session, amount }),
        (0u8..6).prop_map(|session| Op::Release { session }),
        (0u8..6, 0.1f64..40.0).prop_map(|(session, amount)| Op::ReleaseAmount { session, amount }),
        Just(Op::Report),
    ]
}

const CAPACITY: f64 = 100.0;
const EPS: f64 = 1e-9;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// LocalBroker against a reference ledger: availability is always
    /// capacity − Σledger, reservations never overcommit, and the change
    /// log reconstructs every past availability exactly.
    #[test]
    fn local_broker_conserves(ops in prop::collection::vec(op_strategy(), 1..60)) {
        let broker = LocalBroker::new(
            ResourceId(0),
            CAPACITY,
            SimTime::ZERO,
            LocalBrokerConfig { alpha_window: 3.0, log_horizon: 1.0e9 },
        );
        let mut model: HashMap<u8, f64> = HashMap::new();
        let mut trace: Vec<(f64, f64)> = vec![(0.0, CAPACITY)];
        let mut t = 0.0;
        for op in &ops {
            t += 1.0;
            let now = SimTime::new(t);
            match *op {
                Op::Reserve { session, amount } => {
                    let held: f64 = model.values().sum();
                    let result = broker.reserve(SessionId(session as u64), amount, now);
                    if amount <= CAPACITY - held + EPS {
                        prop_assert!(result.is_ok(), "rejected fitting reserve: {result:?}");
                        *model.entry(session).or_insert(0.0) += amount;
                        trace.push((t, CAPACITY - model.values().sum::<f64>()));
                    } else {
                        prop_assert!(result.is_err(), "accepted overcommit");
                    }
                }
                Op::Release { session } => {
                    let expected = model.remove(&session).unwrap_or(0.0);
                    let released = broker.release(SessionId(session as u64), now);
                    prop_assert!((released - expected).abs() < EPS);
                    if expected > 0.0 {
                        trace.push((t, CAPACITY - model.values().sum::<f64>()));
                    }
                }
                Op::ReleaseAmount { session, amount } => {
                    let held = model.get(&session).copied().unwrap_or(0.0);
                    let expected = amount.min(held);
                    let released =
                        broker.release_amount(SessionId(session as u64), amount, now);
                    prop_assert!((released - expected).abs() < EPS);
                    if expected > 0.0 {
                        let h = model.get_mut(&session).unwrap();
                        *h -= expected;
                        if *h <= EPS {
                            model.remove(&session);
                        }
                        trace.push((t, CAPACITY - model.values().sum::<f64>()));
                    }
                }
                Op::Report => {
                    let r = broker.report(now);
                    let expected = CAPACITY - model.values().sum::<f64>();
                    prop_assert!((r.avail - expected).abs() < 1e-6);
                    prop_assert!(r.alpha.is_finite() && r.alpha >= 0.0);
                }
            }
            // Core invariants after every op.
            let expected_avail = CAPACITY - model.values().sum::<f64>();
            prop_assert!((broker.available() - expected_avail).abs() < 1e-6);
            prop_assert!(broker.available() >= -EPS && broker.available() <= CAPACITY + EPS);
            for (&s, &held) in &model {
                prop_assert!((broker.reserved_for(SessionId(s as u64)) - held).abs() < 1e-6);
            }
        }
        // The change log replays history exactly at every recorded point
        // (query just after each change time).
        for window in trace.windows(2) {
            let (t0, avail0) = window[0];
            let t1 = window[1].0;
            let mid = SimTime::new((t0 + t1) / 2.0);
            prop_assert!((broker.available_at(mid) - avail0).abs() < 1e-6,
                "history mismatch at {mid}: {} vs {}", broker.available_at(mid), avail0);
        }
    }

    /// Atomic multi-resource reservation: after any failed reserve_all,
    /// every broker is exactly as before; after success, exactly the
    /// demand is held.
    #[test]
    fn registry_all_or_nothing(
        demands in prop::collection::vec((0u32..4, 1.0f64..80.0), 1..6),
        preload in prop::collection::vec((0u32..4, 1.0f64..60.0), 0..4),
    ) {
        let mut registry = BrokerRegistry::new();
        for i in 0..4u32 {
            registry.register(Arc::new(LocalBroker::new(
                ResourceId(i), CAPACITY, SimTime::ZERO, LocalBrokerConfig::default(),
            )));
        }
        // Preload some background sessions.
        for (i, (rid, amount)) in preload.iter().enumerate() {
            let _ = registry.get(ResourceId(*rid)).unwrap().reserve(
                SessionId(1000 + i as u64), *amount, SimTime::new(1.0));
        }
        let before: Vec<f64> = (0..4u32)
            .map(|i| registry.get(ResourceId(i)).unwrap().available())
            .collect();

        let demand = ResourceVector::from_pairs(
            demands.iter().map(|&(rid, a)| (ResourceId(rid), a))).unwrap();
        let session = SessionId(1);
        let fits = demand.iter().all(|(rid, a)| a <= before[rid.index()] + EPS);
        match registry.reserve_all(session, &demand, SimTime::new(2.0)) {
            Ok(()) => {
                prop_assert!(fits, "accepted a demand that did not fit");
                for i in 0..4u32 {
                    let b = registry.get(ResourceId(i)).unwrap();
                    let expect = before[i as usize] - demand.get(ResourceId(i));
                    prop_assert!((b.available() - expect).abs() < 1e-6);
                }
                registry.release_all(session, SimTime::new(3.0));
            }
            Err(_) => {
                prop_assert!(!fits, "rejected a fitting demand");
            }
        }
        // Either way: exactly the pre-state remains.
        for i in 0..4u32 {
            let b = registry.get(ResourceId(i)).unwrap();
            prop_assert!((b.available() - before[i as usize]).abs() < 1e-6);
        }
    }

    /// The two-level network broker: path availability is always the
    /// min over links; a reservation holds the same amount on every
    /// link; failure leaves all links untouched.
    #[test]
    fn network_broker_two_level(
        capacities in prop::collection::vec(20.0f64..120.0, 1..5),
        amounts in prop::collection::vec(1.0f64..100.0, 1..8),
    ) {
        let links: Vec<Arc<LinkBroker>> = capacities
            .iter()
            .enumerate()
            .map(|(i, &cap)| Arc::new(LinkBroker::new(
                qosr::net::LinkId(i), ResourceId(i as u32), cap,
                SimTime::ZERO, LocalBrokerConfig::default(),
            )))
            .collect();
        let path = NetworkBroker::new(ResourceId(99), links.clone(), 3.0);
        let mut held: Vec<(SessionId, f64)> = Vec::new();
        let mut t = 0.0;
        for (i, &amount) in amounts.iter().enumerate() {
            t += 1.0;
            let session = SessionId(i as u64);
            let min_avail = links.iter().map(|l| l.available()).fold(f64::INFINITY, f64::min);
            prop_assert!((path.available() - min_avail).abs() < 1e-9);
            let before: Vec<f64> = links.iter().map(|l| l.available()).collect();
            match path.reserve(session, amount, SimTime::new(t)) {
                Ok(()) => {
                    prop_assert!(amount <= min_avail + EPS);
                    for (l, b) in links.iter().zip(&before) {
                        prop_assert!((l.available() - (b - amount)).abs() < 1e-9);
                    }
                    held.push((session, amount));
                }
                Err(_) => {
                    prop_assert!(amount > min_avail - EPS);
                    for (l, b) in links.iter().zip(&before) {
                        prop_assert!((l.available() - b).abs() < 1e-9, "failed reserve disturbed a link");
                    }
                }
            }
        }
        // Tear down everything; links must return to full capacity.
        for (session, amount) in held {
            t += 1.0;
            prop_assert!((path.release(session, SimTime::new(t)) - amount).abs() < 1e-9);
        }
        for (l, &cap) in links.iter().zip(&capacities) {
            prop_assert!((l.available() - cap).abs() < 1e-9);
        }
    }
}
