//! Integration coverage for the `qosr serve` network front-end: the
//! server must be an *observationally transparent* wrapper around the
//! in-process admission pipeline, and no client behaviour — batching,
//! disconnecting mid-lease, hammering from many sockets at once, or
//! asking the server to shut down — may ever leak reserved capacity.
//!
//! * **Equivalence**: the same seeded request sequence pushed through a
//!   live server on `127.0.0.1:0` and through an [`AdmissionQueue`] on
//!   an identically-built world produces frame-identical outcomes
//!   (status, session id, rank, ψ, rejection error), and tearing all
//!   sessions down leaves both worlds at full capacity.
//! * **Robustness**: a client that dies mid-lease releases exactly what
//!   it held; a shutdown drains in-flight work before the `bye`;
//!   concurrent clients never over-commit a broker.
//!
//! `QOSR_SERVE_ROUNDS` scales the equivalence schedule up (CI smoke
//! runs the default).

use qosr::broker::LocalBrokerConfig;
use qosr::prelude::*;
use qosr::sim::services::ServiceOptions;
use qosr::sim::PaperEnvironment;
use qosr_cli::serve::{start, ServeOptions, WorldKind};
use qosr_cli::wire::{
    read_frame, write_frame, EstablishDef, OutcomeFrame, RequestFrame, ResponseFrame, StatsFrame,
};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::io::{BufReader, Write as _};
use std::net::{SocketAddr, TcpStream};

const WORLD_SEED: u64 = 0xC0FFEE;
const CAPACITY: (f64, f64) = (1000.0, 4000.0);
const PIPELINE_SEED: u64 = 0x5eed;
const WORKERS: usize = 4;

fn paper_opts() -> ServeOptions {
    ServeOptions {
        world: WorldKind::Paper,
        world_seed: WORLD_SEED,
        capacity: CAPACITY,
        workers: WORKERS,
        seed: PIPELINE_SEED,
        ..ServeOptions::default()
    }
}

fn paper_env() -> PaperEnvironment {
    let mut rng = StdRng::seed_from_u64(WORLD_SEED);
    PaperEnvironment::build(
        &mut rng,
        &ServiceOptions::default(),
        CAPACITY,
        LocalBrokerConfig::default(),
    )
}

/// Per-broker availability across the whole world — the conservation
/// oracle shared with `tests/admission.rs`.
fn availability(coordinator: &qosr::broker::Coordinator) -> Vec<f64> {
    coordinator
        .proxies()
        .iter()
        .flat_map(|p| p.brokers().iter().map(|b| b.available()))
        .collect()
}

/// `(service, domain)` pairs honouring the excluded-service rule.
fn valid_pairs() -> Vec<(usize, usize)> {
    (0..8)
        .flat_map(|domain| {
            (0..4)
                .filter(move |&service| service != domain / 2)
                .map(move |service| (service, domain))
        })
        .collect()
}

/// A deterministic schedule of admission rounds: each round is a batch
/// of establishes over seeded `(service, domain, scale)` draws at an
/// explicit sim-time.
fn schedule(rounds: usize, per_round: usize) -> Vec<(f64, Vec<EstablishDef>)> {
    let pairs = valid_pairs();
    let mut rng = StdRng::seed_from_u64(0xD15EA5E);
    let mut next_id = 0u64;
    (0..rounds)
        .map(|r| {
            let batch = (0..per_round)
                .map(|_| {
                    let (service, domain) = pairs[rng.random_range(0..pairs.len())];
                    next_id += 1;
                    let mut def = EstablishDef::new(next_id);
                    def.service = service;
                    def.domain = domain;
                    // Occasional fat sessions provoke degradations and
                    // rejections, not just clean commits.
                    def.scale = if rng.random::<f64>() < 0.2 { 4.0 } else { 1.0 };
                    def
                })
                .collect();
            (r as f64, batch)
        })
        .collect()
}

struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let writer = TcpStream::connect(addr).expect("connect");
        writer.set_nodelay(true).expect("nodelay");
        let reader = BufReader::new(writer.try_clone().expect("clone"));
        Client { writer, reader }
    }

    fn send(&mut self, frame: &RequestFrame) {
        write_frame(&mut self.writer, frame).expect("send");
        self.writer.flush().expect("flush");
    }

    fn recv(&mut self) -> ResponseFrame {
        read_frame(&mut self.reader)
            .expect("recv")
            .expect("open stream")
    }

    fn stats(&mut self, id: u64) -> StatsFrame {
        self.send(&RequestFrame::Stats { id });
        match self.recv() {
            ResponseFrame::Stats(stats) => stats,
            other => panic!("expected stats, got {other:?}"),
        }
    }
}

/// The tentpole guarantee: over-the-wire admission is outcome-identical
/// to in-process admission on the same world, and full teardown
/// restores every broker on both sides.
#[test]
fn server_outcomes_match_in_process_admission() {
    let rounds: usize = std::env::var("QOSR_SERVE_ROUNDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(12);
    let plan = schedule(rounds, 16);

    // In-process reference: identical world, identical config, the
    // same explicit round times.
    let env = paper_env();
    let pristine = availability(&env.coordinator);
    let queue = AdmissionQueue::new(
        &env.coordinator,
        AdmissionConfig {
            workers: WORKERS,
            seed: PIPELINE_SEED,
            ..AdmissionConfig::default()
        },
    );
    let mut expected: Vec<OutcomeFrame> = Vec::new();
    let mut established = Vec::new();
    for (now, batch) in &plan {
        let requests: Vec<SessionRequest> = batch
            .iter()
            .map(|def| {
                SessionRequest::new(
                    env.session(def.service, def.domain, def.scale)
                        .expect("valid pair"),
                )
            })
            .collect();
        for (i, outcome) in queue
            .admit(&requests, SimTime::new(*now))
            .into_iter()
            .enumerate()
        {
            expected.push(OutcomeFrame::from_outcome(batch[i].id, &outcome));
            if let Some(est) = outcome.into_session() {
                established.push(est);
            }
        }
    }

    // Over the wire: one `batch` frame per round pins the same
    // sim-time the reference used.
    let server = start(&paper_opts()).expect("start server");
    let mut client = Client::connect(server.addr());
    let mut actual: Vec<OutcomeFrame> = Vec::new();
    let mut sessions: Vec<u64> = Vec::new();
    for (now, batch) in &plan {
        client.send(&RequestFrame::Batch {
            now: Some(*now),
            requests: batch.clone(),
        });
        for _ in batch {
            match client.recv() {
                ResponseFrame::Outcome(frame) => {
                    if let Some(session) = frame.session {
                        sessions.push(session);
                    }
                    actual.push(frame);
                }
                other => panic!("expected an outcome, got {other:?}"),
            }
        }
    }

    assert_eq!(actual.len(), expected.len());
    for (a, e) in actual.iter().zip(&expected) {
        assert_eq!(a, e, "over-the-wire outcome diverged from in-process");
    }

    // Teardown both sides: capacity must be conserved exactly.
    let final_time = plan.len() as f64 + 1.0;
    for est in &established {
        env.coordinator.terminate(est, SimTime::new(final_time));
    }
    assert_eq!(availability(&env.coordinator), pristine);

    for (i, session) in sessions.iter().enumerate() {
        client.send(&RequestFrame::Terminate {
            id: 1_000_000 + i as u64,
            session: *session,
        });
        match client.recv() {
            ResponseFrame::Terminated { released, .. } => {
                assert!(released > 0.0, "terminate must release capacity")
            }
            other => panic!("expected terminated, got {other:?}"),
        }
    }
    let stats = client.stats(2_000_000);
    assert_eq!(stats.live_sessions, 0);
    assert!(!stats.over_committed);
    assert_eq!(
        stats.total_available, stats.total_capacity,
        "teardown must restore the server's world to full capacity"
    );

    server.shutdown();
}

/// The `qosr load --attrib` acceptance bar, asserted at the protocol
/// level: an establish carrying a trace id gets its outcome frame back
/// with server-side latency attribution whose phases sum *exactly* to
/// the end-to-end total (the queue span absorbs the residual, so there
/// is no unexplained remainder and no tolerance needed), the flight
/// ring retains the span trees for `flight` to dump, and the `slo`
/// frame reports every observed request.
#[test]
fn traced_establishes_attribute_latency_exactly() {
    let server = start(&paper_opts()).expect("start server");
    let mut client = Client::connect(server.addr());

    const TRACED: u64 = 24;
    let pairs = valid_pairs();
    let mut rng = StdRng::seed_from_u64(0xACC0); // attribution schedule
    let mut admitted = 0u64;
    for id in 0..TRACED {
        let (service, domain) = pairs[rng.random_range(0..pairs.len())];
        let mut def = EstablishDef::new(id);
        def.service = service;
        def.domain = domain;
        def.scale = if rng.random::<f64>() < 0.2 { 4.0 } else { 1.0 };
        def.trace = Some(0x7000 + id);
        client.send(&RequestFrame::Establish(def));
        match client.recv() {
            ResponseFrame::Outcome(frame) => {
                assert_eq!(frame.id, id);
                assert_eq!(
                    frame.trace,
                    Some(0x7000 + id),
                    "the outcome must echo the request's trace id"
                );
                let total = frame.total_ns.expect("traced outcome carries total_ns");
                assert!(total > 0, "end-to-end latency must be measured");
                let attributed = frame.queue_ns.unwrap_or(0)
                    + frame.collect_ns.unwrap_or(0)
                    + frame.plan_ns.unwrap_or(0)
                    + frame.replan_ns.unwrap_or(0)
                    + frame.commit_ns.unwrap_or(0);
                assert_eq!(
                    attributed, total,
                    "request {id}: phase attribution must sum exactly to total_ns"
                );
                if frame.is_admitted() {
                    admitted += 1;
                    assert!(
                        frame.plan_ns.unwrap_or(0) > 0,
                        "an admitted request spends time planning"
                    );
                }
            }
            other => panic!("expected an outcome, got {other:?}"),
        }
    }
    assert!(admitted > 0, "the schedule must admit sessions");

    // The flight ring holds every traced request's span tree, and each
    // tree accounts for its request exactly.
    client.send(&RequestFrame::Flight { id: 9_000 });
    match client.recv() {
        ResponseFrame::Flight(frame) => {
            assert_eq!(frame.id, 9_000);
            assert_eq!(frame.traces.len() as u64, TRACED);
            for trace in &frame.traces {
                let spans: u64 = trace.spans.iter().map(|s| s.duration_ns).sum();
                assert_eq!(spans, trace.total_ns, "root spans must sum to total");
            }
        }
        other => panic!("expected a flight dump, got {other:?}"),
    }

    // The SLO engine observed every request (traced or not) and is not
    // breached by a short healthy run under the default targets.
    client.send(&RequestFrame::Slo { id: 9_001 });
    match client.recv() {
        ResponseFrame::Slo(frame) => {
            assert_eq!(frame.id, 9_001);
            assert_eq!(frame.report.total, TRACED);
            assert_eq!(
                frame.report.committed + frame.report.degraded + frame.report.rejected,
                TRACED
            );
            assert!(!frame.report.breached, "healthy run must not breach");
        }
        other => panic!("expected an slo report, got {other:?}"),
    }

    // Untraced requests still flow through the fast path untouched: no
    // attribution fields come back without a trace id.
    let mut plain = EstablishDef::new(77_000);
    plain.service = 1;
    plain.domain = 0;
    client.send(&RequestFrame::Establish(plain));
    match client.recv() {
        ResponseFrame::Outcome(frame) => {
            assert!(frame.trace.is_none() && frame.total_ns.is_none());
        }
        other => panic!("expected an outcome, got {other:?}"),
    }

    server.shutdown();
}

/// A client that vanishes mid-lease releases exactly what it held —
/// nothing more (the survivor's sessions stay reserved), nothing less.
#[test]
fn disconnect_releases_only_the_dead_clients_leases() {
    let server = start(&paper_opts()).expect("start server");
    let mut survivor = Client::connect(server.addr());
    let mut doomed = Client::connect(server.addr());

    let establish = |client: &mut Client, id: u64, service: usize, domain: usize| {
        let mut def = EstablishDef::new(id);
        def.service = service;
        def.domain = domain;
        client.send(&RequestFrame::Establish(def));
        match client.recv() {
            ResponseFrame::Outcome(frame) => frame,
            other => panic!("expected an outcome, got {other:?}"),
        }
    };

    let kept = establish(&mut survivor, 1, 1, 0);
    assert!(kept.is_admitted(), "baseline establish must admit");
    let leaked = establish(&mut doomed, 2, 2, 0);
    assert!(leaked.is_admitted(), "doomed client's establish must admit");

    let before = survivor.stats(10);
    assert_eq!(before.live_sessions, 2);
    let held_by_doomed = before.total_capacity - before.total_available;

    // Kill the doomed client without terminating anything.
    drop(doomed);

    // The disconnect is processed asynchronously; poll stats until the
    // lease count drops.
    let mut after = survivor.stats(11);
    for _ in 0..200 {
        if after.live_sessions == 1 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
        after = survivor.stats(12);
    }
    assert_eq!(
        after.live_sessions, 1,
        "dead client's lease must be released"
    );
    assert!(!after.over_committed);
    assert!(
        after.total_available > before.total_available,
        "the dead client's reservations must come back"
    );
    assert!(
        after.total_available < before.total_available + held_by_doomed,
        "the survivor's session must stay reserved"
    );

    server.shutdown();
}

/// `shutdown` drains queued establishes before acknowledging: every
/// request sent ahead of the shutdown frame still gets its outcome on
/// the same connection, then the `bye` reports the drained count.
#[test]
fn shutdown_drains_in_flight_batches() {
    let server = start(&paper_opts()).expect("start server");
    let mut client = Client::connect(server.addr());

    const BURST: u64 = 32;
    for id in 0..BURST {
        let mut def = EstablishDef::new(id);
        def.service = 1;
        def.domain = 0;
        write_frame(&mut client.writer, &RequestFrame::Establish(def)).expect("send");
    }
    write_frame(&mut client.writer, &RequestFrame::Shutdown).expect("send");
    client.writer.flush().expect("flush");

    let mut outcomes = 0u64;
    loop {
        match client.recv() {
            ResponseFrame::Outcome(frame) => {
                assert!(frame.id < BURST);
                outcomes += 1;
            }
            ResponseFrame::Bye { drained } => {
                // Everything pipelined ahead of the shutdown was
                // answered first, and the bye accounts for all of it.
                assert_eq!(
                    outcomes, BURST,
                    "every in-flight establish gets its outcome"
                );
                assert!(
                    drained >= BURST,
                    "bye reports {drained} answered, burst was {BURST}"
                );
                break;
            }
            other => panic!("expected outcome or bye, got {other:?}"),
        }
    }
    server.wait();
}

/// Many clients hammering concurrently: whatever interleaving the
/// accept loop and coalescer produce, no broker ever goes negative, and
/// a full teardown restores full capacity.
#[test]
fn concurrent_clients_never_over_commit() {
    let server = start(&paper_opts()).expect("start server");
    let addr = server.addr();
    const CLIENTS: usize = 6;
    const PER_CLIENT: u64 = 20;

    let workers: Vec<_> = (0..CLIENTS)
        .map(|c| {
            std::thread::spawn(move || {
                let pairs = valid_pairs();
                let mut rng = StdRng::seed_from_u64(c as u64);
                let mut client = Client::connect(addr);
                let mut sessions = Vec::new();
                for i in 0..PER_CLIENT {
                    let (service, domain) = pairs[rng.random_range(0..pairs.len())];
                    let mut def = EstablishDef::new(((c as u64) << 32) | i);
                    def.service = service;
                    def.domain = domain;
                    def.scale = if rng.random::<f64>() < 0.25 { 3.0 } else { 1.0 };
                    client.send(&RequestFrame::Establish(def));
                    match client.recv() {
                        ResponseFrame::Outcome(frame) => {
                            if let Some(session) = frame.session {
                                sessions.push(session);
                            }
                        }
                        other => panic!("expected an outcome, got {other:?}"),
                    }
                }
                // Half the clients clean up politely; the rest just
                // disconnect and lean on lease release.
                if c % 2 == 0 {
                    for (i, session) in sessions.iter().enumerate() {
                        client.send(&RequestFrame::Terminate {
                            id: 3_000_000 + i as u64,
                            session: *session,
                        });
                        match client.recv() {
                            ResponseFrame::Terminated { .. } => {}
                            other => panic!("expected terminated, got {other:?}"),
                        }
                    }
                }
            })
        })
        .collect();
    for worker in workers {
        worker.join().expect("client thread");
    }

    let mut auditor = Client::connect(addr);
    let mut stats = auditor.stats(1);
    for _ in 0..200 {
        if stats.live_sessions == 0 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
        stats = auditor.stats(2);
    }
    assert!(!stats.over_committed, "no broker may ever go negative");
    assert_eq!(stats.live_sessions, 0, "all leases must be released");
    assert_eq!(
        stats.total_available, stats.total_capacity,
        "full teardown must restore full capacity"
    );

    server.shutdown();
}
