//! Property-based tests of the `qosr_obs` histogram layer: merged
//! shards must be indistinguishable from one histogram fed the same
//! samples, and every recorded value must land inside its bucket's
//! half-open range.

use proptest::prelude::*;
use qosr::obs::hist::{bucket_bounds, bucket_index, psi_bucket_bounds, psi_bucket_index};
use qosr::obs::{Histogram, PsiHistogram, PSI_BUCKETS};

/// Sample values spanning the full log-bucketed range, biased toward
/// the realistic nanosecond band.
fn value_strategy() -> impl Strategy<Value = u64> {
    prop_oneof![
        0u64..64,                     // linear sub-32 region + first octaves
        100u64..1_000_000,            // µs-scale latencies
        1_000_000u64..10_000_000_000, // ms-to-seconds
        Just(u64::MAX),               // saturation
        any::<u64>(),                 // anything at all
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Sharded recording then merging reports the identical snapshot —
    /// count, sum, min, max, and every percentile — as one histogram
    /// that saw all the samples directly. This is what makes per-worker
    /// histogram shards safe to aggregate in the registry.
    #[test]
    fn merged_shards_match_a_single_histogram(
        samples in prop::collection::vec(value_strategy(), 1..200),
        shards in 2usize..6,
    ) {
        let single = Histogram::new();
        let parts: Vec<Histogram> = (0..shards).map(|_| Histogram::new()).collect();
        for (i, &v) in samples.iter().enumerate() {
            single.record(v);
            parts[i % shards].record(v);
        }
        let merged = Histogram::new();
        for part in &parts {
            merged.merge(part);
        }
        prop_assert_eq!(merged.snapshot(), single.snapshot());
        for q in [0.0, 0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
            prop_assert_eq!(merged.percentile(q), single.percentile(q), "q={}", q);
        }
        prop_assert_eq!(merged.count(), samples.len() as u64);
    }

    /// Every value's bucket contains it: `lo <= v < hi` under the
    /// half-open bucket bounds (the top bucket saturates at `u64::MAX`,
    /// which stays representable because bounds are computed in u128).
    #[test]
    fn recorded_values_land_inside_their_bucket(v in value_strategy()) {
        let idx = bucket_index(v);
        let (lo, hi) = bucket_bounds(idx);
        prop_assert!(lo <= v, "lo {} > v {}", lo, v);
        if hi == u64::MAX {
            prop_assert!(v <= hi);
        } else {
            prop_assert!(v < hi, "v {} >= hi {} (bucket {})", v, hi, idx);
        }
        // Bucket edges partition: the previous bucket ends where this
        // one starts.
        if idx > 0 {
            let (_, prev_hi) = bucket_bounds(idx - 1);
            prop_assert_eq!(prev_hi, lo);
        }
    }

    /// Percentiles always return a value between the recorded extremes,
    /// and the 0/1 quantiles hit them exactly.
    #[test]
    fn percentiles_stay_within_recorded_extremes(
        samples in prop::collection::vec(value_strategy(), 1..100),
    ) {
        let hist = Histogram::new();
        for &v in &samples {
            hist.record(v);
        }
        let lo = *samples.iter().min().unwrap();
        let hi = *samples.iter().max().unwrap();
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            let p = hist.percentile(q).unwrap();
            prop_assert!(p >= lo && p <= hi, "q={} gave {} outside [{}, {}]", q, p, lo, hi);
        }
        prop_assert_eq!(hist.percentile(1.0), Some(hi));
        prop_assert_eq!(hist.min(), Some(lo));
        prop_assert_eq!(hist.max(), Some(hi));
    }

    /// The Ψ decile bucketing is a partition: every Ψ falls in exactly
    /// the bucket whose `[lower, upper)` range contains it, with the
    /// same boundary convention used by both the live counters and the
    /// replay renderer (satellite of the bucket-boundary fix).
    #[test]
    fn psi_values_land_inside_their_decile(psi in 0.0f64..1.5) {
        let idx = psi_bucket_index(psi);
        let (lo, hi) = psi_bucket_bounds(idx);
        prop_assert!(psi >= lo, "psi {} below lower bound {}", psi, lo);
        match hi {
            Some(hi) => prop_assert!(psi < hi, "psi {} not under upper bound {}", psi, hi),
            None => prop_assert!(psi >= *PSI_BUCKETS.last().unwrap()),
        }
        // Exact decile edges belong to the bucket they open, never the
        // one they close (the off-by-one the refactor guards against).
        for (i, &edge) in PSI_BUCKETS.iter().enumerate() {
            prop_assert_eq!(psi_bucket_index(edge), i + 1, "edge {}", edge);
        }
    }

    /// The milli-Ψ histogram layered under the decile counts sees every
    /// record exactly once and its total matches the decile totals.
    #[test]
    fn psi_histogram_layers_agree_on_totals(
        psis in prop::collection::vec(0.0f64..2.0, 1..100),
    ) {
        let hist = PsiHistogram::default();
        for &psi in &psis {
            hist.record(psi);
        }
        prop_assert_eq!(hist.total(), psis.len() as u64);
        prop_assert_eq!(hist.milli().count(), psis.len() as u64);
        prop_assert_eq!(hist.counts().iter().sum::<u64>(), psis.len() as u64);
    }
}
