//! Property-based equivalence of the amortized planning context against
//! the per-call QRG construction path.
//!
//! The refactor that introduced [`qosr::core::PlanCtx`] (cached
//! `QrgSkeleton`, CSR adjacency, reusable relax/backtrack scratch) must
//! be *observationally invisible*: for every session, availability
//! snapshot, and planner, the cached-context path must return a plan
//! byte-identical to `Qrg::build` + `plan_*` — including identical RNG
//! consumption for the random planner — or the exact same error.
//!
//! Scenarios cover dense synthetic chains and sparse random diamond
//! DAGs from `qosr_bench::synth`, with randomized availability (down to
//! infeasibility) and availability-change indices α, exercising all
//! four planners. One `PlanCtx` is reused across every planner and
//! scenario a test case touches, so skeleton memoization and buffer
//! re-preparation are exercised too.
//!
//! The second half locks the **delta-repair** path the same way: a
//! context driven exclusively through [`PlanCtx::prepare_delta`] /
//! [`PlanCtx::prepare_epoch`] over arbitrary availability walks must
//! hold exactly the state a from-scratch full prepare would build
//! against its *effective* view — Pass-I distances bit-for-bit, chosen
//! predecessor edges, every planner's plan, and the RNG stream. With
//! the default zero ψ-threshold the effective view is pinned to the
//! actual view, so repaired planning is byte-identical to full
//! planning; with a positive threshold the tests pin the quantization
//! semantics (threshold-exact moves quantized away, oscillation around
//! the effective value never drifts, crossings rebase it).

use proptest::prelude::*;
use qosr::core::{
    AvailabilityView, DeltaConfig, EpochSnapshot, PlanCtx, Planner, Qrg, QrgOptions, RepairOutcome,
    RepairStats,
};
use qosr::model::ResourceSpace;
use qosr_bench::synth::{random_dag_scenario, synthetic_chain, synthetic_chain_multi};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

const ALL_PLANNERS: [Planner; 4] = [
    Planner::Basic,
    Planner::Tradeoff,
    Planner::Random,
    Planner::Dag,
];

/// Random availability snapshot: most resources in a feasible band,
/// some scarce (forcing degradation or infeasibility), with random α.
fn random_view(space: &ResourceSpace, rng: &mut StdRng) -> AvailabilityView {
    let mut view = AvailabilityView::new();
    for rid in space.ids() {
        let avail = if rng.random::<f64>() < 0.2 {
            rng.random_range(0.5..=4.0) // scarce
        } else {
            rng.random_range(5.0..=150.0)
        };
        view.set_with_alpha(rid, avail, rng.random_range(0.3..=1.4));
    }
    view
}

/// Plans `session` under `view` with every planner through both paths
/// and asserts byte-identical outcomes and RNG streams.
fn assert_paths_agree(
    ctx: &mut PlanCtx,
    session: &qosr::model::SessionInstance,
    view: &AvailabilityView,
    seed: u64,
) -> Result<(), TestCaseError> {
    let options = QrgOptions::default();
    for planner in ALL_PLANNERS {
        let mut rng_legacy = StdRng::seed_from_u64(seed ^ 0x9e3779b97f4a7c15);
        let mut rng_ctx = rng_legacy.clone();

        let qrg = Qrg::build(session, view, &options);
        let legacy = planner.plan(&qrg, &mut rng_legacy);
        let cached = ctx.plan_session(session, view, &options, planner, &mut rng_ctx);

        match (legacy, cached) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b, "plan mismatch under {:?}", planner),
            (Err(a), Err(b)) => prop_assert_eq!(a, b, "error mismatch under {:?}", planner),
            (a, b) => prop_assert!(false, "{:?}: legacy {:?} vs ctx {:?}", planner, a, b),
        }
        // The cached path must consume the RNG identically (same
        // candidate sets in the same order), not merely end at the same
        // plan.
        prop_assert_eq!(
            rng_legacy,
            rng_ctx,
            "RNG streams diverged under {:?}",
            planner
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn ctx_matches_legacy_on_chains(seed in any::<u64>(), k in 1usize..=6, q in 1usize..=5) {
        let (session, space) = synthetic_chain(k, q);
        let mut avail_rng = StdRng::seed_from_u64(seed);
        let mut ctx = PlanCtx::new();
        // Several snapshots against one context: steady-state reuse.
        for _ in 0..3 {
            let view = random_view(&space, &mut avail_rng);
            assert_paths_agree(&mut ctx, &session, &view, seed)?;
        }
    }

    #[test]
    fn ctx_matches_legacy_on_dags(seed in any::<u64>()) {
        let (session, space, avail) = random_dag_scenario(seed);
        let mut ctx = PlanCtx::new();
        // The scenario's own availability, then randomized ones.
        let mut view = AvailabilityView::new();
        for (i, rid) in space.ids().enumerate() {
            view.set(rid, avail[i]);
        }
        assert_paths_agree(&mut ctx, &session, &view, seed)?;
        let mut avail_rng = StdRng::seed_from_u64(seed.wrapping_add(1));
        for _ in 0..2 {
            let view = random_view(&space, &mut avail_rng);
            assert_paths_agree(&mut ctx, &session, &view, seed)?;
        }
    }

    #[test]
    fn one_ctx_serves_interleaved_sessions(seed in any::<u64>(), k in 1usize..=4, q in 1usize..=4) {
        // Interleave two different services through the same context:
        // each prepare must fully re-specialize the buffers.
        let (chain, chain_space) = synthetic_chain(k, q);
        let (dag, dag_space, _) = random_dag_scenario(seed);
        let mut avail_rng = StdRng::seed_from_u64(seed ^ 0xabcdef);
        let mut ctx = PlanCtx::new();
        for _ in 0..2 {
            let view = random_view(&chain_space, &mut avail_rng);
            assert_paths_agree(&mut ctx, &chain, &view, seed)?;
            let view = random_view(&dag_space, &mut avail_rng);
            assert_paths_agree(&mut ctx, &dag, &view, seed)?;
        }
    }
}

/// Asserts a delta-driven context holds exactly the state a fresh full
/// prepare builds against the delta context's *effective* view: every
/// planner's plan (or error) and RNG stream, plus the Pass-I result
/// bit-for-bit.
fn assert_delta_state_matches_full(
    delta: &mut PlanCtx,
    session: &qosr::model::SessionInstance,
    seed: u64,
) -> Result<(), TestCaseError> {
    let options = QrgOptions::default();
    let view = delta
        .effective_view()
        .expect("delta cache is live after a delta-path prepare")
        .clone();
    let mut full = PlanCtx::new();
    full.prepare(session, &view, &options);
    for planner in ALL_PLANNERS {
        let mut rng_full = StdRng::seed_from_u64(seed ^ 0x5bd1e995);
        let mut rng_delta = rng_full.clone();
        let a = full.plan(planner, &mut rng_full);
        let b = delta.plan(planner, &mut rng_delta);
        match (a, b) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b, "repaired plan mismatch under {:?}", planner),
            (Err(a), Err(b)) => prop_assert_eq!(a, b, "error mismatch under {:?}", planner),
            (a, b) => prop_assert!(false, "{:?}: full {:?} vs repaired {:?}", planner, a, b),
        }
        prop_assert_eq!(
            rng_full,
            rng_delta,
            "RNG streams diverged under {:?}",
            planner
        );
    }
    let (full_dist, full_pred) = full.relaxation().expect("full context planned");
    let (delta_dist, delta_pred) = delta.relaxation().expect("delta context planned");
    prop_assert_eq!(full_dist.len(), delta_dist.len());
    for n in 0..full_dist.len() {
        prop_assert_eq!(
            full_dist[n].to_bits(),
            delta_dist[n].to_bits(),
            "Pass-I distance bits differ at node {}",
            n
        );
    }
    prop_assert_eq!(full_pred, delta_pred, "Pass-I predecessors differ");
    Ok(())
}

/// `view`'s observations as exact-comparable triples.
fn observations(view: &AvailabilityView) -> Vec<(qosr::model::ResourceId, u64, u64)> {
    view.iter()
        .map(|(rid, a, al)| (rid, a.to_bits(), al.to_bits()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn delta_walk_matches_full_at_zero_threshold(
        seed in any::<u64>(),
        k in 1usize..=4,
        q in 1usize..=4,
        slots in 1usize..=3,
    ) {
        // Arbitrary delta sequences: each step re-randomizes a subset of
        // the resources (sometimes none — a pure reuse; sometimes all —
        // forcing the DeltaTooLarge fallback), with the default exact
        // threshold. The repaired state must match a full prepare on
        // the current view at every step.
        let (session, space) = synthetic_chain_multi(k, q, slots);
        let rids: Vec<_> = space.ids().collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let options = QrgOptions::default();
        let mut delta = PlanCtx::new();
        let mut view = random_view(&space, &mut rng);
        let cold = delta.prepare_delta(&session, &view, &options);
        prop_assert!(cold.is_full(), "first prepare has nothing to repair");
        assert_delta_state_matches_full(&mut delta, &session, seed)?;
        for step in 0..5u64 {
            let p = [0.0, 0.2, 0.6, 1.0][rng.random_range(0..4usize)];
            for &rid in &rids {
                if rng.random::<f64>() < p {
                    let avail = if rng.random::<f64>() < 0.2 {
                        rng.random_range(0.5..=4.0)
                    } else {
                        rng.random_range(5.0..=150.0)
                    };
                    view.set_with_alpha(rid, avail, rng.random_range(0.3..=1.4));
                }
            }
            delta.prepare_delta(&session, &view, &options);
            // Exact threshold: the effective view tracks the actual one.
            let effective = delta.effective_view().expect("cache live");
            prop_assert_eq!(observations(effective), observations(&view));
            assert_delta_state_matches_full(&mut delta, &session, seed ^ step)?;
        }
    }

    #[test]
    fn threshold_exact_deltas_are_quantized_away(seed in any::<u64>(), k in 1usize..=3, q in 1usize..=3) {
        // τ = 0.25 against a base of 64.0: every bound below is exact in
        // binary floating point, so "exactly at the threshold" really is
        // exact. A move of 16.0 (== 0.25 · 64) must be quantized away; a
        // move of 17.0 must land.
        let (session, space) = synthetic_chain_multi(k, q, 2);
        let rids: Vec<_> = space.ids().collect();
        let options = QrgOptions::default();
        let mut delta = PlanCtx::new();
        delta.set_delta_config(DeltaConfig { psi_threshold: 0.25, max_dirty_fraction: 1.0 });
        let mut view = AvailabilityView::new();
        for &rid in &rids {
            view.set(rid, 64.0);
        }
        delta.prepare_delta(&session, &view, &options);
        let target = rids[(seed % rids.len() as u64) as usize];

        view.set(target, 80.0); // |80 − 64| == 0.25 · 64 — not a change
        let out = delta.prepare_delta(&session, &view, &options);
        prop_assert_eq!(out, RepairOutcome::Repaired(RepairStats::default()));
        prop_assert_eq!(delta.effective_view().expect("live").avail(target), 64.0);
        assert_delta_state_matches_full(&mut delta, &session, seed)?;

        view.set(target, 81.0); // 17 > 16 — past the threshold
        let out = delta.prepare_delta(&session, &view, &options);
        prop_assert!(
            out.stats().is_some_and(|s| s.resources_changed == 1),
            "a move past the threshold must repair exactly one resource, got {:?}",
            out
        );
        prop_assert_eq!(delta.effective_view().expect("live").avail(target), 81.0);
        assert_delta_state_matches_full(&mut delta, &session, seed)?;

        // α quantizes independently: 1.0 → 1.25 is exactly at the
        // threshold (no change), 1.0 → 1.5 crosses it.
        view.set_with_alpha(target, 81.0, 1.25);
        let out = delta.prepare_delta(&session, &view, &options);
        prop_assert_eq!(out, RepairOutcome::Repaired(RepairStats::default()));
        prop_assert_eq!(delta.effective_view().expect("live").alpha(target), 1.0);
        view.set_with_alpha(target, 81.0, 1.5);
        let out = delta.prepare_delta(&session, &view, &options);
        prop_assert!(out.stats().is_some_and(|s| s.resources_changed == 1));
        prop_assert_eq!(delta.effective_view().expect("live").alpha(target), 1.5);
        assert_delta_state_matches_full(&mut delta, &session, seed)?;
    }

    #[test]
    fn oscillation_crosses_the_threshold_both_ways(seed in any::<u64>(), k in 1usize..=3, q in 2usize..=4) {
        // Quantization is relative to the *effective* (last applied)
        // value, so sub-threshold oscillation never drifts the effective
        // view — and a crossing rebases it, changing which later moves
        // count.
        let (session, space) = synthetic_chain_multi(k, q, 2);
        let rids: Vec<_> = space.ids().collect();
        let options = QrgOptions::default();
        let mut delta = PlanCtx::new();
        delta.set_delta_config(DeltaConfig { psi_threshold: 0.25, max_dirty_fraction: 1.0 });
        let mut view = AvailabilityView::new();
        for &rid in &rids {
            view.set(rid, 64.0);
        }
        delta.prepare_delta(&session, &view, &options);
        let target = rids[(seed % rids.len() as u64) as usize];

        // Oscillate within the threshold band around 64 (±16): pinned.
        for &osc in &[78.0, 50.0, 78.0, 50.0] {
            view.set(target, osc);
            let out = delta.prepare_delta(&session, &view, &options);
            prop_assert_eq!(out, RepairOutcome::Repaired(RepairStats::default()));
            prop_assert_eq!(delta.effective_view().expect("live").avail(target), 64.0);
        }
        assert_delta_state_matches_full(&mut delta, &session, seed)?;

        // Cross upward: 82 − 64 = 18 > 16 — applied, and the band
        // rebases around 82 (±20.5).
        view.set(target, 82.0);
        prop_assert!(delta.prepare_delta(&session, &view, &options).stats().is_some_and(|s| s.resources_changed == 1));
        prop_assert_eq!(delta.effective_view().expect("live").avail(target), 82.0);
        // 64 is now *inside* the rebased band (|64 − 82| = 18 < 20.5).
        view.set(target, 64.0);
        prop_assert_eq!(delta.prepare_delta(&session, &view, &options), RepairOutcome::Repaired(RepairStats::default()));
        prop_assert_eq!(delta.effective_view().expect("live").avail(target), 82.0);
        // Cross downward: |50 − 82| = 32 > 20.5 — applied.
        view.set(target, 50.0);
        prop_assert!(delta.prepare_delta(&session, &view, &options).stats().is_some_and(|s| s.resources_changed == 1));
        prop_assert_eq!(delta.effective_view().expect("live").avail(target), 50.0);
        assert_delta_state_matches_full(&mut delta, &session, seed)?;
    }

    #[test]
    fn epoch_wrap_keeps_tokens_and_repairs_correct(seed in any::<u64>(), k in 1usize..=3, q in 1usize..=4) {
        // Epoch numbers wrap; generation tokens must not. Across the
        // wrap, re-preparing the same snapshot stays a token-compare
        // no-op and fresh snapshots keep repairing correctly.
        let (session, space) = synthetic_chain_multi(k, q, 2);
        let rids: Vec<_> = space.ids().collect();
        let options = QrgOptions::default();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut delta = PlanCtx::new();
        let mut view = random_view(&space, &mut rng);
        let mut epoch = u64::MAX - 1;
        for step in 0..4u64 {
            let snapshot = EpochSnapshot::new(epoch, step as f64, view.clone());
            delta.prepare_epoch(&session, &snapshot, &options);
            let again = delta.prepare_epoch(&session, &snapshot, &options);
            prop_assert_eq!(
                again,
                RepairOutcome::Repaired(RepairStats::default()),
                "same-snapshot re-prepare must be a token no-op (epoch {})",
                epoch
            );
            assert_delta_state_matches_full(&mut delta, &session, seed ^ step)?;
            epoch = epoch.wrapping_add(1);
            let rid = rids[rng.random_range(0..rids.len())];
            view.set_with_alpha(rid, rng.random_range(5.0..=150.0), rng.random_range(0.3..=1.4));
        }
    }

    #[test]
    fn post_conflict_working_view_replans_match_full(seed in any::<u64>(), k in 2usize..=4, q in 2usize..=4) {
        // The admission commit phase debits a working copy of the epoch
        // snapshot as earlier arrivals commit, then replans conflicted
        // requests against it through the delta path. Those replans must
        // match a full prepare on the working view, debit after debit.
        let (session, space) = synthetic_chain_multi(k, q, 2);
        let rids: Vec<_> = space.ids().collect();
        let options = QrgOptions::default();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut view = AvailabilityView::new();
        for &rid in &rids {
            view.set_with_alpha(rid, rng.random_range(80.0..=200.0), rng.random_range(0.5..=1.2));
        }
        let snapshot = EpochSnapshot::new(0, 0.0, view);
        let mut delta = PlanCtx::new();
        delta.prepare_epoch(&session, &snapshot, &options);
        assert_delta_state_matches_full(&mut delta, &session, seed)?;
        let mut working = snapshot.working();
        for conflict in 0..3u64 {
            for &rid in &rids {
                if rng.random::<f64>() < 0.4 {
                    working.debit(rid, rng.random_range(1.0..=60.0));
                }
            }
            delta.prepare_delta(&session, &working, &options);
            let effective = delta.effective_view().expect("cache live");
            prop_assert_eq!(observations(effective), observations(&working));
            assert_delta_state_matches_full(&mut delta, &session, seed ^ conflict)?;
        }
    }
}
