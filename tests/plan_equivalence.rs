//! Property-based equivalence of the amortized planning context against
//! the per-call QRG construction path.
//!
//! The refactor that introduced [`qosr::core::PlanCtx`] (cached
//! `QrgSkeleton`, CSR adjacency, reusable relax/backtrack scratch) must
//! be *observationally invisible*: for every session, availability
//! snapshot, and planner, the cached-context path must return a plan
//! byte-identical to `Qrg::build` + `plan_*` — including identical RNG
//! consumption for the random planner — or the exact same error.
//!
//! Scenarios cover dense synthetic chains and sparse random diamond
//! DAGs from `qosr_bench::synth`, with randomized availability (down to
//! infeasibility) and availability-change indices α, exercising all
//! four planners. One `PlanCtx` is reused across every planner and
//! scenario a test case touches, so skeleton memoization and buffer
//! re-preparation are exercised too.

use proptest::prelude::*;
use qosr::core::{AvailabilityView, PlanCtx, Planner, Qrg, QrgOptions};
use qosr::model::ResourceSpace;
use qosr_bench::synth::{random_dag_scenario, synthetic_chain};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

const ALL_PLANNERS: [Planner; 4] = [
    Planner::Basic,
    Planner::Tradeoff,
    Planner::Random,
    Planner::Dag,
];

/// Random availability snapshot: most resources in a feasible band,
/// some scarce (forcing degradation or infeasibility), with random α.
fn random_view(space: &ResourceSpace, rng: &mut StdRng) -> AvailabilityView {
    let mut view = AvailabilityView::new();
    for rid in space.ids() {
        let avail = if rng.random::<f64>() < 0.2 {
            rng.random_range(0.5..=4.0) // scarce
        } else {
            rng.random_range(5.0..=150.0)
        };
        view.set_with_alpha(rid, avail, rng.random_range(0.3..=1.4));
    }
    view
}

/// Plans `session` under `view` with every planner through both paths
/// and asserts byte-identical outcomes and RNG streams.
fn assert_paths_agree(
    ctx: &mut PlanCtx,
    session: &qosr::model::SessionInstance,
    view: &AvailabilityView,
    seed: u64,
) -> Result<(), TestCaseError> {
    let options = QrgOptions::default();
    for planner in ALL_PLANNERS {
        let mut rng_legacy = StdRng::seed_from_u64(seed ^ 0x9e3779b97f4a7c15);
        let mut rng_ctx = rng_legacy.clone();

        let qrg = Qrg::build(session, view, &options);
        let legacy = planner.plan(&qrg, &mut rng_legacy);
        let cached = ctx.plan_session(session, view, &options, planner, &mut rng_ctx);

        match (legacy, cached) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b, "plan mismatch under {:?}", planner),
            (Err(a), Err(b)) => prop_assert_eq!(a, b, "error mismatch under {:?}", planner),
            (a, b) => prop_assert!(false, "{:?}: legacy {:?} vs ctx {:?}", planner, a, b),
        }
        // The cached path must consume the RNG identically (same
        // candidate sets in the same order), not merely end at the same
        // plan.
        prop_assert_eq!(
            rng_legacy,
            rng_ctx,
            "RNG streams diverged under {:?}",
            planner
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn ctx_matches_legacy_on_chains(seed in any::<u64>(), k in 1usize..=6, q in 1usize..=5) {
        let (session, space) = synthetic_chain(k, q);
        let mut avail_rng = StdRng::seed_from_u64(seed);
        let mut ctx = PlanCtx::new();
        // Several snapshots against one context: steady-state reuse.
        for _ in 0..3 {
            let view = random_view(&space, &mut avail_rng);
            assert_paths_agree(&mut ctx, &session, &view, seed)?;
        }
    }

    #[test]
    fn ctx_matches_legacy_on_dags(seed in any::<u64>()) {
        let (session, space, avail) = random_dag_scenario(seed);
        let mut ctx = PlanCtx::new();
        // The scenario's own availability, then randomized ones.
        let mut view = AvailabilityView::new();
        for (i, rid) in space.ids().enumerate() {
            view.set(rid, avail[i]);
        }
        assert_paths_agree(&mut ctx, &session, &view, seed)?;
        let mut avail_rng = StdRng::seed_from_u64(seed.wrapping_add(1));
        for _ in 0..2 {
            let view = random_view(&space, &mut avail_rng);
            assert_paths_agree(&mut ctx, &session, &view, seed)?;
        }
    }

    #[test]
    fn one_ctx_serves_interleaved_sessions(seed in any::<u64>(), k in 1usize..=4, q in 1usize..=4) {
        // Interleave two different services through the same context:
        // each prepare must fully re-specialize the buffers.
        let (chain, chain_space) = synthetic_chain(k, q);
        let (dag, dag_space, _) = random_dag_scenario(seed);
        let mut avail_rng = StdRng::seed_from_u64(seed ^ 0xabcdef);
        let mut ctx = PlanCtx::new();
        for _ in 0..2 {
            let view = random_view(&chain_space, &mut avail_rng);
            assert_paths_agree(&mut ctx, &chain, &view, seed)?;
            let view = random_view(&dag_space, &mut avail_rng);
            assert_paths_agree(&mut ctx, &dag, &view, seed)?;
        }
    }
}
