//! Property-based tests of the advance-reservation timeline: arbitrary
//! booking/cancel sequences are checked against a brute-force reference
//! that samples the reserved level on a fine grid, the O(log n)
//! [`TimelineIndex`] is pinned bit-identical to the linear [`Timeline`]
//! oracle, and preempt-and-repack is checked for conservation (no
//! overcommit, no missed deadline).

use proptest::prelude::*;
use qosr::broker::{
    AdvanceRegistry, AdvanceRequest, SessionId, SimTime, Timeline, TimelineBroker, TimelineIndex,
};
use qosr::model::{ResourceId, ResourceVector};
use std::sync::Arc;

#[derive(Debug, Clone)]
enum Op {
    Book {
        session: u8,
        from: u8,
        len: u8,
        amount: f64,
    },
    Cancel {
        session: u8,
    },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0u8..5, 0u8..40, 1u8..20, 1.0f64..50.0).prop_map(|(session, from, len, amount)| {
            Op::Book { session, from, len, amount }
        }),
        1 => (0u8..5).prop_map(|session| Op::Cancel { session }),
    ]
}

const CAPACITY: f64 = 100.0;

fn rigid(session: u8, amount: f64, from: SimTime, to: SimTime) -> AdvanceRequest {
    let demand = ResourceVector::from_pairs([(ResourceId(0), amount)]).expect("demand");
    AdvanceRequest::rigid(SessionId(session as u64), demand, from, to)
}

/// Reference model: a dense per-half-unit grid of reserved amounts.
#[derive(Default)]
struct Grid {
    /// reserved[t2] = total booked over [t2/2, t2/2 + 0.5).
    reserved: Vec<f64>,
    bookings: Vec<(u8, usize, usize, f64)>, // session, from2, to2, amount
}

impl Grid {
    fn max_over(&self, from2: usize, to2: usize) -> f64 {
        (from2..to2.max(from2 + 1))
            .map(|t| self.reserved.get(t).copied().unwrap_or(0.0))
            .fold(0.0, f64::max)
    }
    fn add(&mut self, session: u8, from2: usize, to2: usize, amount: f64) {
        if self.reserved.len() < to2 {
            self.reserved.resize(to2, 0.0);
        }
        for t in from2..to2 {
            self.reserved[t] += amount;
        }
        self.bookings.push((session, from2, to2, amount));
    }
    /// Cancels a session, returning `(released_volume, bookings_removed)`.
    fn cancel(&mut self, session: u8) -> (f64, usize) {
        let mut volume = 0.0;
        let mut removed = 0;
        let mut kept = Vec::new();
        for b in self.bookings.drain(..) {
            if b.0 == session {
                for t in b.1..b.2 {
                    self.reserved[t] -= b.3;
                }
                volume += b.3 * (b.2 - b.1) as f64 / 2.0;
                removed += 1;
            } else {
                kept.push(b);
            }
        }
        self.bookings = kept;
        (volume, removed)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn advance_registry_matches_grid_reference(ops in prop::collection::vec(op_strategy(), 1..40)) {
        let mut registry = AdvanceRegistry::new();
        registry.register(Arc::new(TimelineBroker::new(ResourceId(0), CAPACITY)));
        let mut grid = Grid::default();
        for op in &ops {
            match *op {
                Op::Book { session, from, len, amount } => {
                    // Windows on integer bounds; the grid uses half-unit
                    // resolution so boundaries are exact.
                    let (from2, to2) = (from as usize * 2, (from as usize + len as usize) * 2);
                    let t_from = SimTime::new(from as f64);
                    let t_to = SimTime::new((from as usize + len as usize) as f64);
                    let free = CAPACITY - grid.max_over(from2, to2);
                    let outcome = registry.book(
                        &rigid(session, amount, t_from, t_to), SimTime::ZERO);
                    if amount <= free + 1e-9 {
                        prop_assert!(outcome.is_booked(), "rejected a fitting booking");
                        grid.add(session, from2, to2, amount);
                    } else {
                        prop_assert!(!outcome.is_booked(), "accepted an overcommit");
                    }
                }
                Op::Cancel { session } => {
                    let (expected_volume, expected_removed) = grid.cancel(session);
                    let outcome = registry.cancel_all(SessionId(session as u64));
                    prop_assert!((outcome.released_volume - expected_volume).abs() < 1e-6);
                    prop_assert_eq!(outcome.bookings_removed, expected_removed);
                }
            }
            // Availability agrees with the reference on a sample of windows.
            let broker = registry.get(ResourceId(0)).expect("registered");
            for (a, b) in [(0usize, 20usize), (10, 45), (30, 60), (0, 60)] {
                let lib = broker.available_over(SimTime::new(a as f64), SimTime::new(b as f64));
                let reference = CAPACITY - grid.max_over(a * 2, b * 2);
                prop_assert!((lib - reference).abs() < 1e-6,
                    "window [{a},{b}): {lib} vs {reference}");
            }
        }
    }

    /// Timeline add/remove are exact inverses and compaction preserves
    /// all queries at or after the compaction point.
    #[test]
    fn timeline_add_remove_compact(
        windows in prop::collection::vec((0u8..40, 1u8..20, 1.0f64..50.0), 1..16),
        cut in 0u8..50,
    ) {
        let mut tl = Timeline::new();
        for &(from, len, amount) in &windows {
            tl.add(SimTime::new(from as f64), SimTime::new((from as u16 + len as u16) as f64), amount);
        }
        // Snapshot some queries, compact, re-check those at/after `cut`.
        let probes: Vec<(f64, f64)> = (0..12)
            .map(|i| (cut as f64 + i as f64, cut as f64 + i as f64 + 3.0))
            .collect();
        let before: Vec<f64> = probes
            .iter()
            .map(|&(a, b)| tl.max_reserved(SimTime::new(a), SimTime::new(b)))
            .collect();
        tl.compact(SimTime::new(cut as f64));
        for (&(a, b), &expect) in probes.iter().zip(&before) {
            let got = tl.max_reserved(SimTime::new(a), SimTime::new(b));
            prop_assert!((got - expect).abs() < 1e-9, "after compact: [{a},{b})");
        }
        // Removing everything empties the profile for future windows.
        let mut tl = Timeline::new();
        for &(from, len, amount) in &windows {
            let (f, t) = (SimTime::new(from as f64), SimTime::new((from as u16 + len as u16) as f64));
            tl.add(f, t, amount);
        }
        for &(from, len, amount) in &windows {
            let (f, t) = (SimTime::new(from as f64), SimTime::new((from as u16 + len as u16) as f64));
            tl.remove(f, t, amount);
        }
        prop_assert_eq!(tl.breakpoints(), 0);
        prop_assert_eq!(tl.max_reserved(SimTime::new(0.0), SimTime::new(100.0)), 0.0);
    }
}

// ---------------------------------------------------------------------
// TimelineIndex ≡ Timeline differential tests
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum IxOp {
    Add { from: u8, len: u8, amount: u8 },
    RemoveEarlier { pick: usize },
    Compact { at: u8 },
}

fn ix_op_strategy() -> impl Strategy<Value = IxOp> {
    prop_oneof![
        5 => (0u8..60, 1u8..20, 1u8..64).prop_map(|(from, len, amount)| {
            IxOp::Add { from, len, amount }
        }),
        2 => (0usize..64).prop_map(|pick| IxOp::RemoveEarlier { pick }),
        1 => (0u8..40).prop_map(|at| IxOp::Compact { at }),
    ]
}

const IX_PROBES: [(f64, f64); 6] = [
    (0.0, 80.0),
    (5.0, 23.0),
    (17.0, 41.0),
    (33.0, 34.0),
    (0.0, 1.0),
    (79.0, 80.0),
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// With integer amounts every delta sum is exact, so the treap index
    /// must agree with the linear oracle *bit for bit* on every window
    /// maximum, after every operation, including compactions.
    #[test]
    fn index_matches_timeline_bitwise(ops in prop::collection::vec(ix_op_strategy(), 1..48)) {
        let mut tl = Timeline::new();
        let mut ix = TimelineIndex::new();
        let mut live: Vec<(SimTime, SimTime, f64)> = Vec::new();
        for op in &ops {
            match *op {
                IxOp::Add { from, len, amount } => {
                    let (f, t) = (
                        SimTime::new(from as f64),
                        SimTime::new((from as u16 + len as u16) as f64),
                    );
                    tl.add(f, t, amount as f64);
                    ix.add(f, t, amount as f64);
                    live.push((f, t, amount as f64));
                }
                IxOp::RemoveEarlier { pick } => {
                    if !live.is_empty() {
                        let (f, t, amount) = live.swap_remove(pick % live.len());
                        tl.remove(f, t, amount);
                        ix.remove(f, t, amount);
                    }
                }
                IxOp::Compact { at } => {
                    let now = SimTime::new(at as f64);
                    tl.compact(now);
                    ix.compact(now);
                    live.retain(|&(_, t, _)| t > now);
                }
            }
            prop_assert_eq!(tl.breakpoints(), ix.breakpoints(), "breakpoint count diverged");
            for (a, b) in IX_PROBES {
                let want = tl.max_reserved(SimTime::new(a), SimTime::new(b));
                let got = ix.max_reserved(SimTime::new(a), SimTime::new(b));
                prop_assert_eq!(
                    want.to_bits(), got.to_bits(),
                    "window [{}, {}): oracle {} vs index {}", a, b, want, got
                );
            }
        }
    }

    /// With arbitrary float amounts the two structures may associate
    /// sums differently; they must still agree to float tolerance.
    #[test]
    fn index_matches_timeline_within_tolerance(
        windows in prop::collection::vec((0u8..60, 1u8..20, 1e-3f64..1e3), 1..32),
    ) {
        let mut tl = Timeline::new();
        let mut ix = TimelineIndex::new();
        for &(from, len, amount) in &windows {
            let (f, t) = (
                SimTime::new(from as f64),
                SimTime::new((from as u16 + len as u16) as f64),
            );
            tl.add(f, t, amount);
            ix.add(f, t, amount);
            for (a, b) in IX_PROBES {
                let want = tl.max_reserved(SimTime::new(a), SimTime::new(b));
                let got = ix.max_reserved(SimTime::new(a), SimTime::new(b));
                prop_assert!(
                    (want - got).abs() <= 1e-9 * want.abs().max(1.0),
                    "window [{a}, {b}): oracle {want} vs index {got}"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Preempt-and-repack conservation
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum AdvOp {
    Malleable {
        volume: f64,
        deadline: u8,
        max_rate: f64,
    },
    Rigid {
        amount: f64,
        from: u8,
        len: u8,
    },
}

fn adv_op_strategy() -> impl Strategy<Value = AdvOp> {
    prop_oneof![
        2 => (1.0f64..400.0, 20u8..120, 1.0f64..50.0).prop_map(|(volume, deadline, max_rate)| {
            AdvOp::Malleable { volume, deadline, max_rate }
        }),
        2 => (1.0f64..80.0, 0u8..50, 1u8..20).prop_map(|(amount, from, len)| {
            AdvOp::Rigid { amount, from, len }
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Conservation under preempt-and-repack: whatever sequence of
    /// malleable transfers and preempting rigid requests arrives, no
    /// booking ever exceeds capacity and every admitted malleable
    /// transfer keeps its full volume booked before its deadline.
    #[test]
    fn repack_conserves_capacity_and_deadlines(
        ops in prop::collection::vec(adv_op_strategy(), 1..24),
    ) {
        let mut registry = AdvanceRegistry::new();
        registry.register(Arc::new(TimelineBroker::new(ResourceId(0), CAPACITY)));
        let now = SimTime::ZERO;
        let mut admitted: Vec<(SessionId, f64, SimTime)> = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            let session = SessionId(1 + i as u64);
            match *op {
                AdvOp::Malleable { volume, deadline, max_rate } => {
                    let request = AdvanceRequest::malleable(
                        session, ResourceId(0), volume, SimTime::new(deadline as f64),
                    ).max_rate(max_rate);
                    if registry.book(&request, now).is_booked() {
                        admitted.push((session, volume, SimTime::new(deadline as f64)));
                    }
                }
                AdvOp::Rigid { amount, from, len } => {
                    let demand = ResourceVector::from_pairs([(ResourceId(0), amount)])
                        .expect("demand");
                    let request = AdvanceRequest::rigid(
                        session, demand,
                        SimTime::new(from as f64),
                        SimTime::new((from as u16 + len as u16) as f64),
                    ).allow_preempt(true);
                    let _ = registry.book(&request, now);
                }
            }
            let broker = registry.get(ResourceId(0)).expect("registered");
            // No window is ever overcommitted.
            for w in 0..13 {
                let (a, b) = (w as f64 * 10.0, w as f64 * 10.0 + 10.0);
                let free = broker.available_over(SimTime::new(a), SimTime::new(b));
                prop_assert!(free >= -1e-9, "overcommit in [{a}, {b}): free = {free}");
            }
            // Every admitted malleable transfer still has its full
            // volume booked, entirely before its deadline — even after
            // arbitrary repacks.
            for &(sid, volume, deadline) in &admitted {
                let bookings = broker.bookings_of(sid);
                prop_assert!(!bookings.is_empty(), "session {sid:?} lost its bookings");
                let booked: f64 = bookings.iter().map(|b| b.volume()).sum();
                prop_assert!(
                    (booked - volume).abs() <= 1e-6 * volume.max(1.0),
                    "session {sid:?}: booked {booked} of {volume}"
                );
                for b in &bookings {
                    prop_assert!(
                        b.to <= deadline,
                        "session {sid:?}: segment ends {:?} after deadline {deadline:?}", b.to
                    );
                }
            }
        }
    }
}
