//! Property-based tests of the advance-reservation timeline: arbitrary
//! booking/cancel sequences are checked against a brute-force reference
//! that samples the reserved level on a fine grid.

use proptest::prelude::*;
use qosr::broker::{SessionId, SimTime, Timeline, TimelineBroker};
use qosr::model::ResourceId;

#[derive(Debug, Clone)]
enum Op {
    Book {
        session: u8,
        from: u8,
        len: u8,
        amount: f64,
    },
    Cancel {
        session: u8,
    },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0u8..5, 0u8..40, 1u8..20, 1.0f64..50.0).prop_map(|(session, from, len, amount)| {
            Op::Book { session, from, len, amount }
        }),
        1 => (0u8..5).prop_map(|session| Op::Cancel { session }),
    ]
}

const CAPACITY: f64 = 100.0;

/// Reference model: a dense per-half-unit grid of reserved amounts.
#[derive(Default)]
struct Grid {
    /// reserved[t2] = total booked over [t2/2, t2/2 + 0.5).
    reserved: Vec<f64>,
    bookings: Vec<(u8, usize, usize, f64)>, // session, from2, to2, amount
}

impl Grid {
    fn max_over(&self, from2: usize, to2: usize) -> f64 {
        (from2..to2.max(from2 + 1))
            .map(|t| self.reserved.get(t).copied().unwrap_or(0.0))
            .fold(0.0, f64::max)
    }
    fn add(&mut self, session: u8, from2: usize, to2: usize, amount: f64) {
        if self.reserved.len() < to2 {
            self.reserved.resize(to2, 0.0);
        }
        for t in from2..to2 {
            self.reserved[t] += amount;
        }
        self.bookings.push((session, from2, to2, amount));
    }
    fn cancel(&mut self, session: u8) -> f64 {
        let mut total = 0.0;
        let mut kept = Vec::new();
        for b in self.bookings.drain(..) {
            if b.0 == session {
                for t in b.1..b.2 {
                    self.reserved[t] -= b.3;
                }
                total += b.3;
            } else {
                kept.push(b);
            }
        }
        self.bookings = kept;
        total
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn timeline_broker_matches_grid_reference(ops in prop::collection::vec(op_strategy(), 1..40)) {
        let broker = TimelineBroker::new(ResourceId(0), CAPACITY);
        let mut grid = Grid::default();
        for op in &ops {
            match *op {
                Op::Book { session, from, len, amount } => {
                    // Windows on integer bounds; the grid uses half-unit
                    // resolution so boundaries are exact.
                    let (from2, to2) = (from as usize * 2, (from as usize + len as usize) * 2);
                    let t_from = SimTime::new(from as f64);
                    let t_to = SimTime::new((from as usize + len as usize) as f64);
                    let free = CAPACITY - grid.max_over(from2, to2);
                    let result = broker.reserve_over(
                        SessionId(session as u64), amount, t_from, t_to);
                    if amount <= free + 1e-9 {
                        prop_assert!(result.is_ok(), "rejected a fitting booking");
                        grid.add(session, from2, to2, amount);
                    } else {
                        prop_assert!(result.is_err(), "accepted an overcommit");
                    }
                }
                Op::Cancel { session } => {
                    let expected = grid.cancel(session);
                    let released = broker.cancel(SessionId(session as u64));
                    prop_assert!((released - expected).abs() < 1e-6);
                }
            }
            // Availability agrees with the reference on a sample of windows.
            for (a, b) in [(0usize, 20usize), (10, 45), (30, 60), (0, 60)] {
                let lib = broker.available_over(SimTime::new(a as f64), SimTime::new(b as f64));
                let reference = CAPACITY - grid.max_over(a * 2, b * 2);
                prop_assert!((lib - reference).abs() < 1e-6,
                    "window [{a},{b}): {lib} vs {reference}");
            }
        }
    }

    /// Timeline add/remove are exact inverses and compaction preserves
    /// all queries at or after the compaction point.
    #[test]
    fn timeline_add_remove_compact(
        windows in prop::collection::vec((0u8..40, 1u8..20, 1.0f64..50.0), 1..16),
        cut in 0u8..50,
    ) {
        let mut tl = Timeline::new();
        for &(from, len, amount) in &windows {
            tl.add(SimTime::new(from as f64), SimTime::new((from as u16 + len as u16) as f64), amount);
        }
        // Snapshot some queries, compact, re-check those at/after `cut`.
        let probes: Vec<(f64, f64)> = (0..12)
            .map(|i| (cut as f64 + i as f64, cut as f64 + i as f64 + 3.0))
            .collect();
        let before: Vec<f64> = probes
            .iter()
            .map(|&(a, b)| tl.max_reserved(SimTime::new(a), SimTime::new(b)))
            .collect();
        tl.compact(SimTime::new(cut as f64));
        for (&(a, b), &expect) in probes.iter().zip(&before) {
            let got = tl.max_reserved(SimTime::new(a), SimTime::new(b));
            prop_assert!((got - expect).abs() < 1e-9, "after compact: [{a},{b})");
        }
        // Removing everything empties the profile for future windows.
        let mut tl = Timeline::new();
        for &(from, len, amount) in &windows {
            let (f, t) = (SimTime::new(from as f64), SimTime::new((from as u16 + len as u16) as f64));
            tl.add(f, t, amount);
        }
        for &(from, len, amount) in &windows {
            let (f, t) = (SimTime::new(from as f64), SimTime::new((from as u16 + len as u16) as f64));
            tl.remove(f, t, amount);
        }
        prop_assert_eq!(tl.breakpoints(), 0);
        prop_assert_eq!(tl.max_reserved(SimTime::new(0.0), SimTime::new(100.0)), 0.0);
    }
}
