//! Numeric replication of the paper's figure-8 walkthrough of Pass II's
//! fan-out non-convergence resolution (§4.3.2).
//!
//! Setup (figure 6's DAG): `c1 → c2 → {c3, c4} → c5`, fan-out at `c2`,
//! fan-in at `c5`. After Pass I, backtracking fixes `c3`'s output `Qn`
//! and `c4`'s output `Qp`, but the branches' Pass-I predecessors pull
//! `c2` toward *different* output nodes. The paper resolves locally:
//!
//! > "for `Qi` to reach `Qn` and `Qp`, the highest Ψe is **0.30**; while
//! > for `Qh` to reach `Qn` and `Qp`, the highest Ψe is **0.35**" — so
//! > `Qi` is selected.
//!
//! We build a QRG whose relevant edges carry exactly those contention
//! indices (demands against availability 100) and assert the resolution.

use qosr::core::{plan_dag, relax, AvailabilityView, NodeRef, Qrg, QrgOptions};
use qosr::model::*;
use std::sync::Arc;

fn build() -> (SessionInstance, ResourceSpace) {
    let src = QosSchema::new("src", ["q"]);
    let s1 = QosSchema::new("c1.out", ["q"]);
    let s2 = QosSchema::new("c2.out", ["q"]);
    let s3 = QosSchema::new("c3.out", ["q"]);
    let s4 = QosSchema::new("c4.out", ["q"]);
    let s5 = QosSchema::new("c5.out", ["q"]);
    let v = |s: &Arc<QosSchema>, x: u32| QosVector::new(s.clone(), [x]);

    let mut space = ResourceSpace::new();
    let r: Vec<ResourceId> = (0..5)
        .map(|i| space.register(format!("r{i}"), ResourceKind::Compute))
        .collect();

    // c1: single output level feeding c2.
    let c1 = ComponentSpec::new(
        "c1",
        vec![v(&src, 0)],
        vec![v(&s1, 1)],
        vec![SlotSpec::new("cpu", ResourceKind::Compute)],
        Arc::new(
            TableTranslation::builder(1, 1, 1)
                .entry(0, 0, [5.0])
                .build(),
        ),
    );
    // c2 (fan-out): outputs Qh (index 0) and Qi (index 1).
    // Pass-I distances: dist(Qh) = 0.10, dist(Qi) = 0.15.
    let c2 = ComponentSpec::new(
        "c2",
        vec![v(&s1, 1)],
        vec![v(&s2, 1), v(&s2, 2)], // Qh, Qi
        vec![SlotSpec::new("cpu", ResourceKind::Compute)],
        Arc::new(
            TableTranslation::builder(1, 2, 1)
                .entry(0, 0, [10.0]) // -> Qh at psi 0.10
                .entry(0, 1, [15.0]) // -> Qi at psi 0.15
                .build(),
        ),
    );
    // c3: single output Qn. From Qh it costs psi 0.35; from Qi, 0.30 —
    // the paper's numbers.
    let c3 = ComponentSpec::new(
        "c3",
        vec![v(&s2, 1), v(&s2, 2)],
        vec![v(&s3, 1)], // Qn
        vec![SlotSpec::new("cpu", ResourceKind::Compute)],
        Arc::new(
            TableTranslation::builder(2, 1, 1)
                .entry(0, 0, [35.0]) // Qh -> Qn : 0.35
                .entry(1, 0, [30.0]) // Qi -> Qn : 0.30
                .build(),
        ),
    );
    // c4: single output Qp. From Qh: 0.20 (tempting Pass I); from Qi: 0.25.
    let c4 = ComponentSpec::new(
        "c4",
        vec![v(&s2, 1), v(&s2, 2)],
        vec![v(&s4, 1)], // Qp
        vec![SlotSpec::new("cpu", ResourceKind::Compute)],
        Arc::new(
            TableTranslation::builder(2, 1, 1)
                .entry(0, 0, [20.0]) // Qh -> Qp : 0.20
                .entry(1, 0, [25.0]) // Qi -> Qp : 0.25
                .build(),
        ),
    );
    // c5 (fan-in): its input Qr is the concatenation of (Qn, Qp).
    let c5 = ComponentSpec::new(
        "c5",
        vec![QosVector::concat([&v(&s3, 1), &v(&s4, 1)])],
        vec![v(&s5, 1)], // Qv
        vec![SlotSpec::new("cpu", ResourceKind::Compute)],
        Arc::new(
            TableTranslation::builder(1, 1, 1)
                .entry(0, 0, [8.0])
                .build(),
        ),
    );

    let graph = DependencyGraph::new(5, vec![(0, 1), (1, 2), (1, 3), (2, 4), (3, 4)]).unwrap();
    let service =
        Arc::new(ServiceSpec::new("figure6", vec![c1, c2, c3, c4, c5], graph, vec![1]).unwrap());
    let session = SessionInstance::new(
        service,
        r.iter().map(|&rid| ComponentBinding::new([rid])).collect(),
        1.0,
    )
    .unwrap();
    (session, space)
}

#[test]
fn pass_one_creates_the_non_convergence() {
    let (session, space) = build();
    let view = AvailabilityView::from_fn(space.ids(), |_| 100.0);
    let qrg = Qrg::build(&session, &view, &QrgOptions::default());
    let r = relax(&qrg);

    // Branch distances as designed.
    assert!((r.dist[qrg.out_node(1, 0)] - 0.10).abs() < 1e-12); // Qh
    assert!((r.dist[qrg.out_node(1, 1)] - 0.15).abs() < 1e-12); // Qi
                                                                // c3's best route to Qn goes through Qi (0.30 beats 0.35)…
    let pred_c3 = r.pred[qrg.out_node(2, 0)].unwrap();
    assert_eq!(
        qrg.node_ref(qrg.edge(pred_c3).from),
        NodeRef::In {
            component: 2,
            level: 1
        }
    );
    assert!((r.dist[qrg.out_node(2, 0)] - 0.30).abs() < 1e-12);
    // …while c4's goes through Qh (0.20 beats 0.25): non-convergence.
    let pred_c4 = r.pred[qrg.out_node(3, 0)].unwrap();
    assert_eq!(
        qrg.node_ref(qrg.edge(pred_c4).from),
        NodeRef::In {
            component: 3,
            level: 0
        }
    );
    assert!((r.dist[qrg.out_node(3, 0)] - 0.20).abs() < 1e-12);
    // Fan-in takes the max of the branches: dist(Qr) = 0.30.
    assert!((r.dist[qrg.in_node(4, 0)] - 0.30).abs() < 1e-12);
}

#[test]
fn pass_two_resolves_to_qi_exactly_like_the_paper() {
    let (session, space) = build();
    let view = AvailabilityView::from_fn(space.ids(), |_| 100.0);
    let qrg = Qrg::build(&session, &view, &QrgOptions::default());
    let plan = plan_dag(&qrg).unwrap();

    // The paper: Qi is selected (highest Ψe to reach {Qn, Qp} is 0.30,
    // vs 0.35 via Qh).
    assert_eq!(plan.assignments[1].qout, 1, "c2 must select Qi");
    // Both branches re-point their inputs at Qi.
    assert_eq!(plan.assignments[2].qin, 1);
    assert_eq!(plan.assignments[3].qin, 1);
    // The embedded graph's bottleneck is the c3 edge Qi->Qn at 0.30.
    assert!((plan.psi - 0.30).abs() < 1e-12);
    let b = plan.bottleneck.unwrap();
    assert_eq!(b.resource, space.id("r2").unwrap());

    // Had the resolution picked Qh instead, Ψ_G would have been 0.35 —
    // the heuristic's local choice is the better one here, as in the
    // paper's example.
}
