//! Property-based verification of the two-pass DAG heuristic (§4.3.2)
//! against the exhaustive embedded-graph oracle.
//!
//! The heuristic has two *documented* limitations — it may fail to
//! assemble a plan for a Pass-I-reachable sink, and its plan may not
//! have the globally minimal bottleneck index. These tests pin down
//! exactly what **is** guaranteed:
//!
//! * a returned plan is always a *valid*, *feasible* embedded graph;
//! * its sink level is the oracle-optimal one (Pass-I reachability
//!   over-approximates embeddability, and success at the Pass-I-best
//!   sink produces an embedding, squeezing it to the optimum);
//! * its `Ψ_G` is never below the oracle minimum for that sink;
//! * `NoFeasiblePlan` is returned only when the oracle also finds no
//!   embedding at all.

use proptest::prelude::*;
use qosr::core::{plan_dag, AvailabilityView, PlanError, Qrg, QrgOptions};
use qosr_bench::oracle::{best_embedding, enumerate_embeddings};
use qosr_bench::synth::random_dag_scenario;

fn view_for(space: &qosr::model::ResourceSpace, avail: &[f64]) -> AvailabilityView {
    let mut view = AvailabilityView::new();
    for (i, rid) in space.ids().enumerate() {
        view.set(rid, avail[i]);
    }
    view
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    #[test]
    fn heuristic_plans_are_valid_optimal_rank_embeddings(seed in any::<u64>()) {
        let (session, space, avail) = random_dag_scenario(seed);
        let view = view_for(&space, &avail);
        let qrg = Qrg::build(&session, &view, &QrgOptions::default());
        let service = session.service();
        let oracle_best = best_embedding(&session, &view);

        match plan_dag(&qrg) {
            Ok(plan) => {
                // The plan is a consistent embedded graph…
                let graph = service.graph();
                for (v, a) in plan.assignments.iter().enumerate() {
                    if graph.preds(v).is_empty() {
                        continue;
                    }
                    let link = service.link(v, a.qin);
                    for (pos, &u) in graph.preds(v).iter().enumerate() {
                        prop_assert_eq!(
                            link[pos],
                            plan.assignments[u].qout,
                            "dependency edge {}->{} broken", u, v
                        );
                    }
                }
                // …whose demands all fit the snapshot…
                for a in &plan.assignments {
                    prop_assert!(a.demand.iter().all(|(rid, req)| req <= view.avail(rid)));
                }
                // …at the oracle-optimal sink level…
                let best = oracle_best.expect("a returned plan implies an embedding exists");
                prop_assert_eq!(plan.sink_level, best.sink_level,
                    "heuristic rank differs from oracle");
                // …with Ψ_G bounded below by the oracle optimum.
                prop_assert!(plan.psi >= best.psi - 1e-9,
                    "heuristic beat the exhaustive optimum?!");
            }
            Err(PlanError::NoFeasiblePlan) => {
                prop_assert!(
                    enumerate_embeddings(&session, &view).is_empty(),
                    "planner said infeasible but the oracle found an embedding"
                );
            }
            Err(PlanError::BacktrackFailed { .. }) => {
                // Documented limitation (1): Pass II gave up. The oracle
                // may or may not have an embedding; nothing to assert
                // beyond the error being the documented one.
            }
            Err(e) => prop_assert!(false, "unexpected error {e:?}"),
        }
    }

    /// Chains produced by degenerate DAG parameters must never hit the
    /// heuristic's limitations: where the dependency graph is a chain,
    /// plan_dag is exact.
    #[test]
    fn heuristic_is_exact_when_the_dag_degenerates(seed in any::<u64>()) {
        let (session, space, avail) = random_dag_scenario(seed);
        if !session.service().graph().is_chain() {
            // Only exercise the degenerate case here; the general case
            // is covered above.
            return Ok(());
        }
        let view = view_for(&space, &avail);
        let qrg = Qrg::build(&session, &view, &QrgOptions::default());
        match (plan_dag(&qrg), best_embedding(&session, &view)) {
            (Ok(plan), Some(best)) => {
                prop_assert_eq!(plan.sink_level, best.sink_level);
                prop_assert!((plan.psi - best.psi).abs() < 1e-9);
            }
            (Err(PlanError::NoFeasiblePlan), None) => {}
            (a, b) => prop_assert!(false, "{:?} vs {:?}", a.map(|p| p.sink_level), b.map(|e| e.sink_level)),
        }
    }
}

/// Deterministic regression sweep: over a fixed block of seeds, count
/// how the heuristic fares. Guards against silent regressions in the
/// success/failure profile (these exact numbers are also reported by the
/// `experiments dagquality` harness).
#[test]
fn heuristic_quality_profile_is_stable() {
    let mut success = 0u32;
    let mut spurious_failure = 0u32; // backtrack failed, embedding existed
    let mut true_failure = 0u32;
    let mut infeasible = 0u32;
    let mut suboptimal_psi = 0u32;
    for seed in 0..400u64 {
        let (session, space, avail) = random_dag_scenario(seed);
        let view = view_for(&space, &avail);
        let qrg = Qrg::build(&session, &view, &QrgOptions::default());
        match plan_dag(&qrg) {
            Ok(plan) => {
                success += 1;
                let best = best_embedding(&session, &view).unwrap();
                if plan.psi > best.psi + 1e-9 {
                    suboptimal_psi += 1;
                }
            }
            Err(PlanError::BacktrackFailed { .. }) => {
                if best_embedding(&session, &view).is_some() {
                    spurious_failure += 1;
                } else {
                    true_failure += 1;
                }
            }
            Err(PlanError::NoFeasiblePlan) => infeasible += 1,
            Err(e) => panic!("unexpected {e}"),
        }
    }
    // The generator deliberately produces many infeasible scenarios
    // (sparse tables); among the rest, the heuristic's failure modes
    // must stay rare (the paper presents them as corner cases). The
    // reference profile for seeds 0..400 is success=150,
    // backtrack_failed=16 (thereof spurious: most), infeasible=234,
    // suboptimal=8.
    assert!(success >= 120, "only {success}/400 planned");
    assert!(
        infeasible <= 300,
        "generator degenerated: {infeasible} infeasible"
    );
    assert!(
        spurious_failure + true_failure <= 40,
        "too many backtrack failures: {spurious_failure} spurious + {true_failure} true"
    );
    // Suboptimal-Ψ plans are allowed but must be the clear minority.
    assert!(
        suboptimal_psi * 3 <= success,
        "{suboptimal_psi}/{success} plans had non-minimal Ψ_G"
    );
}
