//! Property-based verification of the planners against a brute-force
//! oracle.
//!
//! Random chain services (random level counts, partial translation
//! tables, shared resources, fat scales, random availability) are
//! planned both by the library and by exhaustive path enumeration. The
//! paper's specification (§4.1.2) is checked exactly:
//!
//! * the selected sink is the highest-ranked reachable end-to-end level;
//! * the selected plan's bottleneck Ψ equals the minimum over all
//!   feasible paths to that sink;
//! * when no path is feasible, the planner reports `NoFeasiblePlan`;
//! * `plan_dag` coincides with `plan_basic` on chains;
//! * `plan_random` reaches the same sink with Ψ no better than basic's;
//! * `plan_tradeoff` equals basic under neutral availability trends and
//!   never outranks basic otherwise.

use proptest::prelude::*;
use qosr::core::{
    plan_basic, plan_dag, plan_random, plan_tradeoff, AvailabilityView, PlanError, Qrg, QrgOptions,
};
use qosr::model::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::sync::Arc;

/// A randomly generated chain scenario.
struct Scenario {
    session: SessionInstance,
    space: ResourceSpace,
    avail: Vec<f64>,
    alphas: Vec<f64>,
}

fn generate(seed: u64, k: usize, max_q: usize, shared_resources: bool) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut space = ResourceSpace::new();
    let n_resources = if shared_resources {
        rng.random_range(1..=3)
    } else {
        k * 2
    };
    let rids: Vec<ResourceId> = (0..n_resources)
        .map(|i| space.register(format!("r{i}"), ResourceKind::Compute))
        .collect();

    let schemas: Vec<_> = (0..=k)
        .map(|i| QosSchema::new(format!("s{i}"), ["g"]))
        .collect();
    let mut components = Vec::new();
    let mut bindings = Vec::new();
    let mut prev_out = 1usize; // source input level count
    for c in 0..k {
        let n_in = if c == 0 { 1 } else { prev_out };
        let n_out = rng.random_range(1..=max_q);
        let n_slots = rng.random_range(1..=2usize);
        let mut builder = TableTranslation::builder(n_in, n_out, n_slots);
        let mut any = false;
        for i in 0..n_in {
            for o in 0..n_out {
                if rng.random::<f64>() < 0.75 {
                    let demand: Vec<f64> =
                        (0..n_slots).map(|_| rng.random_range(1.0..=40.0)).collect();
                    builder = builder.entry(i, o, demand);
                    any = true;
                }
            }
        }
        if !any {
            // Guarantee at least one entry so the table is never fully
            // empty (a fully empty table is legal but trivially
            // infeasible; we cover infeasibility via availability).
            builder = builder.entry(0, 0, vec![5.0; n_slots]);
        }
        let levels = |s: &Arc<QosSchema>, n: usize| -> Vec<QosVector> {
            (1..=n as u32)
                .map(|x| QosVector::new(s.clone(), [x]))
                .collect()
        };
        let slots: Vec<SlotSpec> = (0..n_slots)
            .map(|s| SlotSpec::new(format!("slot{s}"), ResourceKind::Compute))
            .collect();
        components.push(ComponentSpec::new(
            format!("c{c}"),
            levels(&schemas[c], n_in),
            levels(&schemas[c + 1], n_out),
            slots,
            Arc::new(builder.build()),
        ));
        bindings.push(ComponentBinding::new(
            (0..n_slots)
                .map(|_| rids[rng.random_range(0..rids.len())])
                .collect::<Vec<_>>(),
        ));
        prev_out = n_out;
    }
    // Random strict ranking of the sink levels.
    let mut ranking: Vec<u32> = (1..=prev_out as u32).collect();
    for i in (1..ranking.len()).rev() {
        let j = rng.random_range(0..=i);
        ranking.swap(i, j);
    }
    let service = Arc::new(
        ServiceSpec::chain("prop", components, ranking).expect("generated chain is valid"),
    );
    let scale = [1.0, 2.0, 10.0][rng.random_range(0..3usize)];
    let session = SessionInstance::new(service, bindings, scale).unwrap();
    let avail: Vec<f64> = (0..n_resources)
        .map(|_| rng.random_range(5.0..=120.0))
        .collect();
    let alphas: Vec<f64> = (0..n_resources)
        .map(|_| rng.random_range(0.3..=1.4))
        .collect();
    Scenario {
        session,
        space,
        avail,
        alphas,
    }
}

fn view_of(s: &Scenario, with_alpha: bool) -> AvailabilityView {
    let mut view = AvailabilityView::new();
    for (i, rid) in s.space.ids().enumerate() {
        if with_alpha {
            view.set_with_alpha(rid, s.avail[i], s.alphas[i]);
        } else {
            view.set(rid, s.avail[i]);
        }
    }
    view
}

/// Exhaustive oracle: enumerates every source→sink path of a chain,
/// returning `(best sink level, min Ψ among paths to it)`.
fn oracle(s: &Scenario, view: &AvailabilityView) -> Option<(usize, f64)> {
    let service = s.session.service();
    let k = service.components().len();
    // feasible[c] = list of (qin, qout, psi) edges under `view`.
    let mut feasible: Vec<Vec<(usize, usize, f64)>> = Vec::with_capacity(k);
    for c in 0..k {
        let comp = service.component(c);
        let mut edges = Vec::new();
        for i in 0..comp.input_levels().len() {
            for o in 0..comp.output_levels().len() {
                let Some(demand) = s.session.demand(c, i, o) else {
                    continue;
                };
                if !demand.iter().all(|(rid, req)| req <= view.avail(rid)) {
                    continue;
                }
                let psi = demand
                    .max_ratio_over(|rid| view.avail(rid))
                    .map_or(0.0, |(_, p)| p);
                edges.push((i, o, psi));
            }
        }
        feasible.push(edges);
    }
    // DFS over per-component edge choices with matching levels.
    let mut best: Option<(u32, usize, f64)> = None; // (rank, level, psi)
    fn dfs(
        c: usize,
        qin: usize,
        psi: f64,
        feasible: &[Vec<(usize, usize, f64)>],
        service: &ServiceSpec,
        best: &mut Option<(u32, usize, f64)>,
    ) {
        if c == feasible.len() {
            // qin is the sink's chosen output level here.
            let level = qin;
            let rank = service.sink_ranking()[level];
            let better = match *best {
                None => true,
                Some((br, bl, bp)) => rank > br || (rank == br && bl == level && psi < bp),
            };
            // Note: paths to a *different* lower-ranked level never beat
            // a higher rank; equal rank implies same level (ranks are
            // strict).
            if better {
                *best = Some((rank, level, psi));
            }
            return;
        }
        for &(i, o, epsi) in &feasible[c] {
            if i == qin {
                dfs(c + 1, o, psi.max(epsi), feasible, service, best);
            }
        }
    }
    dfs(0, 0, 0.0, &feasible, service, &mut best);
    best.map(|(_, level, psi)| (level, psi))
}

fn check_plan_consistency(
    s: &Scenario,
    view: &AvailabilityView,
    plan: &qosr::core::ReservationPlan,
) {
    let service = s.session.service();
    let k = service.components().len();
    assert_eq!(plan.assignments.len(), k);
    for (c, a) in plan.assignments.iter().enumerate() {
        assert_eq!(a.component, c);
        // Demand matches the translation function through the binding.
        let expected = s.session.demand(c, a.qin, a.qout).expect("pair feasible");
        assert_eq!(a.demand, expected);
        // Per-edge feasibility against the snapshot.
        assert!(a.demand.iter().all(|(rid, req)| req <= view.avail(rid)));
        // Equivalence along the chain.
        if c > 0 {
            assert_eq!(
                service.link(c, a.qin),
                &[plan.assignments[c - 1].qout],
                "equivalence broken at component {c}"
            );
        }
    }
    assert_eq!(plan.rank, service.sink_ranking()[plan.sink_level]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn basic_matches_bruteforce_oracle(seed in any::<u64>(), k in 1usize..=4, q in 1usize..=4, shared in any::<bool>()) {
        let s = generate(seed, k, q, shared);
        let view = view_of(&s, false);
        let qrg = Qrg::build(&s.session, &view, &QrgOptions::default());
        match (plan_basic(&qrg), oracle(&s, &view)) {
            (Ok(plan), Some((level, psi))) => {
                prop_assert_eq!(plan.sink_level, level, "sink level mismatch");
                prop_assert!((plan.psi - psi).abs() < 1e-9,
                    "psi {} != oracle {}", plan.psi, psi);
                check_plan_consistency(&s, &view, &plan);
            }
            (Err(PlanError::NoFeasiblePlan), None) => {}
            (got, want) => prop_assert!(false, "planner {:?} vs oracle {:?}", got.map(|p| (p.sink_level, p.psi)), want),
        }
    }

    #[test]
    fn dag_heuristic_equals_basic_on_chains(seed in any::<u64>(), k in 1usize..=4, q in 1usize..=4) {
        let s = generate(seed, k, q, true);
        let view = view_of(&s, false);
        let qrg = Qrg::build(&s.session, &view, &QrgOptions::default());
        match (plan_basic(&qrg), plan_dag(&qrg)) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            (a, b) => prop_assert!(false, "{a:?} vs {b:?}"),
        }
    }

    #[test]
    fn random_planner_reaches_best_sink_never_beats_basic(seed in any::<u64>(), k in 1usize..=4, q in 1usize..=4) {
        let s = generate(seed, k, q, false);
        let view = view_of(&s, false);
        let qrg = Qrg::build(&s.session, &view, &QrgOptions::default());
        let mut rng = StdRng::seed_from_u64(seed ^ 0xdead);
        match (plan_basic(&qrg), plan_random(&qrg, &mut rng)) {
            (Ok(basic), Ok(random)) => {
                prop_assert_eq!(basic.sink_level, random.sink_level);
                prop_assert!(random.psi >= basic.psi - 1e-9);
                check_plan_consistency(&s, &view, &random);
            }
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            (a, b) => prop_assert!(false, "{a:?} vs {b:?}"),
        }
    }

    #[test]
    fn tradeoff_neutral_trend_equals_basic(seed in any::<u64>(), k in 1usize..=4, q in 1usize..=4) {
        let s = generate(seed, k, q, true);
        let view = view_of(&s, false); // all alphas 1.0
        let qrg = Qrg::build(&s.session, &view, &QrgOptions::default());
        match (plan_basic(&qrg), plan_tradeoff(&qrg)) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            (a, b) => prop_assert!(false, "{a:?} vs {b:?}"),
        }
    }

    #[test]
    fn tradeoff_never_outranks_basic_and_respects_bound(seed in any::<u64>(), k in 1usize..=4, q in 1usize..=4) {
        let s = generate(seed, k, q, true);
        let view = view_of(&s, true); // random alphas
        let qrg = Qrg::build(&s.session, &view, &QrgOptions::default());
        match (plan_basic(&qrg), plan_tradeoff(&qrg)) {
            (Ok(basic), Ok(tradeoff)) => {
                prop_assert!(tradeoff.rank <= basic.rank);
                check_plan_consistency(&s, &view, &tradeoff);
                // If it stepped down, the chosen plan's bottleneck must
                // satisfy the paper's bound psi_s <= alpha_s0 * psi_s0.
                if tradeoff.rank < basic.rank {
                    let alpha0 = basic.bottleneck.map_or(1.0, |b| b.alpha);
                    prop_assert!(alpha0 < 1.0, "stepped down without a down trend");
                    prop_assert!(tradeoff.psi <= alpha0 * basic.psi + 1e-9);
                }
            }
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            (a, b) => prop_assert!(false, "{a:?} vs {b:?}"),
        }
    }

    #[test]
    fn plans_are_invariant_to_psi_monotone_redefinition_at_sink_choice(seed in any::<u64>(), k in 1usize..=3, q in 1usize..=3) {
        // The reachable sink set (and hence the chosen level) depends
        // only on edge existence, not on the psi definition.
        let s = generate(seed, k, q, true);
        let view = view_of(&s, false);
        let base = Qrg::build(&s.session, &view, &QrgOptions::default());
        for psi in [qosr::core::PsiDef::Headroom, qosr::core::PsiDef::NegLogSurvival] {
            let alt = Qrg::build(&s.session, &view, &QrgOptions { psi, ..QrgOptions::default() });
            match (plan_basic(&base), plan_basic(&alt)) {
                (Ok(a), Ok(b)) => prop_assert_eq!(a.sink_level, b.sink_level),
                (Err(a), Err(b)) => prop_assert_eq!(a, b),
                (a, b) => prop_assert!(false, "{a:?} vs {b:?}"),
            }
        }
    }
}
