//! Integration coverage for the batched admission pipeline behind the
//! redesigned session API, driven through the `qosr` facade against the
//! paper's figure-9 environment:
//!
//! * the [`SessionRequest`] builder's per-request policy (QoS floor,
//!   deadline) classifies outcomes before anything is reserved;
//! * batch outcomes are deterministic in the worker count;
//! * scarcity provokes same-round conflicts that replan into degraded
//!   commits instead of rejections, with the per-host message shards
//!   accounting for the traffic;
//! * concurrent `admit` rounds from many OS threads never over-commit
//!   a broker (`ADMISSION_STRESS=1` scales the schedule up — the CI
//!   threaded-stress step runs it under a pinned `RUST_TEST_THREADS`).

use qosr::broker::LocalBrokerConfig;
use qosr::prelude::*;
use qosr::sim::services::ServiceOptions;
use qosr::sim::PaperEnvironment;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn paper_env(seed: u64, capacity_range: (f64, f64)) -> PaperEnvironment {
    let mut rng = StdRng::seed_from_u64(seed);
    PaperEnvironment::build(
        &mut rng,
        &ServiceOptions::default(),
        capacity_range,
        LocalBrokerConfig::default(),
    )
}

/// `(service, domain)` pairs honouring the excluded-service rule.
fn valid_pairs() -> impl Iterator<Item = (usize, usize)> {
    (0..8).flat_map(|domain| {
        (0..4)
            .filter(move |&service| service != domain / 2)
            .map(move |service| (service, domain))
    })
}

#[test]
fn builder_policy_gates_admission_before_reserving() {
    let env = paper_env(11, (1000.0, 4000.0));
    let session = env.session(1, 0, 1.0).unwrap();
    let queue = AdmissionQueue::new(&env.coordinator, AdmissionConfig::default());
    let now = SimTime::new(10.0);

    let batch = vec![
        SessionRequest::new(session.clone()),
        SessionRequest::new(session.clone()).qos_min(u32::MAX),
        SessionRequest::new(session.clone()).deadline(SimTime::new(5.0)),
    ];
    let before: Vec<f64> = env
        .coordinator
        .proxies()
        .iter()
        .flat_map(|p| p.brokers().iter().map(|b| b.available()))
        .collect();
    let outcomes = queue.admit(&batch, now);

    assert!(matches!(outcomes[0], EstablishOutcome::Committed(_)));
    assert!(matches!(
        &outcomes[1],
        EstablishOutcome::Rejected {
            error: qosr::broker::EstablishError::QosBelowMin { .. },
            ..
        }
    ));
    assert!(matches!(
        &outcomes[2],
        EstablishOutcome::Rejected {
            error: qosr::broker::EstablishError::DeadlineExpired { .. },
            ..
        }
    ));

    // The rejected requests reserved nothing: terminating the one
    // committed session restores the untouched world.
    env.coordinator
        .terminate(outcomes[0].session().unwrap(), SimTime::new(11.0));
    let after: Vec<f64> = env
        .coordinator
        .proxies()
        .iter()
        .flat_map(|p| p.brokers().iter().map(|b| b.available()))
        .collect();
    assert_eq!(before, after);
}

#[test]
fn batch_outcomes_do_not_depend_on_worker_count() {
    let run = |workers: usize| {
        let env = paper_env(23, (300.0, 1200.0));
        let requests: Vec<SessionRequest> = valid_pairs()
            .map(|(service, domain)| {
                SessionRequest::new(env.session(service, domain, 4.0).unwrap())
            })
            .collect();
        let queue = AdmissionQueue::new(
            &env.coordinator,
            AdmissionConfig {
                workers,
                seed: 99,
                ..AdmissionConfig::default()
            },
        );
        queue
            .admit(&requests, SimTime::new(1.0))
            .iter()
            .map(|o| (o.is_admitted(), o.session().map(|est| est.plan.rank)))
            .collect::<Vec<_>>()
    };
    let single = run(1);
    assert_eq!(single, run(5));
    assert_eq!(single, run(8));
    assert!(single.iter().any(|(admitted, _)| *admitted));
}

#[test]
fn scarcity_replans_conflicts_and_shards_account_for_traffic() {
    let env = paper_env(7, (250.0, 1000.0));
    // Many fat requests for the same service pile demand on one host.
    let requests: Vec<SessionRequest> = (0..12)
        .map(|i| SessionRequest::new(env.session(1, 4 + (i % 2), 6.0).unwrap()))
        .collect();
    let queue = AdmissionQueue::new(
        &env.coordinator,
        AdmissionConfig {
            workers: 4,
            seed: 3,
            ..AdmissionConfig::default()
        },
    );
    let outcomes = queue.admit(&requests, SimTime::new(1.0));

    let snap = env.coordinator.counters().snapshot();
    assert_eq!(snap.batches_planned, 1);
    assert!(
        snap.commit_conflicts > 0,
        "12 fat same-host sessions against ~250 capacity must conflict"
    );
    assert!(snap.replans > 0, "conflicts must be replanned, not dropped");
    assert!(
        outcomes.iter().any(|o| o.is_admitted()),
        "replanning must salvage part of the batch"
    );

    // One collect round for the whole batch, fanned to every host; the
    // per-host shards add up to the coordinator totals.
    let host_stats = env.coordinator.host_stats();
    assert_eq!(host_stats.len(), 4);
    for h in &host_stats {
        assert_eq!(h.collect_roundtrips, 1, "host {} collected once", h.host);
    }
    let stats = env.coordinator.stats();
    assert_eq!(stats.collect_roundtrips, 4);
    assert_eq!(
        stats.dispatches,
        host_stats.iter().map(|h| h.dispatches).sum::<u64>()
    );
    assert!(
        host_stats.iter().filter(|h| h.dispatches > 0).count() > 1,
        "commits must spread across host shards"
    );
}

#[test]
fn concurrent_admission_rounds_never_over_commit() {
    let stress = std::env::var("ADMISSION_STRESS").is_ok_and(|v| v == "1");
    let (threads, rounds, batch) = if stress { (8, 20, 16) } else { (4, 3, 8) };

    let env = paper_env(42, (400.0, 1600.0));
    let initial: Vec<f64> = env
        .coordinator
        .proxies()
        .iter()
        .flat_map(|p| p.brokers().iter().map(|b| b.available()))
        .collect();
    let queue = AdmissionQueue::new(
        &env.coordinator,
        AdmissionConfig {
            workers: 2,
            seed: 17,
            ..AdmissionConfig::default()
        },
    );
    let pairs: Vec<_> = valid_pairs().collect();

    // Concurrent rounds race each other's commits: conflict detection
    // against a round's working view can miss the other round's
    // reservations, but the brokers are the commit authority — a late
    // loser is replanned or rejected, never over-committed.
    let established = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let queue = &queue;
                let env = &env;
                let pairs = &pairs;
                scope.spawn(move || {
                    let mut held = Vec::new();
                    for round in 0..rounds {
                        let requests: Vec<SessionRequest> = (0..batch)
                            .map(|i| {
                                let (service, domain) =
                                    pairs[(t * 31 + round * 7 + i) % pairs.len()];
                                SessionRequest::new(env.session(service, domain, 3.0).unwrap())
                            })
                            .collect();
                        let now = SimTime::new((round + 1) as f64);
                        held.extend(
                            queue
                                .admit(&requests, now)
                                .into_iter()
                                .filter_map(|o| o.into_session()),
                        );
                    }
                    held
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("admission thread panicked"))
            .collect::<Vec<_>>()
    });
    assert_eq!(queue.rounds(), (threads * rounds) as u64);

    for proxy in env.coordinator.proxies() {
        for broker in proxy.brokers().iter() {
            let available = broker.available();
            assert!(
                available >= -1e-9 && available <= broker.capacity() + 1e-9,
                "resource {:?} over-committed under concurrent rounds: {} of {}",
                broker.resource(),
                available,
                broker.capacity()
            );
        }
    }

    // Full teardown restores the untouched world.
    for est in &established {
        env.coordinator.terminate(est, SimTime::new(1000.0));
    }
    let after: Vec<f64> = env
        .coordinator
        .proxies()
        .iter()
        .flat_map(|p| p.brokers().iter().map(|b| b.available()))
        .collect();
    for (before, after) in initial.iter().zip(&after) {
        assert!(
            (before - after).abs() < 1e-6,
            "teardown must conserve capacity: {before} vs {after}"
        );
    }
}
