//! Guards the committed benchmark artifacts: `BENCH_obs.json` must
//! exist at the workspace root, carry every field the telemetry
//! overhead report promises, and show disabled-mode telemetry within
//! the noise envelope of the non-telemetry admission reference. Runs
//! under plain `cargo test`, so CI fails if the artifact goes missing
//! or a bench regenerates it with the zero-cost claim broken.

use serde::{find_field, Value};

fn load(name: &str) -> Vec<(String, Value)> {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(name);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{name} must be committed at the workspace root: {e}"));
    let value: ReportValue =
        serde_json::from_str(&text).unwrap_or_else(|e| panic!("{name} must parse as JSON: {e:?}"));
    value.0
}

/// Thin wrapper so the vendored `serde_json::from_str` (which needs a
/// `Deserialize` target) hands back the raw object fields.
struct ReportValue(Vec<(String, Value)>);

impl serde::Deserialize for ReportValue {
    fn from_value(v: &Value) -> Result<Self, serde::DeError> {
        match v.as_object() {
            Some(fields) => Ok(ReportValue(fields.to_vec())),
            None => Err(serde::DeError::custom("expected a JSON object")),
        }
    }
}

fn number(fields: &[(String, Value)], name: &str) -> f64 {
    match find_field(fields, name) {
        Some(Value::Float(f)) => *f,
        Some(Value::Int(n)) => *n as f64,
        Some(Value::UInt(n)) => *n as f64,
        other => panic!("field {name:?} must be a number, got {other:?}"),
    }
}

#[test]
fn bench_obs_json_has_the_required_fields() {
    let fields = load("BENCH_obs.json");
    assert_eq!(
        find_field(&fields, "bench").and_then(Value::as_str),
        Some("obs_overhead")
    );
    assert_eq!(
        find_field(&fields, "unit").and_then(Value::as_str),
        Some("ns/session")
    );
    for required in [
        "disabled_ns_per_session",
        "enabled_ns_per_session",
        "traced_ns_per_session",
        "enabled_overhead_ratio",
        "traced_overhead_ratio",
    ] {
        let v = number(&fields, required);
        assert!(v.is_finite() && v > 0.0, "{required} = {v}");
    }
}

#[test]
fn bench_obs_disabled_mode_is_within_noise() {
    let fields = load("BENCH_obs.json");
    match find_field(&fields, "disabled_within_noise") {
        Some(Value::Bool(true)) => {}
        other => panic!("disabled_within_noise must be true, got {other:?}"),
    }
    // The committed run carried a reference measurement; keep the ratio
    // honest too (the bench asserts <= 1.25 before writing).
    let ratio = number(&fields, "disabled_vs_reference_ratio");
    assert!(
        ratio > 0.0 && ratio <= 1.25,
        "disabled/reference ratio {ratio} outside the noise envelope"
    );
}

#[test]
fn bench_obs_agrees_with_the_admission_reference() {
    let obs = load("BENCH_obs.json");
    let admission = load("BENCH_admission.json");
    let reference = number(&obs, "reference_admission_ns_per_session");
    let pipeline = find_field(&admission, "pipeline")
        .and_then(Value::as_array)
        .expect("BENCH_admission.json pipeline array");
    let four_workers = pipeline
        .iter()
        .filter_map(Value::as_object)
        .find(|r| {
            matches!(
                find_field(r, "workers"),
                Some(Value::Int(4) | Value::UInt(4))
            )
        })
        .expect("4-worker pipeline entry");
    let committed = number(four_workers, "ns_per_session");
    assert_eq!(
        reference, committed,
        "BENCH_obs.json must have been generated against the committed admission reference"
    );
}
