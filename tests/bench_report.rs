//! Guards the committed benchmark artifacts: `BENCH_obs.json` must
//! exist at the workspace root, carry every field the telemetry
//! overhead report promises, and show disabled-mode telemetry within
//! the noise envelope of the non-telemetry admission reference; and
//! `BENCH_replan.json` must carry the delta-repair figures with the
//! steady-state ≥ 3× repaired-vs-full relaxation claim intact; and
//! `BENCH_serve.json` must show the network front-end sustaining the
//! ≥ 100k requests/s claim with every request answered; and
//! `BENCH_advance.json` must hold the reservation index's ≥ 10×
//! window-query claim and the malleable planner's > 1 admitted-volume
//! uplift over rigid peak-rate booking. Runs
//! under plain `cargo test`, so CI fails if an artifact goes missing
//! or a bench regenerates one with its headline claim broken.

use serde::{find_field, Value};

fn load(name: &str) -> Vec<(String, Value)> {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(name);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{name} must be committed at the workspace root: {e}"));
    let value: ReportValue =
        serde_json::from_str(&text).unwrap_or_else(|e| panic!("{name} must parse as JSON: {e:?}"));
    value.0
}

/// Thin wrapper so the vendored `serde_json::from_str` (which needs a
/// `Deserialize` target) hands back the raw object fields.
struct ReportValue(Vec<(String, Value)>);

impl serde::Deserialize for ReportValue {
    fn from_value(v: &Value) -> Result<Self, serde::DeError> {
        match v.as_object() {
            Some(fields) => Ok(ReportValue(fields.to_vec())),
            None => Err(serde::DeError::custom("expected a JSON object")),
        }
    }
}

fn number(fields: &[(String, Value)], name: &str) -> f64 {
    match find_field(fields, name) {
        Some(Value::Float(f)) => *f,
        Some(Value::Int(n)) => *n as f64,
        Some(Value::UInt(n)) => *n as f64,
        other => panic!("field {name:?} must be a number, got {other:?}"),
    }
}

#[test]
fn bench_obs_json_has_the_required_fields() {
    let fields = load("BENCH_obs.json");
    assert_eq!(
        find_field(&fields, "bench").and_then(Value::as_str),
        Some("obs_overhead")
    );
    assert_eq!(
        find_field(&fields, "unit").and_then(Value::as_str),
        Some("ns/session")
    );
    for required in [
        "disabled_ns_per_session",
        "enabled_ns_per_session",
        "traced_ns_per_session",
        "request_traced_ns_per_session",
        "enabled_overhead_ratio",
        "traced_overhead_ratio",
        "request_traced_overhead_ratio",
    ] {
        let v = number(&fields, required);
        assert!(v.is_finite() && v > 0.0, "{required} = {v}");
    }
}

#[test]
fn bench_obs_disabled_mode_is_within_noise() {
    let fields = load("BENCH_obs.json");
    match find_field(&fields, "disabled_within_noise") {
        Some(Value::Bool(true)) => {}
        other => panic!("disabled_within_noise must be true, got {other:?}"),
    }
    // The committed run carried a reference measurement; keep the ratio
    // honest too (the bench asserts <= 1.10 before writing — with
    // request tracing disabled the extra cost is one relaxed atomic
    // load per request, so only machine noise separates the runs).
    let ratio = number(&fields, "disabled_vs_reference_ratio");
    assert!(
        ratio > 0.0 && ratio <= 1.10,
        "disabled/reference ratio {ratio} outside the noise envelope"
    );
}

#[test]
fn bench_replan_json_has_the_required_fields() {
    let fields = load("BENCH_replan.json");
    assert_eq!(
        find_field(&fields, "bench").and_then(Value::as_str),
        Some("replan")
    );
    assert_eq!(
        find_field(&fields, "unit").and_then(Value::as_str),
        Some("ns/prepare")
    );
    assert_eq!(
        find_field(&fields, "chain").and_then(Value::as_str),
        Some("4x4")
    );
    for required in [
        "full_ns_per_prepare",
        "repaired_ns_per_prepare",
        "speedup",
        "repairs",
        "mean_candidates_reevaluated",
        "mean_nodes_recomputed",
    ] {
        let v = number(&fields, required);
        assert!(v.is_finite() && v > 0.0, "{required} = {v}");
    }
    // The committed run used the exact (bit-identical) threshold.
    assert_eq!(number(&fields, "psi_threshold"), 0.0);
}

#[test]
fn bench_replan_repair_is_at_least_three_times_faster() {
    let fields = load("BENCH_replan.json");
    let speedup = number(&fields, "speedup");
    assert!(
        speedup >= 3.0,
        "committed steady-state repair speedup {speedup} dropped below 3x"
    );
    // Only the cold start may rebuild fully in steady state.
    assert_eq!(number(&fields, "cold_fallbacks"), 1.0);
    let full = number(&fields, "full_ns_per_prepare");
    let repaired = number(&fields, "repaired_ns_per_prepare");
    let ratio = full / repaired;
    assert!(
        (ratio - speedup).abs() < 1e-6,
        "speedup field {speedup} inconsistent with {full}/{repaired}"
    );
}

#[test]
fn bench_advance_json_has_the_required_fields() {
    let fields = load("BENCH_advance.json");
    assert_eq!(
        find_field(&fields, "bench").and_then(Value::as_str),
        Some("advance")
    );
    assert_eq!(
        find_field(&fields, "unit").and_then(Value::as_str),
        Some("ns/query")
    );
    for required in [
        "bookings",
        "breakpoints",
        "oracle_ns_per_query",
        "index_ns_per_query",
        "query_speedup",
        "transfers_offered",
        "rigid_admitted_volume",
        "malleable_admitted_volume",
        "admitted_volume_uplift",
    ] {
        let v = number(&fields, required);
        assert!(v.is_finite() && v > 0.0, "{required} = {v}");
    }
    // The headline claim is made at a million bookings.
    assert_eq!(number(&fields, "bookings"), 1_000_000.0);
}

#[test]
fn bench_advance_index_and_uplift_claims_hold() {
    let fields = load("BENCH_advance.json");
    let speedup = number(&fields, "query_speedup");
    assert!(
        speedup >= 10.0,
        "committed window-query speedup {speedup} dropped below 10x"
    );
    let oracle = number(&fields, "oracle_ns_per_query");
    let index = number(&fields, "index_ns_per_query");
    let ratio = oracle / index;
    assert!(
        ((ratio - speedup) / speedup).abs() < 1e-9,
        "query_speedup field {speedup} inconsistent with {oracle}/{index}"
    );
    let uplift = number(&fields, "admitted_volume_uplift");
    assert!(
        uplift > 1.0,
        "committed malleable-vs-rigid admitted-volume uplift {uplift} is not > 1"
    );
    let rigid = number(&fields, "rigid_admitted_volume");
    let malleable = number(&fields, "malleable_admitted_volume");
    assert!(
        ((malleable / rigid - uplift) / uplift).abs() < 1e-9,
        "admitted_volume_uplift field {uplift} inconsistent with {malleable}/{rigid}"
    );
}

#[test]
fn bench_admission_carries_the_phase_breakdown() {
    let fields = load("BENCH_admission.json");
    let breakdown = find_field(&fields, "phase_breakdown")
        .and_then(Value::as_array)
        .expect("BENCH_admission.json phase_breakdown array");
    let mut phases: Vec<&str> = Vec::new();
    for row in breakdown.iter().filter_map(Value::as_object) {
        let phase = find_field(row, "phase")
            .and_then(Value::as_str)
            .expect("phase name");
        phases.push(phase);
        for required in ["spans", "mean_ns", "ns_per_session"] {
            let v = number(row, required);
            assert!(v.is_finite() && v >= 0.0, "{phase}.{required} = {v}");
        }
    }
    for expected in ["collect", "plan", "commit"] {
        assert!(
            phases.contains(&expected),
            "phase breakdown must include {expected:?}, got {phases:?}"
        );
    }
}

#[test]
fn bench_serve_json_has_the_required_fields() {
    let fields = load("BENCH_serve.json");
    assert_eq!(
        find_field(&fields, "bench").and_then(Value::as_str),
        Some("serve")
    );
    assert_eq!(
        find_field(&fields, "unit").and_then(Value::as_str),
        Some("requests/s")
    );
    assert_eq!(
        find_field(&fields, "world").and_then(Value::as_str),
        Some("bench")
    );
    let load_report = find_field(&fields, "load")
        .and_then(Value::as_object)
        .expect("BENCH_serve.json load object");
    for required in [
        "rate_target",
        "connections",
        "duration_s",
        "requests",
        "responses",
        "elapsed_s",
        "requests_per_sec",
        "p50_ns",
        "p99_ns",
        "p999_ns",
        "mean_ns",
        "max_ns",
    ] {
        let v = number(load_report, required);
        assert!(v.is_finite() && v > 0.0, "load.{required} = {v}");
    }
    // Percentiles must be ordered and every request answered.
    assert!(number(load_report, "p50_ns") <= number(load_report, "p99_ns"));
    assert!(number(load_report, "p99_ns") <= number(load_report, "p999_ns"));
    assert!(number(load_report, "p999_ns") <= number(load_report, "max_ns"));
    assert_eq!(
        number(load_report, "requests"),
        number(load_report, "responses"),
        "the committed run must have drained every request"
    );
}

#[test]
fn bench_serve_sustains_the_throughput_claim() {
    let fields = load("BENCH_serve.json");
    let load_report = find_field(&fields, "load")
        .and_then(Value::as_object)
        .expect("BENCH_serve.json load object");
    let rps = number(load_report, "requests_per_sec");
    assert!(
        rps >= 100_000.0,
        "committed serve throughput {rps:.0} req/s dropped below the 100k claim"
    );
    let committed = number(load_report, "committed");
    assert!(
        committed > 0.0,
        "the committed run must have admitted sessions"
    );
}

#[test]
fn bench_obs_agrees_with_the_admission_reference() {
    let obs = load("BENCH_obs.json");
    let admission = load("BENCH_admission.json");
    let reference = number(&obs, "reference_admission_ns_per_session");
    let pipeline = find_field(&admission, "pipeline")
        .and_then(Value::as_array)
        .expect("BENCH_admission.json pipeline array");
    let four_workers = pipeline
        .iter()
        .filter_map(Value::as_object)
        .find(|r| {
            matches!(
                find_field(r, "workers"),
                Some(Value::Int(4) | Value::UInt(4))
            )
        })
        .expect("4-worker pipeline entry");
    let committed = number(four_workers, "ns_per_session");
    assert_eq!(
        reference, committed,
        "BENCH_obs.json must have been generated against the committed admission reference"
    );
}
