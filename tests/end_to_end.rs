//! Cross-crate integration: model → core planner → brokers → proxies,
//! on the paper's running example service, including the two-level
//! network reservation over a multi-link route.

use qosr::broker::{
    Broker, BrokerRegistry, Coordinator, EstablishOptions, LocalBroker, QosProxy, SessionRequest,
    SimTime,
};
use qosr::model::*;
use qosr::net::{NetNode, NetworkFabric, Topology};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Builds a 3-host environment where server and client are *not*
/// adjacent: the server→proxy path crosses two links, so the end-to-end
/// network broker must reserve both or neither.
struct World {
    space: ResourceSpace,
    coordinator: Coordinator,
    session: SessionInstance,
    cpu: [ResourceId; 3],
    path_sp: ResourceId,
    path_pc: ResourceId,
    fabric: NetworkFabric,
}

fn build_world(link_capacity: [f64; 3]) -> World {
    let mut space = ResourceSpace::new();
    let t0 = SimTime::ZERO;

    // Hosts 0 (server), 1 (relay), 2 (proxy); domain 0 (client) attached
    // to host 2. Chain topology: H0 - H1 - H2 - D0.
    let mut topo = Topology::new(3, 1);
    topo.add_link(NetNode::Host(0), NetNode::Host(1)).unwrap();
    topo.add_link(NetNode::Host(1), NetNode::Host(2)).unwrap();
    topo.add_link(NetNode::Host(2), NetNode::Domain(0)).unwrap();
    let mut fabric = NetworkFabric::new(topo, &link_capacity, &mut space, t0, Default::default());
    // Server -> proxy spans two links.
    let sp = fabric
        .path_broker(NetNode::Host(0), NetNode::Host(2), &mut space)
        .unwrap();
    assert_eq!(sp.route().len(), 2);
    let pc = fabric
        .path_broker(NetNode::Host(2), NetNode::Domain(0), &mut space)
        .unwrap();
    let path_sp = sp.resource();
    let path_pc = pc.resource();

    let cpu = [
        space.register("H0.cpu", ResourceKind::Compute),
        space.register("H1.cpu", ResourceKind::Compute),
        space.register("H2.cpu", ResourceKind::Compute),
    ];
    let mut proxies = Vec::new();
    for (h, &rid) in cpu.iter().enumerate() {
        let mut reg = BrokerRegistry::new();
        reg.register(Arc::new(LocalBroker::new(
            rid,
            100.0,
            t0,
            Default::default(),
        )));
        if h == 2 {
            reg.register(sp.clone());
            reg.register(pc.clone());
        }
        proxies.push(Arc::new(QosProxy::new(format!("H{h}"), reg)));
    }
    let coordinator = Coordinator::new(proxies);

    // A 2-component service: encoder on H0, player at the client.
    let schema = QosSchema::new("q", ["level"]);
    let v = |x: u32| QosVector::new(schema.clone(), [x]);
    let encoder = ComponentSpec::new(
        "encoder",
        vec![v(9)],
        vec![v(1), v(2)],
        vec![
            SlotSpec::new("cpu", ResourceKind::Compute),
            SlotSpec::new("bw", ResourceKind::NetworkPath),
        ],
        Arc::new(
            TableTranslation::builder(1, 2, 2)
                .entry(0, 0, [10.0, 20.0])
                .entry(0, 1, [18.0, 45.0])
                .build(),
        ),
    );
    let player = ComponentSpec::new(
        "player",
        vec![v(1), v(2)],
        vec![v(1), v(2)],
        vec![SlotSpec::new("bw", ResourceKind::NetworkPath)],
        Arc::new(
            TableTranslation::builder(2, 2, 1)
                .entry(0, 0, [15.0])
                .entry(1, 1, [35.0])
                .build(),
        ),
    );
    let service = Arc::new(ServiceSpec::chain("svc", vec![encoder, player], vec![1, 2]).unwrap());
    let session = SessionInstance::new(
        service,
        vec![
            ComponentBinding::new([cpu[0], path_sp]),
            ComponentBinding::new([path_pc]),
        ],
        1.0,
    )
    .unwrap();
    session.validate_kinds(&space).unwrap();

    World {
        space,
        coordinator,
        session,
        cpu,
        path_sp,
        path_pc,
        fabric,
    }
}

#[test]
fn establishment_reserves_across_the_whole_stack() {
    let w = build_world([100.0, 100.0, 100.0]);
    let mut rng = StdRng::seed_from_u64(1);
    let est = w
        .coordinator
        .establish_request(
            &SessionRequest::new(w.session.clone()),
            SimTime::new(1.0),
            &mut rng,
        )
        .into_result()
        .unwrap();
    // Top level: encoder 18 cpu + 45 bw(sp), player 35 bw(pc).
    assert_eq!(est.plan.rank, 2);
    let cpu0 = w
        .coordinator
        .owner_of(w.cpu[0])
        .unwrap()
        .brokers()
        .get(w.cpu[0])
        .unwrap();
    assert_eq!(cpu0.available(), 82.0);
    // Both links of the server->proxy route hold the reservation.
    assert_eq!(w.fabric.link_brokers()[0].available(), 55.0);
    assert_eq!(w.fabric.link_brokers()[1].available(), 55.0);
    // Access link holds the player's bandwidth.
    assert_eq!(w.fabric.link_brokers()[2].available(), 65.0);

    // Terminate: everything returns.
    w.coordinator.terminate(&est, SimTime::new(5.0));
    assert_eq!(cpu0.available(), 100.0);
    for l in w.fabric.link_brokers() {
        assert_eq!(l.available(), l.capacity());
    }
}

#[test]
fn bottleneck_link_inside_route_degrades_qos() {
    // The middle link only fits the low-quality stream: the min-over-
    // links availability (two-level brokering) must push the planner to
    // level 1.
    let w = build_world([100.0, 40.0, 100.0]);
    let mut rng = StdRng::seed_from_u64(1);
    let est = w
        .coordinator
        .establish_request(
            &SessionRequest::new(w.session.clone()),
            SimTime::new(1.0),
            &mut rng,
        )
        .into_result()
        .unwrap();
    assert_eq!(
        est.plan.rank, 1,
        "45 > 40 on the middle link: only level 1 fits"
    );
    let b = est.plan.bottleneck.unwrap();
    assert_eq!(b.resource, w.path_sp);
    assert!((b.psi - 0.5).abs() < 1e-12); // 20 / 40
}

#[test]
fn contention_between_sessions_shifts_plans() {
    let w = build_world([100.0, 100.0, 100.0]);
    let mut rng = StdRng::seed_from_u64(1);
    let opts = EstablishOptions::default();
    // First session takes the top level (45 bw on the sp path).
    let first = w
        .coordinator
        .establish_request(
            &SessionRequest::new(w.session.clone()).options(opts.clone()),
            SimTime::new(1.0),
            &mut rng,
        )
        .into_result()
        .unwrap();
    assert_eq!(first.plan.rank, 2);
    // Second session: 55 bw left on sp, 65 on pc -> top level (45) still
    // fits on sp but not... 45 <= 55, 35 <= 65: it fits. Third won't.
    let second = w
        .coordinator
        .establish_request(
            &SessionRequest::new(w.session.clone()).options(opts.clone()),
            SimTime::new(2.0),
            &mut rng,
        )
        .into_result()
        .unwrap();
    assert_eq!(second.plan.rank, 2);
    // Third: the sp path has 10 units left — even level 1 (20) is out.
    let third = w
        .coordinator
        .establish_request(
            &SessionRequest::new(w.session.clone()).options(opts.clone()),
            SimTime::new(3.0),
            &mut rng,
        )
        .into_result();
    assert!(
        matches!(third, Err(qosr::broker::EstablishError::Plan(_))),
        "got {third:?}"
    );
    // Releasing the first session frees capacity for the top level again.
    w.coordinator.terminate(&first, SimTime::new(4.0));
    let fourth = w
        .coordinator
        .establish_request(
            &SessionRequest::new(w.session.clone()).options(opts.clone()),
            SimTime::new(5.0),
            &mut rng,
        )
        .into_result()
        .unwrap();
    assert_eq!(fourth.plan.rank, 2);
    assert_eq!(w.space.name(w.path_pc), "path:H3->D1");
}
