//! Regression suite for the curated scenario library (`scenarios/`).
//!
//! Every `*.scenario.json` must (1) parse and validate, (2) reproduce
//! the committed golden `RunMetrics` under its pinned seed
//! (`scenarios/goldens/<name>.json`), (3) replay deterministically —
//! the trace's `TraceSummary` must agree with the live counters and a
//! second untraced run must be bit-identical — and (4) be documented in
//! SCENARIOS.md.
//!
//! Goldens are integer-only counters, so they are stable across
//! debug/release and platforms. After an intentional behaviour change,
//! regenerate them with:
//!
//! ```sh
//! QOSR_UPDATE_GOLDENS=1 cargo test --test scenario_regression
//! ```

use qosr::obs::{MemorySink, TraceSummary};
use qosr::sim::{run_scenario, run_scenario_traced, RunMetrics, ScenarioFile};
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn load_library() -> Vec<(PathBuf, ScenarioFile)> {
    let scenarios =
        ScenarioFile::load_dir(repo_root().join("scenarios")).expect("scenario library loads");
    assert!(
        scenarios.len() >= 8,
        "the curated library holds 8+ scenarios, found {}",
        scenarios.len()
    );
    scenarios
}

fn golden_path(file: &Path) -> PathBuf {
    let stem = file
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap()
        .trim_end_matches(".scenario.json")
        .to_owned();
    repo_root().join("scenarios/goldens").join(stem + ".json")
}

#[test]
fn every_scenario_parses_and_validates() {
    for (path, scenario) in load_library() {
        scenario
            .validate()
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert!(
            !scenario.description.is_empty(),
            "{}: scenarios must carry a description",
            path.display()
        );
    }
}

#[test]
fn every_scenario_matches_its_golden_and_replays_deterministically() {
    let update = std::env::var_os("QOSR_UPDATE_GOLDENS").is_some();
    for (path, scenario) in load_library() {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap();
        let config = scenario.to_config();

        // Traced run: live counters and the trace must tell one story.
        let sink = Arc::new(MemorySink::new());
        let result = run_scenario_traced(&config, sink.clone());
        let summary = TraceSummary::from_events(&sink.events());
        assert_eq!(
            summary.committed, result.metrics.overall.successes,
            "{name}: trace commits != live successes"
        );
        assert_eq!(
            summary.qos_level_sum, result.metrics.overall.qos_level_sum,
            "{name}: trace QoS sum != live QoS sum"
        );
        assert_eq!(
            summary.scenario_triggers, result.metrics.scenario_triggers,
            "{name}: trace rule firings != live rule firings"
        );
        assert_eq!(
            summary.sessions_lost, result.metrics.sessions_lost,
            "{name}: trace lost sessions != live lost sessions"
        );
        assert_eq!(
            summary.faults_injected, result.metrics.faults_injected,
            "{name}: trace faults != live faults"
        );

        // Tracing must never perturb the run.
        let untraced = run_scenario(&config);
        assert_eq!(
            untraced.metrics, result.metrics,
            "{name}: tracing changed the run"
        );

        let golden = golden_path(&path);
        if update {
            let json = serde_json::to_string_pretty(&result.metrics).unwrap();
            std::fs::write(&golden, json + "\n").unwrap();
            continue;
        }
        let text = std::fs::read_to_string(&golden).unwrap_or_else(|e| {
            panic!(
                "{name}: missing golden {} ({e}); regenerate with \
                 QOSR_UPDATE_GOLDENS=1 cargo test --test scenario_regression",
                golden.display()
            )
        });
        let pinned: RunMetrics = serde_json::from_str(&text).unwrap();
        assert_eq!(
            result.metrics, pinned,
            "{name}: metrics diverge from the committed golden; if the \
             change is intentional, regenerate with QOSR_UPDATE_GOLDENS=1"
        );
    }
}

#[test]
fn every_scenario_is_documented_in_scenarios_md() {
    let doc = std::fs::read_to_string(repo_root().join("SCENARIOS.md"))
        .expect("SCENARIOS.md exists at the repo root");
    for (path, _) in load_library() {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap();
        assert!(
            doc.contains(name),
            "{name} is not documented in SCENARIOS.md"
        );
    }
}
