//! Property-based tests of the request-trace observability layer
//! ([`qosr_obs`]): every [`RequestTrace`] span tree must survive the
//! canonical JSONL codec bit-for-bit (the flight recorder, breach
//! dumps, `qosr flight --out`, and offline replay all exchange these
//! lines), and the [`FlightRecorder`] ring must honour its contract —
//! bounded retention, oldest-first dumps, monotonic recorded counts —
//! for any capacity and any push sequence. Case count honours
//! `PROPTEST_CASES` (CI runs the default).

use proptest::prelude::*;
use proptest::ProptestConfig;
use qosr_obs::{FlightRecorder, RequestTrace, SpanKind, SpanRecord};
use std::sync::Arc;

/// Finite floats only: NaN and the infinities serialize to `null` by
/// design and are not round-trippable (they never occur in traces —
/// Ψ and QoS values are finite by construction).
fn finite_f64() -> impl Strategy<Value = f64> {
    prop_oneof![
        Just(0.0),
        Just(-0.0),
        Just(1.5e308),
        Just(-4.9e-324),
        -1.0e12..1.0e12f64,
        0.0..1.0f64,
    ]
}

/// Strings exercising JSON escaping: quotes, backslashes, control
/// characters, multi-byte UTF-8.
fn trace_string() -> impl Strategy<Value = String> {
    const ALPHABET: &[&str] = &[
        "a", "Z", "0", " ", "\"", "\\", "\n", "\t", "\u{1}", "é", "λ", "🦀", "{", "}", ":", ",",
    ];
    proptest::collection::vec(0usize..ALPHABET.len(), 0..16)
        .prop_map(|picks| picks.into_iter().map(|i| ALPHABET[i]).collect())
}

fn option_of<S: Strategy + 'static>(inner: S) -> BoxedStrategy<Option<S::Value>>
where
    S::Value: std::fmt::Debug + Clone,
{
    prop_oneof![Just(None), inner.prop_map(Some)].boxed()
}

fn span_kind() -> impl Strategy<Value = SpanKind> {
    prop_oneof![
        Just(SpanKind::Queue),
        Just(SpanKind::Collect),
        Just(SpanKind::Plan),
        Just(SpanKind::Replan),
        Just(SpanKind::Commit),
    ]
}

fn span_leaf() -> impl Strategy<Value = SpanRecord> {
    // Durations bounded to ~13 days in nanoseconds: summing every span
    // of a trace must not overflow u64, mirroring real measurements.
    (
        (span_kind(), any::<u64>(), 0..(1u64 << 50)),
        (
            option_of(finite_f64().boxed()),
            option_of(trace_string().boxed()),
            option_of(any::<u64>().boxed()),
            option_of(any::<u32>().boxed()),
            option_of(trace_string().boxed()),
        ),
    )
        .prop_map(
            |((kind, start_ns, duration_ns), (psi, planner, resource, attempt, detail))| {
                SpanRecord {
                    kind,
                    start_ns,
                    duration_ns,
                    psi,
                    planner,
                    resource,
                    attempt,
                    detail,
                    children: Vec::new(),
                }
            },
        )
}

/// Spans with up to two levels of children — the deepest shape the
/// pipeline emits is a replan span holding retry children.
fn span_record() -> impl Strategy<Value = SpanRecord> {
    (
        span_leaf(),
        proptest::collection::vec(
            (span_leaf(), proptest::collection::vec(span_leaf(), 0..2)).prop_map(
                |(mut child, grandchildren)| {
                    child.children = grandchildren;
                    child
                },
            ),
            0..3,
        ),
    )
        .prop_map(|(mut span, children)| {
            span.children = children;
            span
        })
}

fn request_trace() -> impl Strategy<Value = RequestTrace> {
    (
        (
            any::<u64>(),
            option_of(trace_string().boxed()),
            prop_oneof![
                Just("committed".to_string()),
                Just("degraded".to_string()),
                Just("rejected".to_string()),
            ],
            option_of(any::<u64>().boxed()),
        ),
        (
            option_of(any::<u32>().boxed()),
            option_of(finite_f64().boxed()),
            any::<u32>(),
            any::<u32>(),
            any::<u64>(),
        ),
        proptest::collection::vec(span_record(), 0..5),
    )
        .prop_map(
            |(
                (trace, service, outcome, session),
                (rank, psi, conflicts, retries, total_ns),
                spans,
            )| RequestTrace {
                trace,
                service,
                outcome,
                session,
                rank,
                psi,
                conflicts,
                retries,
                total_ns,
                spans,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases_from_env(64))]

    /// Every trace — any annotation combination, any nesting, any
    /// escaped string — survives the JSONL codec value-equal, and the
    /// canonical encoding is a fixed point: re-encoding the decoded
    /// trace yields the identical bytes. This is what lets breach
    /// dumps, `qosr flight --out`, and replay tooling diff dumps
    /// byte-for-byte.
    #[test]
    fn request_trace_jsonl_roundtrips_bit_for_bit(trace in request_trace()) {
        let line = trace.to_jsonl();
        prop_assert!(!line.contains('\n'), "JSONL lines must be single lines");
        let back = RequestTrace::from_jsonl(&line).expect("canonical line decodes");
        prop_assert_eq!(&back, &trace);
        prop_assert_eq!(back.to_jsonl(), line);
    }

    /// `span_ns` (the basis of per-phase latency attribution, the wire
    /// outcome attribution fields, and `qosr load --attrib`) sums
    /// exactly the ROOT spans of a kind — children are already counted
    /// inside their parent's measured duration and must not be
    /// double-counted.
    #[test]
    fn span_ns_sums_root_spans_only(trace in request_trace()) {
        for kind in [SpanKind::Queue, SpanKind::Collect, SpanKind::Plan,
                     SpanKind::Replan, SpanKind::Commit] {
            let expected: u64 = trace
                .spans
                .iter()
                .filter(|s| s.kind == kind)
                .map(|s| s.duration_ns)
                .sum();
            prop_assert_eq!(trace.span_ns(kind), expected);
        }
    }

    /// The flight ring retains exactly the last `min(n, capacity)`
    /// traces in push order, for any capacity and push count, and
    /// `recorded` stays monotonic and uncapped.
    #[test]
    fn flight_ring_retains_the_newest_in_order(capacity in 1usize..32, pushes in 0u64..96) {
        let ring = FlightRecorder::new(capacity);
        prop_assert_eq!(ring.capacity(), capacity);
        prop_assert!(ring.is_empty());
        for id in 0..pushes {
            ring.record(Arc::new(RequestTrace {
                trace: id,
                service: None,
                outcome: "committed".into(),
                session: None,
                rank: None,
                psi: None,
                conflicts: 0,
                retries: 0,
                total_ns: id,
                spans: Vec::new(),
            }));
        }
        prop_assert_eq!(ring.recorded(), pushes);
        prop_assert_eq!(ring.len() as u64, pushes.min(capacity as u64));
        let ids: Vec<u64> = ring.dump().iter().map(|t| t.trace).collect();
        let oldest_retained = pushes.saturating_sub(capacity as u64);
        let expected: Vec<u64> = (oldest_retained..pushes).collect();
        prop_assert_eq!(ids, expected);
    }

    /// A JSONL dump of the ring is line-for-line the canonical encoding
    /// of `dump()`, so operators can stitch `qosr flight --out` files
    /// and breach dumps together without normalization.
    #[test]
    fn flight_dump_jsonl_matches_dump(traces in proptest::collection::vec(request_trace(), 0..8)) {
        let ring = FlightRecorder::new(4);
        for trace in &traces {
            ring.record(Arc::new(trace.clone()));
        }
        let mut buf = Vec::new();
        let written = ring.dump_jsonl(&mut buf).expect("in-memory write");
        prop_assert_eq!(written, ring.len());
        let text = String::from_utf8(buf).expect("canonical JSONL is UTF-8");
        let lines: Vec<&str> = text.lines().collect();
        let snapshot = ring.dump();
        prop_assert_eq!(lines.len(), snapshot.len());
        for (line, trace) in lines.iter().zip(&snapshot) {
            prop_assert_eq!(*line, trace.to_jsonl());
        }
    }
}
