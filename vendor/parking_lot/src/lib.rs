//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning API
//! (a `lock()` that returns the guard directly). Poisoned locks — only
//! possible after a panic while holding the guard — recover the inner
//! data, matching parking_lot's behavior of not propagating poison.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::sync::{MutexGuard as StdMutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock that does not poison.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard of a locked [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    guard: StdMutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a new unlocked mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { guard }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { guard: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                guard: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

/// A reader-writer lock that does not poison.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new unlocked lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn shared_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let m = m.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    *m.lock() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
