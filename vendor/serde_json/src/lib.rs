//! Offline stand-in for the `serde_json` crate.
//!
//! Provides [`from_str`] and [`to_writer_pretty`] over the serde
//! stand-in's [`serde::Value`] tree: a recursive-descent JSON parser
//! (with line/column error positions) and a two-space pretty printer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// A JSON parse, conversion, or I/O error.
#[derive(Debug)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.message())
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Deserializes a `T` from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value_complete(s)?;
    Ok(T::from_value(&value)?)
}

/// Serializes `value` as pretty-printed JSON (two-space indent) into
/// `writer`.
pub fn to_writer_pretty<W: std::io::Write, T: Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    let text = to_string_pretty(value)?;
    writer.write_all(text.as_bytes())?;
    Ok(())
}

/// Serializes `value` as a pretty-printed JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), 0);
    Ok(out)
}

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value_compact(&mut out, &value.to_value());
    Ok(out)
}

fn write_indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_float(out: &mut String, f: f64) {
    if f.is_finite() {
        let text = format!("{f}");
        out.push_str(&text);
        // Keep re-parsed types stable: mark integral floats as floats.
        if !text.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        // JSON has no NaN/Infinity; upstream serde_json errors, but for
        // diagnostics output a lossy null is friendlier than aborting.
        out.push_str("null");
    }
}

fn write_scalar(out: &mut String, v: &Value) -> bool {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_escaped(out, s),
        Value::Array(_) | Value::Object(_) => return false,
    }
    true
}

fn write_value(out: &mut String, v: &Value, depth: usize) {
    if write_scalar(out, v) {
        return;
    }
    match v {
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                write_indent(out, depth + 1);
                write_value(out, item, depth + 1);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            write_indent(out, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (key, value)) in fields.iter().enumerate() {
                write_indent(out, depth + 1);
                write_escaped(out, key);
                out.push_str(": ");
                write_value(out, value, depth + 1);
                if i + 1 < fields.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            write_indent(out, depth);
            out.push('}');
        }
        _ => unreachable!("scalars handled above"),
    }
}

fn write_value_compact(out: &mut String, v: &Value) {
    if write_scalar(out, v) {
        return;
    }
    match v {
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value_compact(out, item);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (key, value)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, key);
                out.push(':');
                write_value_compact(out, value);
            }
            out.push('}');
        }
        _ => unreachable!("scalars handled above"),
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value_complete(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after JSON value"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn error(&self, message: &str) -> Error {
        let consumed = &self.bytes[..self.pos];
        let line = 1 + consumed.iter().filter(|&&b| b == b'\n').count();
        let col = 1 + consumed.iter().rev().take_while(|&&b| b != b'\n').count();
        Error::new(format!("{message} at line {line} column {col}"))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            // Surrogate pairs are not needed by this
                            // workspace's data; reject them clearly.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.error("unsupported \\u escape"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.error("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.error("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Int(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.error("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Inner {
        label: String,
        #[serde(default)]
        weight: f64,
        #[serde(default = "default_gain")]
        gain: f64,
    }

    fn default_gain() -> f64 {
        2.5
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Outer {
        id: u64,
        items: Vec<Inner>,
        pair: (f64, f64),
        tag: Option<String>,
        skipped: Option<u32>,
        flag: bool,
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Wrapper(u32);

    #[derive(Debug, PartialEq, Default, Serialize, Deserialize)]
    enum Kind {
        #[default]
        Alpha,
        BetaGamma,
    }

    #[test]
    fn parse_and_access() {
        let v = parse_value_complete(r#"{"a": [1, -2.5, true, null, "x\nA"], "b": {"c": 1e3}}"#)
            .unwrap();
        let obj = v.as_object().unwrap();
        assert_eq!(obj[0].0, "a");
        let arr = obj[0].1.as_array().unwrap();
        assert_eq!(arr[0], Value::Int(1));
        assert_eq!(arr[1], Value::Float(-2.5));
        assert_eq!(arr[2], Value::Bool(true));
        assert_eq!(arr[3], Value::Null);
        assert_eq!(arr[4], Value::Str("x\nA".into()));
        assert_eq!(obj[1].1.as_object().unwrap()[0].1, Value::Float(1000.0));
    }

    #[test]
    fn parse_errors_have_positions() {
        let err = parse_value_complete("{\n  \"a\": }").unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
        assert!(parse_value_complete("[1, 2] trailing").is_err());
        assert!(parse_value_complete("[1, 2").is_err());
    }

    #[test]
    fn derived_struct_roundtrip() {
        let outer = Outer {
            id: 7,
            items: vec![Inner {
                label: "a\"b".into(),
                weight: 0.25,
                gain: 1.0,
            }],
            pair: (1.5, -2.0),
            tag: Some("t".into()),
            skipped: None,
            flag: true,
        };
        let text = to_string_pretty(&outer).unwrap();
        let back: Outer = from_str(&text).unwrap();
        assert_eq!(back, outer);
    }

    #[test]
    fn defaults_and_missing_fields() {
        let inner: Inner = from_str(r#"{"label": "x"}"#).unwrap();
        assert_eq!(inner.weight, 0.0); // #[serde(default)]
        assert_eq!(inner.gain, 2.5); // #[serde(default = "default_gain")]
        let outer: Result<Outer, _> = from_str(r#"{"id": 1}"#);
        let err = outer.unwrap_err().to_string();
        assert!(err.contains("missing field `items`"), "{err}");
        // Missing Option fields fall back to None.
        let o: Outer =
            from_str(r#"{"id": 1, "items": [], "pair": [0, 0], "flag": false}"#).unwrap();
        assert_eq!(o.tag, None);
        assert_eq!(o.skipped, None);
    }

    #[test]
    fn newtype_and_enum_roundtrip() {
        assert_eq!(to_string(&Wrapper(9)).unwrap(), "9");
        let w: Wrapper = from_str("9").unwrap();
        assert_eq!(w, Wrapper(9));
        assert_eq!(to_string(&Kind::BetaGamma).unwrap(), "\"BetaGamma\"");
        let k: Kind = from_str("\"Alpha\"").unwrap();
        assert_eq!(k, Kind::Alpha);
        assert!(from_str::<Kind>("\"Delta\"").is_err());
    }

    #[test]
    fn pretty_format_shape() {
        let text = to_string_pretty(&vec![1u32, 2]).unwrap();
        assert_eq!(text, "[\n  1,\n  2\n]");
        let compact = to_string(&vec![1u32, 2]).unwrap();
        assert_eq!(compact, "[1,2]");
        // Integral floats keep a decimal point so they re-parse as floats.
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
    }
}
