//! Offline stand-in for the `rand` crate.
//!
//! The workspace must build in registry-restricted environments, so this
//! crate reimplements the small slice of the rand 0.10 API the repo
//! actually uses: [`Rng`]/[`RngExt`] with `random`/`random_range`,
//! [`SeedableRng::seed_from_u64`], and [`rngs::StdRng`] backed by a
//! deterministic xoshiro256++ generator. Streams are stable across
//! platforms and releases, which the simulator's seeded experiments rely
//! on; they are *not* the upstream rand streams.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Object-safe core of a random generator: a source of `u64` words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A random generator; used as a bound (`&mut impl Rng`) throughout the
/// workspace. Blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {}

impl<R: RngCore + ?Sized> Rng for R {}

/// The sampling helpers of rand 0.10, as an extension trait
/// blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// Samples a value of type `T` from its standard distribution
    /// (`f64` uniform in `[0, 1)`, integers uniform over the full range,
    /// `bool` with probability 1/2).
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a (half-open or inclusive) range.
    ///
    /// Panics on an empty range. Generic over the output type `T` so the
    /// element type of an integer-literal range can be inferred from the
    /// call site, as with upstream rand.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Generators that can be seeded from a `u64`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (expanded with splitmix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from their standard distribution.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges a value of type `T` can be drawn from uniformly.
pub trait SampleRange<T> {
    /// Draws one value from `rng`; panics on an empty range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}
sample_range_int!(u8, u16, u32, u64, usize);

macro_rules! sample_range_signed {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
sample_range_signed!(i8, i16, i32, i64, isize);

macro_rules! sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard>::sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = <$t as Standard>::sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
sample_range_float!(f32, f64);

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256++ seeded via
    /// splitmix64, as recommended by its authors.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, RngExt, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.random_range(3..10usize);
            assert!((3..10).contains(&x));
            let y = rng.random_range(2..=3usize);
            assert!((2..=3).contains(&y));
            let f = rng.random_range(1.0..=40.0f64);
            assert!((1.0..=40.0).contains(&f));
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
            let s = rng.random_range(-5..5i32);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn full_width_samples_cover_both_halves() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut high = 0;
        for _ in 0..64 {
            if rng.random::<u64>() > u64::MAX / 2 {
                high += 1;
            }
        }
        assert!(high > 8 && high < 56);
        let _: bool = rng.random();
    }

    #[test]
    fn works_through_mut_references() {
        fn draw<R: Rng>(rng: &mut R) -> usize {
            RngExt::random_range(rng, 0..10usize)
        }
        fn draw_dyn<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.next_u64()
        }
        let mut rng = StdRng::seed_from_u64(9);
        let _ = draw(&mut rng);
        let _ = draw_dyn(&mut rng);
        fn ext<R: RngExt>(rng: &mut R) -> bool {
            rng.random()
        }
        let _ = ext(&mut rng);
    }
}
