//! Offline stand-in for the `serde` crate.
//!
//! Instead of serde's visitor architecture, this crate models
//! serialization as conversion to and from a JSON-like [`Value`] tree:
//! [`Serialize::to_value`] and [`Deserialize::from_value`]. The derive
//! macros (re-exported from `serde_derive`) generate those impls for
//! named structs, newtype structs, and unit enums — the shapes this
//! workspace uses — honoring `#[serde(default)]` and
//! `#[serde(default = "path")]` field attributes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-like data tree, the interchange format between [`Serialize`]
/// and [`Deserialize`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer too large for `i64`.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object: ordered key/value pairs (insertion order preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object fields, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A short name of the value's type, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Looks up a field of a deserialized object by name.
pub fn find_field<'a>(fields: &'a [(String, Value)], name: &str) -> Option<&'a Value> {
    fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

/// A deserialization error with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// Creates an error from a message.
    pub fn custom(message: impl Into<String>) -> Self {
        DeError {
            message: message.into(),
        }
    }

    /// Wraps the error with the field it occurred in.
    pub fn in_field(self, field: &str) -> Self {
        DeError {
            message: format!("field `{field}`: {}", self.message),
        }
    }

    /// The error message.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}

fn type_error(expected: &str, got: &Value) -> DeError {
    DeError::custom(format!("expected {expected}, got {}", got.kind()))
}

/// Types convertible into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(type_error("bool", other)),
        }
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n: i64 = match v {
                    Value::Int(n) => *n,
                    Value::UInt(n) => i64::try_from(*n)
                        .map_err(|_| DeError::custom("integer out of range"))?,
                    Value::Float(f) if f.fract() == 0.0 => *f as i64,
                    other => return Err(type_error("integer", other)),
                };
                <$t>::try_from(n).map_err(|_| DeError::custom("integer out of range"))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as u64;
                match i64::try_from(n) {
                    Ok(i) => Value::Int(i),
                    Err(_) => Value::UInt(n),
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n: u64 = match v {
                    Value::Int(n) => u64::try_from(*n)
                        .map_err(|_| DeError::custom("negative integer for unsigned field"))?,
                    Value::UInt(n) => *n,
                    Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 => *f as u64,
                    other => return Err(type_error("integer", other)),
                };
                <$t>::try_from(n).map_err(|_| DeError::custom("integer out of range"))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Int(n) => Ok(*n as $t),
                    Value::UInt(n) => Ok(*n as $t),
                    Value::Float(f) => Ok(*f as $t),
                    other => Err(type_error("number", other)),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(type_error("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(type_error("array", other)),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = Vec::<T>::from_value(v)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| DeError::custom(format!("expected array of length {N}, got {len}")))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                const LEN: usize = [$($idx),+].len();
                let items = v.as_array().ok_or_else(|| type_error("array", v))?;
                if items.len() != LEN {
                    return Err(DeError::custom(format!(
                        "expected array of length {}, got {}", LEN, items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let fields = v.as_object().ok_or_else(|| type_error("object", v))?;
        fields
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v).map_err(|e| e.in_field(k))?)))
            .collect()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(Box::new(T::from_value(v)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()), Ok(42));
        assert_eq!(i32::from_value(&Value::Int(-3)), Ok(-3));
        assert_eq!(f64::from_value(&Value::Int(2)), Ok(2.0));
        assert_eq!(bool::from_value(&Value::Bool(true)), Ok(true));
        assert!(u32::from_value(&Value::Int(-1)).is_err());
        assert!(u8::from_value(&Value::Int(300)).is_err());
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![(1u32, 2.5f64), (3, 4.0)];
        assert_eq!(Vec::<(u32, f64)>::from_value(&v.to_value()), Ok(v));
        let opt: Option<f64> = None;
        assert_eq!(opt.to_value(), Value::Null);
        assert_eq!(Option::<f64>::from_value(&Value::Null), Ok(None));
        let arr = [1u64, 2, 3];
        assert_eq!(<[u64; 3]>::from_value(&arr.to_value()), Ok(arr));
        assert!(<[u64; 2]>::from_value(&arr.to_value()).is_err());
        let mut map = BTreeMap::new();
        map.insert("a".to_string(), 1u64);
        assert_eq!(
            BTreeMap::<String, u64>::from_value(&map.to_value()),
            Ok(map)
        );
    }

    #[test]
    fn errors_name_the_field() {
        let obj = Value::Object(vec![("x".into(), Value::Str("no".into()))]);
        let err = BTreeMap::<String, u64>::from_value(&obj).unwrap_err();
        assert!(err.message().contains("`x`"));
    }
}
