//! Offline stand-in for the `criterion` crate.
//!
//! A minimal wall-clock harness exposing the criterion API this
//! workspace uses: `criterion_group!`/`criterion_main!`, benchmark
//! groups with `bench_function`/`bench_with_input`, and `Bencher::iter`.
//! Behavior mirrors criterion's cargo integration: run without
//! `--bench` (as `cargo test` does) each benchmark executes once as a
//! smoke test; with `--bench` it is measured and a mean ns/iter line is
//! printed; `--quick` shortens the measurement window. A positional
//! argument filters benchmarks by substring.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Top-level harness state, passed to every benchmark function.
#[derive(Debug, Clone, Default)]
pub struct Criterion {
    bench_mode: bool,
    quick: bool,
    filter: Option<String>,
}

impl Criterion {
    /// Configures the harness from the process arguments (the flags
    /// cargo and the user pass after `--`).
    pub fn from_args() -> Self {
        let mut c = Criterion::default();
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--bench" => c.bench_mode = true,
                "--test" => c.bench_mode = false,
                "--quick" => c.quick = true,
                flag if flag.starts_with("--") => {} // ignore unknown flags
                filter => c.filter = Some(filter.to_string()),
            }
        }
        c
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Registers a stand-alone benchmark (no group).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(self, id, f);
        self
    }
}

/// A named benchmark group.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the requested sample count (accepted for API compatibility;
    /// the stand-in sizes its measurement window automatically).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the requested measurement time (accepted for API
    /// compatibility).
    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.0);
        run_one(self.criterion, &full, f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// A benchmark identifier within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id rendered from a parameter value, as in
    /// `BenchmarkId::from_parameter(k)`.
    pub fn from_parameter(p: impl std::fmt::Display) -> Self {
        BenchmarkId(p.to_string())
    }

    /// An id with a function name and a parameter.
    pub fn new(name: impl Into<String>, p: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{p}", name.into()))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Times one closure over a chosen number of iterations.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measures `f` over the harness-chosen iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Runs `f` with `iters` iterations, returning the measured elapsed
/// time (zero if the closure never called `iter`).
fn measure<F: FnMut(&mut Bencher)>(f: &mut F, iters: u64) -> Duration {
    let mut bencher = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    bencher.elapsed
}

fn run_one<F: FnMut(&mut Bencher)>(criterion: &Criterion, id: &str, mut f: F) {
    if let Some(filter) = &criterion.filter {
        if !id.contains(filter.as_str()) {
            return;
        }
    }
    if !criterion.bench_mode {
        // Smoke mode (`cargo test` / `--test`): one iteration, no timing.
        measure(&mut f, 1);
        println!("test {id} ... ok (smoke)");
        return;
    }
    let target = if criterion.quick {
        Duration::from_millis(60)
    } else {
        Duration::from_millis(400)
    };
    // Calibrate: double the iteration count until the runtime is
    // long enough to matter, then scale up to the target window.
    let mut iters: u64 = 1;
    let mut elapsed = measure(&mut f, iters);
    while elapsed < target / 20 && iters < u64::MAX / 4 {
        iters *= 2;
        elapsed = measure(&mut f, iters);
    }
    if elapsed < target {
        let per_iter = elapsed.as_nanos().max(1) / u128::from(iters);
        let wanted = (target.as_nanos() / per_iter.max(1)) as u64;
        iters = wanted.max(iters).max(1);
        elapsed = measure(&mut f, iters);
    }
    let ns_per_iter = elapsed.as_nanos() as f64 / iters as f64;
    println!("bench: {id:<40} {ns_per_iter:>14.1} ns/iter (n={iters})");
}

/// Declares a benchmark group function, as in upstream criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_once() {
        let mut criterion = Criterion::default();
        let mut calls = 0u64;
        {
            let mut group = criterion.benchmark_group("g");
            group.sample_size(10).bench_function("a", |b| {
                b.iter(|| {
                    calls += 1;
                })
            });
            group.finish();
        }
        assert_eq!(calls, 1);
    }

    #[test]
    fn bench_mode_measures() {
        let mut criterion = Criterion {
            bench_mode: true,
            quick: true,
            filter: None,
        };
        let mut calls = 0u64;
        criterion.bench_function("busy", |b| {
            b.iter(|| {
                calls += 1;
                std::hint::black_box(calls)
            })
        });
        assert!(calls > 1);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut criterion = Criterion {
            bench_mode: false,
            quick: false,
            filter: Some("keep".into()),
        };
        let mut ran = false;
        criterion.bench_function("other", |b| b.iter(|| ran = true));
        assert!(!ran);
        criterion.bench_function("keep_this", |b| b.iter(|| ran = true));
        assert!(ran);
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::from_parameter(8).0, "8");
        assert_eq!(BenchmarkId::new("f", 8).0, "f/8");
    }
}
