//! Offline stand-in for the `proptest` crate.
//!
//! Runs each property over `ProptestConfig::cases` deterministically
//! seeded random inputs. Supported surface: the [`proptest!`] macro
//! (functions with `arg in strategy` parameters and an optional
//! `#![proptest_config(...)]` header), [`Strategy`] with
//! `prop_map`/`prop_flat_map`, range and tuple strategies,
//! [`prelude::Just`], [`arbitrary::any`], `prop::collection::vec`,
//! [`prop_oneof!`], and the `prop_assert*` macros. Unlike upstream
//! proptest there is no shrinking: a failing case reports its inputs
//! verbatim. Regression files are not consulted.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Debug;

/// Deterministic generator driving test-case construction (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator for one test case.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x51A6_78F3_9B2D_E14C,
        }
    }

    /// Next 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// A failed (or rejected) test case.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property was violated.
    Fail(String),
    /// The input was rejected (counts against no budget here).
    Reject(String),
}

impl TestCaseError {
    /// Creates a failure with a message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// Creates a rejection with a message.
    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError::Reject(message.into())
    }

    /// The carried message.
    pub fn message(&self) -> &str {
        match self {
            TestCaseError::Fail(m) | TestCaseError::Reject(m) => m,
        }
    }
}

/// Runner configuration; only `cases` is interpreted.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// A config running `fallback` cases unless the `PROPTEST_CASES`
    /// environment variable overrides the count (mirroring upstream
    /// proptest). CI uses this to crank chaos suites up without
    /// recompiling.
    pub fn with_cases_from_env(fallback: u32) -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(fallback);
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 256 cases, overridable via the `PROPTEST_CASES` environment
    /// variable (as in upstream proptest).
    fn default() -> Self {
        ProptestConfig::with_cases_from_env(256)
    }
}

/// Generates random values of an associated type. Unlike upstream
/// proptest, a strategy produces plain values (no shrinkable value
/// trees).
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into a strategy-producing `f` and draws
    /// from the result.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Erases the strategy's type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: std::rc::Rc::new(self),
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A type-erased strategy (shared, cheaply clonable).
pub struct BoxedStrategy<T> {
    inner: std::rc::Rc<dyn Strategy<Value = T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: self.inner.clone(),
        }
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + (rng.unit_f64() as $t) * (hi - lo)
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Types with a canonical [`any`] strategy.
pub trait Arbitrary: Sized + Debug {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (full value range).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::fmt::Debug;

    /// Length specifications accepted by [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for vectors of `element` with length drawn from
    /// `size` (a fixed `usize`, a `Range`, or a `RangeInclusive`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// A weighted union of strategies; built by [`prop_oneof!`].
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T: Debug> Union<T> {
    /// Creates a union from weighted, type-erased arms.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! needs at least one weighted arm");
        Union { arms, total }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (weight, arm) in &self.arms {
            let weight = u64::from(*weight);
            if pick < weight {
                return arm.generate(rng);
            }
            pick -= weight;
        }
        unreachable!("weights cover the sampled range")
    }
}

/// Executes a property over `config.cases` deterministic random cases.
/// `f` returns the formatted inputs and the case outcome. Panics (with
/// the offending inputs) on the first failure; there is no shrinking.
pub fn run_proptest(
    config: ProptestConfig,
    name: &str,
    mut f: impl FnMut(&mut TestRng) -> (String, Result<(), TestCaseError>),
) {
    // A stable per-property seed: cases differ across properties but
    // replay identically run to run.
    let mut name_hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        name_hash ^= u64::from(b);
        name_hash = name_hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let mut rejected: u64 = 0;
    for case in 0..u64::from(config.cases) {
        let mut rng = TestRng::new(name_hash ^ case.wrapping_mul(0x2545_F491_4F6C_DD1D));
        let (inputs, outcome) = f(&mut rng);
        match outcome {
            Ok(()) => {}
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                assert!(
                    rejected <= u64::from(config.cases) * 4,
                    "property `{name}`: too many rejected cases"
                );
            }
            Err(TestCaseError::Fail(message)) => {
                panic!(
                    "property `{name}` failed at case {case}/{}:\n  {message}\n  inputs: {inputs}",
                    config.cases
                );
            }
        }
    }
}

/// Defines property tests: functions whose arguments are drawn from
/// strategies, optionally preceded by `#![proptest_config(...)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            $crate::run_proptest(config, stringify!($name), |__rng| {
                // Generate every argument before destructuring so failing
                // cases can report the raw inputs (args may be patterns).
                let __values = ($($crate::Strategy::generate(&($strategy), __rng),)+);
                let __inputs = ::std::format!(
                    concat!("(", stringify!($($arg),+), ") = {:?}"),
                    &__values
                );
                let ($($arg,)+) = __values;
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                (__inputs, __outcome)
            });
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current case unless the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`: {}",
            left,
            right,
            ::std::format!($($fmt)*)
        );
    }};
}

/// Fails the current case if the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}

/// A weighted (`w => strategy`) or uniform choice among strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![
            $(($weight as u32, $crate::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![
            $((1u32, $crate::Strategy::boxed($strategy))),+
        ])
    };
}

/// The usual imports: strategies, macros, and the `prop` module.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestRng,
    };

    /// Namespace mirror of upstream proptest's `prop::` module tree.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..200 {
            let x = (1usize..=4).generate(&mut rng);
            assert!((1..=4).contains(&x));
            let (a, b) = ((0u8..6), (0.1f64..40.0)).generate(&mut rng);
            assert!(a < 6);
            assert!((0.1..40.0).contains(&b));
        }
    }

    #[test]
    fn combinators_compose() {
        let mut rng = TestRng::new(2);
        let s =
            (1usize..=3).prop_flat_map(|n| collection::vec(0u32..10, n).prop_map(|v| (v.len(), v)));
        for _ in 0..100 {
            let (len, v) = s.generate(&mut rng);
            assert_eq!(len, v.len());
            assert!((1..=3).contains(&len));
            assert!(v.iter().all(|&x| x < 10));
        }
        let j = Just(41u32).prop_map(|x| x + 1);
        assert_eq!(j.generate(&mut rng), 42);
    }

    #[test]
    fn oneof_respects_weights() {
        let mut rng = TestRng::new(3);
        let s = prop_oneof![
            9 => Just(true),
            1 => Just(false),
        ];
        let trues = (0..1000).filter(|_| s.generate(&mut rng)).count();
        assert!(trues > 800, "{trues}");
        let u = prop_oneof![Just(1u8), Just(2u8)];
        let ones = (0..1000).filter(|_| u.generate(&mut rng) == 1).count();
        assert!(ones > 350 && ones < 650, "{ones}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_draws_and_passes(x in 0u64..100, flip in any::<bool>()) {
            prop_assert!(x < 100);
            prop_assert_eq!(flip, flip);
            prop_assert_ne!(x, 100);
        }
    }

    #[test]
    #[should_panic(expected = "property `always_fails`")]
    fn failures_report_inputs() {
        run_proptest(ProptestConfig::with_cases(5), "always_fails", |rng| {
            let x: u64 = rng.next_u64();
            (format!("x = {x}"), Err(TestCaseError::fail("nope")))
        });
    }

    use crate::{collection, run_proptest};
}
