//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]`
//! without syn/quote by walking the raw token stream. Supported shapes —
//! the ones this workspace uses — are structs with named fields,
//! single-field tuple (newtype) structs, and enums of unit variants.
//! Field attributes `#[serde(default)]` and `#[serde(default = "path")]`
//! are honored; missing `Option` fields deserialize to `None`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// How a missing field is filled during deserialization.
enum FieldDefault {
    /// No default: a missing field is an error (unless the type is
    /// `Option`, which falls back to `None` as with upstream serde).
    Required,
    /// `#[serde(default)]`: `Default::default()`.
    DefaultTrait,
    /// `#[serde(default = "path")]`: call `path()`.
    Path(String),
}

struct Field {
    name: String,
    default: FieldDefault,
    is_option: bool,
}

enum Shape {
    NamedStruct { name: String, fields: Vec<Field> },
    NewtypeStruct { name: String },
    UnitEnum { name: String, variants: Vec<String> },
}

/// Derives `serde::Serialize` (value-tree stand-in).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    let code = match &shape {
        Shape::NamedStruct { name, fields } => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{0}\"), \
                         ::serde::Serialize::to_value(&self.{0})),",
                        f.name
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(::std::vec![{pushes}])\n\
                     }}\n\
                 }}"
            )
        }
        Shape::NewtypeStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                     ::serde::Serialize::to_value(&self.0)\n\
                 }}\n\
             }}"
        ),
        Shape::UnitEnum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => \"{v}\","))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Str(::std::string::String::from(\
                             match self {{ {arms} }}))\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("derived Serialize impl parses")
}

/// Derives `serde::Deserialize` (value-tree stand-in).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    let code = match &shape {
        Shape::NamedStruct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    let missing = match (&f.default, f.is_option) {
                        (FieldDefault::DefaultTrait, _) => {
                            "::std::default::Default::default()".to_string()
                        }
                        (FieldDefault::Path(path), _) => format!("{path}()"),
                        (FieldDefault::Required, true) => "::std::option::Option::None".to_string(),
                        (FieldDefault::Required, false) => format!(
                            "return ::std::result::Result::Err(::serde::DeError::custom(\
                             \"missing field `{}` in `{name}`\"))",
                            f.name
                        ),
                    };
                    format!(
                        "{0}: match ::serde::find_field(fields, \"{0}\") {{\n\
                             ::std::option::Option::Some(x) => \
                                 ::serde::Deserialize::from_value(x)\
                                 .map_err(|e| e.in_field(\"{0}\"))?,\n\
                             ::std::option::Option::None => {missing},\n\
                         }},",
                        f.name
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         let fields = v.as_object().ok_or_else(|| \
                             ::serde::DeError::custom(\"expected object for `{name}`\"))?;\n\
                         ::std::result::Result::Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::NewtypeStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) \
                     -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                     ::std::result::Result::Ok({name}(\
                         ::serde::Deserialize::from_value(v)?))\n\
                 }}\n\
             }}"
        ),
        Shape::UnitEnum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    format!(
                        "::std::option::Option::Some(\"{v}\") => \
                         ::std::result::Result::Ok({name}::{v}),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match v.as_str() {{\n\
                             {arms}\n\
                             ::std::option::Option::Some(other) => \
                                 ::std::result::Result::Err(::serde::DeError::custom(\
                                     ::std::format!(\"unknown variant `{{other}}` of `{name}`\"))),\n\
                             ::std::option::Option::None => \
                                 ::std::result::Result::Err(::serde::DeError::custom(\
                                     \"expected string variant of `{name}`\")),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("derived Deserialize impl parses")
}

/// Parses the derive input into one of the supported shapes.
fn parse_shape(input: TokenStream) -> Shape {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attributes(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);

    let keyword = expect_ident(&tokens, &mut i);
    let name = expect_ident(&tokens, &mut i);
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde stand-in derive does not support generic type `{name}`");
    }

    match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::NamedStruct {
                fields: parse_named_fields(g.stream()),
                name,
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = 1 + g
                    .stream()
                    .into_iter()
                    .filter(|t| matches!(t, TokenTree::Punct(p) if p.as_char() == ',' ))
                    .count();
                if count_tuple_fields(g.stream()) != 1 {
                    panic!(
                        "serde stand-in derive supports only single-field tuple \
                         structs; `{name}` has {arity} fields"
                    );
                }
                Shape::NewtypeStruct { name }
            }
            other => panic!("unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::UnitEnum {
                variants: parse_unit_variants(g.stream(), &name),
                name,
            },
            other => panic!("unsupported enum body for `{name}`: {other:?}"),
        },
        other => panic!("serde stand-in derive applied to unsupported item `{other}`"),
    }
}

/// Counts top-level comma-separated fields of a tuple struct, ignoring a
/// trailing comma.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut fields = 1;
    let mut angle_depth = 0i32;
    for (idx, t) in tokens.iter().enumerate() {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 && idx + 1 < tokens.len() => fields += 1,
                _ => {}
            }
        }
    }
    fields
}

/// Skips outer attributes, returning the serde defaults found in them.
fn take_field_attrs(tokens: &[TokenTree], i: &mut usize) -> FieldDefault {
    let mut default = FieldDefault::Required;
    while let Some(TokenTree::Punct(p)) = tokens.get(*i) {
        if p.as_char() != '#' {
            break;
        }
        let Some(TokenTree::Group(attr)) = tokens.get(*i + 1) else {
            panic!("malformed attribute");
        };
        let inner: Vec<TokenTree> = attr.stream().into_iter().collect();
        if let Some(TokenTree::Ident(id)) = inner.first() {
            if id.to_string() == "serde" {
                if let Some(TokenTree::Group(args)) = inner.get(1) {
                    default = parse_serde_attr(args.stream());
                }
            }
        }
        *i += 2;
    }
    default
}

/// Parses the inside of `#[serde(...)]` on a field.
fn parse_serde_attr(stream: TokenStream) -> FieldDefault {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    match tokens.as_slice() {
        [TokenTree::Ident(id)] if id.to_string() == "default" => FieldDefault::DefaultTrait,
        [TokenTree::Ident(id), TokenTree::Punct(eq), TokenTree::Literal(lit)]
            if id.to_string() == "default" && eq.as_char() == '=' =>
        {
            let raw = lit.to_string();
            let path = raw.trim_matches('"').to_string();
            FieldDefault::Path(path)
        }
        other => panic!("unsupported #[serde(...)] attribute: {other:?}"),
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let default = take_field_attrs(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        let name = expect_ident(&tokens, &mut i);
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("expected `:` after field `{name}`, got {other:?}"),
        }
        // The type: everything up to the next comma outside `<...>`.
        let mut angle_depth = 0i32;
        let type_start = i;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
            i += 1;
        }
        let is_option = matches!(
            &tokens[type_start],
            TokenTree::Ident(id) if id.to_string() == "Option"
        );
        i += 1; // past the comma (or the end)
        fields.push(Field {
            name,
            default,
            is_option,
        });
    }
    fields
}

fn parse_unit_variants(stream: TokenStream, enum_name: &str) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        let name = expect_ident(&tokens, &mut i);
        match tokens.get(i) {
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            other => panic!(
                "serde stand-in derive supports only unit variants; \
                 `{enum_name}::{name}` is followed by {other:?}"
            ),
        }
        variants.push(name);
    }
    variants
}

fn skip_attributes(tokens: &[TokenTree], i: &mut usize) {
    while let Some(TokenTree::Punct(p)) = tokens.get(*i) {
        if p.as_char() != '#' {
            break;
        }
        *i += 2; // `#` and the bracketed group
    }
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("expected identifier, got {other:?}"),
    }
}
